//! Equivalence and determinism guarantees of the sharded engine tier.
//!
//! The scaling tier's contract is that sharding is **semantically
//! invisible**: for any interleaving of pids and classifications, any
//! batch segmentation, any shard count, and either execution mode
//! (per-tick scoped threads or the persistent worker pool), `ShardedEngine`
//! produces exactly the `EngineResponse` sequence a single `EngineShard`
//! replaying the same observations one at a time would produce — including
//! when the batches are large enough to take the thread-parallel path.

use proptest::prelude::*;
use valkyrie::core::prelude::*;

/// Shard counts pinned by the acceptance criteria: the identity case, a
/// power of two, a prime, and the largest production default.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn engine_config(n_star: u64, cyclic: bool) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(cyclic)
        .build()
        .unwrap()
}

/// An arbitrary interleaving: observations of up to 24 distinct pids.
fn interleaving(max_len: usize) -> impl Strategy<Value = Vec<(ProcessId, Classification)>> {
    prop::collection::vec(
        (0u64..24, prop::bool::ANY).prop_map(|(pid, malicious)| {
            (
                ProcessId(pid),
                if malicious {
                    Classification::Malicious
                } else {
                    Classification::Benign
                },
            )
        }),
        1..max_len,
    )
}

/// The reference semantics: one `EngineShard`, one observation at a time.
fn reference_responses(
    observations: &[(ProcessId, Classification)],
    n_star: u64,
    cyclic: bool,
) -> Vec<EngineResponse> {
    let mut shard = EngineShard::new(engine_config(n_star, cyclic));
    observations
        .iter()
        .map(|&(pid, cls)| shard.observe(pid, cls))
        .collect()
}

/// The sharded run: the same observations split into `chunk`-sized batches,
/// through the given execution mode. A parallel threshold of 0 forces the
/// spawn path of scoped mode even on one core, so the property also covers
/// the threaded partition/scatter code (for shard counts above one — a
/// one-shard scoped engine always runs inline). Pool mode routes every
/// batch over the worker channels regardless of the threshold.
fn sharded_responses(
    observations: &[(ProcessId, Classification)],
    shards: usize,
    chunk: usize,
    n_star: u64,
    cyclic: bool,
    force_spawns: bool,
    mode: ExecutionMode,
) -> Vec<EngineResponse> {
    let mut engine = ShardedEngine::with_mode(engine_config(n_star, cyclic), shards, 0, mode);
    if force_spawns {
        engine.set_parallel_threshold(0);
    }
    observations
        .chunks(chunk.max(1))
        .flat_map(|batch| engine.observe_batch(batch))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any shard count, any batch segmentation, sequential path.
    #[test]
    fn sharded_engine_is_equivalent_to_a_single_shard(
        obs in interleaving(200),
        chunk in 1usize..64,
        n_star in 1u64..20,
        cyclic in prop::bool::ANY,
    ) {
        let want = reference_responses(&obs, n_star, cyclic);
        for shards in SHARD_COUNTS {
            let got = sharded_responses(
                &obs, shards, chunk, n_star, cyclic, false, ExecutionMode::ScopedSpawn,
            );
            prop_assert_eq!(
                &got, &want,
                "shards={}, chunk={}, n_star={}, cyclic={}", shards, chunk, n_star, cyclic
            );
        }
    }

    /// The thread-parallel path produces the same sequences as the
    /// sequential reference.
    #[test]
    fn parallel_path_is_equivalent_too(
        obs in interleaving(150),
        chunk in 8usize..80,
        n_star in 1u64..16,
    ) {
        let want = reference_responses(&obs, n_star, true);
        for shards in SHARD_COUNTS {
            let got = sharded_responses(
                &obs, shards, chunk, n_star, true, true, ExecutionMode::ScopedSpawn,
            );
            prop_assert_eq!(&got, &want, "shards={}, chunk={}", shards, chunk);
        }
    }

    /// The persistent worker pool produces the same sequences as the
    /// sequential reference — same interleavings (repeated pids within a
    /// batch included), same shard counts, work travelling over the
    /// worker channels instead of scoped spawns.
    #[test]
    fn pool_mode_is_equivalent_too(
        obs in interleaving(150),
        chunk in 1usize..80,
        n_star in 1u64..16,
        cyclic in prop::bool::ANY,
    ) {
        let want = reference_responses(&obs, n_star, cyclic);
        for shards in SHARD_COUNTS {
            let got = sharded_responses(
                &obs, shards, chunk, n_star, cyclic, false, ExecutionMode::Pool,
            );
            prop_assert_eq!(&got, &want, "shards={}, chunk={}", shards, chunk);
        }
    }

    /// Pool mode and scoped-spawn mode (with forced spawns) agree with
    /// each other run-to-run on the same engine lifetime: same batches,
    /// same responses, same purge bookkeeping via the tick driver.
    #[test]
    fn pool_and_scoped_tick_drivers_agree(
        obs in interleaving(150),
        chunk in 4usize..50,
        n_star in 1u64..8,
    ) {
        let drive = |mode: ExecutionMode, force: bool| {
            let mut engine =
                ShardedEngine::with_mode(engine_config(n_star, false), 7, 0, mode);
            if force {
                engine.set_parallel_threshold(0);
            }
            let ticks: Vec<Vec<EngineResponse>> = obs
                .chunks(chunk)
                .map(|batch| engine.tick(batch))
                .collect();
            (ticks, engine.epoch(), engine.purged_total(), engine.tracked())
        };
        let scoped = drive(ExecutionMode::ScopedSpawn, true);
        let pooled = drive(ExecutionMode::Pool, false);
        prop_assert_eq!(&scoped, &pooled);
    }
}

/// Two identical runs of the same sharded deployment are bit-identical —
/// shard placement and batch fan-out introduce no run-to-run variation, in
/// either execution mode.
#[test]
fn identical_runs_are_deterministic() {
    let observations: Vec<(ProcessId, Classification)> = (0..3_000u64)
        .map(|i| {
            let pid = ProcessId(i % 401);
            let cls = if i % 5 == 0 {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            (pid, cls)
        })
        .collect();
    let run = |mode: ExecutionMode| {
        let mut engine = ShardedEngine::with_mode(engine_config(7, true), 7, 0, mode);
        engine.set_parallel_threshold(0); // force the threaded path (scoped mode)
        observations
            .chunks(500)
            .map(|batch| engine.tick(batch))
            .collect::<Vec<_>>()
    };
    let first = run(ExecutionMode::ScopedSpawn);
    let second = run(ExecutionMode::ScopedSpawn);
    assert_eq!(first, second);
    // Pool runs are deterministic too, and identical to the scoped runs:
    // worker scheduling cannot reorder per-shard application.
    let third = run(ExecutionMode::Pool);
    let fourth = run(ExecutionMode::Pool);
    assert_eq!(third, fourth);
    assert_eq!(first, third);
}

/// The epoch driver's purge keeps the live map bounded while preserving
/// response correctness for surviving processes — in both execution modes,
/// with the same persistent engine reused across hundreds of ticks.
#[test]
fn tick_driver_bounds_the_map_under_churn() {
    for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
        let mut engine = ShardedEngine::with_mode(engine_config(3, false), 4, 0, mode);
        for epoch in 0..200u64 {
            // Generations of 50 pids, each attacked every epoch: with N* = 3 a
            // generation is terminated on its 4th observation and must be
            // evicted before the next generation arrives.
            let generation = epoch / 4;
            let batch: Vec<(ProcessId, Classification)> = (0..50)
                .map(|i| (ProcessId(generation * 50 + i), Classification::Malicious))
                .collect();
            engine.tick(&batch);
            assert!(
                engine.tracked() <= 50,
                "map grew to {} at epoch {epoch} ({mode:?})",
                engine.tracked()
            );
        }
        assert_eq!(engine.epoch(), 200);
        assert_eq!(engine.purged_total(), 2_500); // 50 generations of 50 pids
        assert_eq!(engine.tracked(), engine.tracked_live());
    }
}

/// A pooled engine reused across many ticks keeps its workers alive (no
/// respawn churn is observable through the API: the worker count is stable)
/// and shuts down gracefully on drop — the drop returns instead of hanging
/// on un-joined threads, even with work still tracked.
#[test]
fn pool_reuse_and_graceful_shutdown_on_drop() {
    let mut engine = ShardedEngine::with_mode(engine_config(5, true), 7, 0, ExecutionMode::Pool);
    let workers = engine.pool_workers().expect("pool mode has workers");
    for epoch in 0..300u64 {
        let batch: Vec<(ProcessId, Classification)> = (0..64u64)
            .map(|i| {
                let cls = if (i + epoch) % 9 == 0 {
                    Classification::Malicious
                } else {
                    Classification::Benign
                };
                (ProcessId(i), cls)
            })
            .collect();
        engine.tick(&batch);
        assert_eq!(engine.pool_workers(), Some(workers), "epoch {epoch}");
    }
    assert_eq!(engine.epoch(), 300);
    assert!(engine.tracked_live() > 0);
    drop(engine); // must join all workers and return
}
