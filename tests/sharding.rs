//! Equivalence and determinism guarantees of the sharded engine tier.
//!
//! The scaling tier's contract is that sharding is **semantically
//! invisible**: for any interleaving of pids and classifications, any
//! batch segmentation, and any shard count, `ShardedEngine` produces
//! exactly the `EngineResponse` sequence a single `EngineShard` replaying
//! the same observations one at a time would produce — including when the
//! batches are large enough to take the thread-parallel path.

use proptest::prelude::*;
use valkyrie::core::prelude::*;

/// Shard counts pinned by the acceptance criteria: the identity case, a
/// power of two, a prime, and the largest production default.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn engine_config(n_star: u64, cyclic: bool) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(cyclic)
        .build()
        .unwrap()
}

/// An arbitrary interleaving: observations of up to 24 distinct pids.
fn interleaving(max_len: usize) -> impl Strategy<Value = Vec<(ProcessId, Classification)>> {
    prop::collection::vec(
        (0u64..24, prop::bool::ANY).prop_map(|(pid, malicious)| {
            (
                ProcessId(pid),
                if malicious {
                    Classification::Malicious
                } else {
                    Classification::Benign
                },
            )
        }),
        1..max_len,
    )
}

/// The reference semantics: one `EngineShard`, one observation at a time.
fn reference_responses(
    observations: &[(ProcessId, Classification)],
    n_star: u64,
    cyclic: bool,
) -> Vec<EngineResponse> {
    let mut shard = EngineShard::new(engine_config(n_star, cyclic));
    observations
        .iter()
        .map(|&(pid, cls)| shard.observe(pid, cls))
        .collect()
}

/// The sharded run: the same observations split into `chunk`-sized batches.
/// A parallel threshold of 0 forces the spawn path even on one core, so the
/// property also covers the threaded partition/scatter code (for shard
/// counts above one — a one-shard engine always runs inline).
fn sharded_responses(
    observations: &[(ProcessId, Classification)],
    shards: usize,
    chunk: usize,
    n_star: u64,
    cyclic: bool,
    force_spawns: bool,
) -> Vec<EngineResponse> {
    let mut engine = ShardedEngine::new(engine_config(n_star, cyclic), shards);
    if force_spawns {
        engine.set_parallel_threshold(0);
    }
    observations
        .chunks(chunk.max(1))
        .flat_map(|batch| engine.observe_batch(batch))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any shard count, any batch segmentation, sequential path.
    #[test]
    fn sharded_engine_is_equivalent_to_a_single_shard(
        obs in interleaving(200),
        chunk in 1usize..64,
        n_star in 1u64..20,
        cyclic in prop::bool::ANY,
    ) {
        let want = reference_responses(&obs, n_star, cyclic);
        for shards in SHARD_COUNTS {
            let got = sharded_responses(&obs, shards, chunk, n_star, cyclic, false);
            prop_assert_eq!(
                &got, &want,
                "shards={}, chunk={}, n_star={}, cyclic={}", shards, chunk, n_star, cyclic
            );
        }
    }

    /// The thread-parallel path produces the same sequences as the
    /// sequential reference.
    #[test]
    fn parallel_path_is_equivalent_too(
        obs in interleaving(150),
        chunk in 8usize..80,
        n_star in 1u64..16,
    ) {
        let want = reference_responses(&obs, n_star, true);
        for shards in SHARD_COUNTS {
            let got = sharded_responses(&obs, shards, chunk, n_star, true, true);
            prop_assert_eq!(&got, &want, "shards={}, chunk={}", shards, chunk);
        }
    }
}

/// Two identical runs of the same sharded deployment are bit-identical —
/// shard placement and batch fan-out introduce no run-to-run variation.
#[test]
fn identical_runs_are_deterministic() {
    let observations: Vec<(ProcessId, Classification)> = (0..3_000u64)
        .map(|i| {
            let pid = ProcessId(i % 401);
            let cls = if i % 5 == 0 {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            (pid, cls)
        })
        .collect();
    let run = || {
        let mut engine = ShardedEngine::new(engine_config(7, true), 7);
        engine.set_parallel_threshold(0); // force the threaded path
        observations
            .chunks(500)
            .map(|batch| engine.tick(batch))
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
}

/// The epoch driver's purge keeps the live map bounded while preserving
/// response correctness for surviving processes.
#[test]
fn tick_driver_bounds_the_map_under_churn() {
    let mut engine = ShardedEngine::new(engine_config(3, false), 4);
    for epoch in 0..200u64 {
        // Generations of 50 pids, each attacked every epoch: with N* = 3 a
        // generation is terminated on its 4th observation and must be
        // evicted before the next generation arrives.
        let generation = epoch / 4;
        let batch: Vec<(ProcessId, Classification)> = (0..50)
            .map(|i| (ProcessId(generation * 50 + i), Classification::Malicious))
            .collect();
        engine.tick(&batch);
        assert!(
            engine.tracked() <= 50,
            "map grew to {} at epoch {epoch}",
            engine.tracked()
        );
    }
    assert_eq!(engine.epoch(), 200);
    assert_eq!(engine.purged_total(), 2_500); // 50 generations of 50 pids
    assert_eq!(engine.tracked(), engine.tracked_live());
}
