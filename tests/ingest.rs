//! Determinism and equivalence guarantees of the async ingest tier.
//!
//! The contract under test: publishing observations through the bounded
//! per-shard ingest rings and draining them with `drain_batch`/`drain_tick`
//! is **semantically invisible** relative to handing the same observations
//! to the synchronous `observe_batch`/`tick` path — for any interleaving,
//! any batch segmentation, shard counts {1, 2, 7, 16}, and both execution
//! modes — as long as `OverflowPolicy::Block` with adequate capacity keeps
//! the rings lossless. On top of the equivalence, the async epoch driver
//! must tick on schedule no matter how slow or jittery the detector tier
//! is (`LatencyModel`), which is the entire point of the subsystem.

use proptest::prelude::*;
use valkyrie::attacks::cryptominer::Cryptominer;
use valkyrie::core::prelude::*;
use valkyrie::detect::LatencyModel;
use valkyrie::experiments::scenario::{AugmentedRun, IngestOptions, ScenarioConfig};
use valkyrie::sim::machine::{Machine, MachineConfig};

/// Shard counts pinned by the acceptance criteria: the identity case, a
/// power of two, a prime, and the largest production default.
const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn engine_config(n_star: u64, cyclic: bool) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(cyclic)
        .build()
        .unwrap()
}

/// An arbitrary interleaving: observations of up to 24 distinct pids.
fn interleaving(max_len: usize) -> impl Strategy<Value = Vec<(ProcessId, Classification)>> {
    prop::collection::vec(
        (0u64..24, prop::bool::ANY).prop_map(|(pid, malicious)| {
            (
                ProcessId(pid),
                if malicious {
                    Classification::Malicious
                } else {
                    Classification::Benign
                },
            )
        }),
        1..max_len,
    )
}

/// One engine lifetime's observable bookkeeping, for whole-run equality.
type TickTrace = (Vec<Vec<EngineResponse>>, u64, u64, usize);

/// The synchronous reference: the same batches through `tick`.
fn tick_reference(
    observations: &[(ProcessId, Classification)],
    shards: usize,
    chunk: usize,
    n_star: u64,
    cyclic: bool,
    mode: ExecutionMode,
) -> TickTrace {
    let mut engine = ShardedEngine::with_mode(engine_config(n_star, cyclic), shards, 0, mode);
    let ticks = observations
        .chunks(chunk.max(1))
        .map(|batch| engine.tick(batch))
        .collect();
    (
        ticks,
        engine.epoch(),
        engine.purged_total(),
        engine.tracked(),
    )
}

/// The async run: each batch published through the ingest rings (Block
/// policy, capacity covering the whole run — lossless by construction),
/// then answered by one `drain_tick`. `force_spawns` additionally drives
/// the scoped mode's threaded path on single-core hosts; `defense`
/// optionally arms the overload defense (priority lane + fair queueing).
#[allow(clippy::too_many_arguments)]
fn ingest_run(
    observations: &[(ProcessId, Classification)],
    shards: usize,
    chunk: usize,
    n_star: u64,
    cyclic: bool,
    force_spawns: bool,
    mode: ExecutionMode,
    defense: IngestDefense,
) -> TickTrace {
    let mut engine = ShardedEngine::with_mode(engine_config(n_star, cyclic), shards, 0, mode);
    if force_spawns {
        engine.set_parallel_threshold(0);
    }
    let publisher =
        engine.enable_ingest_defended(observations.len().max(1), OverflowPolicy::Block, defense);
    let ticks = observations
        .chunks(chunk.max(1))
        .map(|batch| {
            assert_eq!(publisher.publish_batch(batch), batch.len());
            engine.drain_tick()
        })
        .collect();
    (
        ticks,
        engine.epoch(),
        engine.purged_total(),
        engine.tracked(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance-criteria pin: Block-mode ingest-then-drain is
    /// bit-for-bit equal to synchronous `observe_batch` + `tick`, across
    /// shard counts {1, 2, 7, 16} and both execution modes — responses,
    /// epoch counter, purge bookkeeping and the tracked map all agree.
    #[test]
    fn block_ingest_is_equivalent_to_synchronous_ticks(
        obs in interleaving(200),
        chunk in 1usize..64,
        n_star in 1u64..20,
        cyclic in prop::bool::ANY,
    ) {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            for shards in SHARD_COUNTS {
                let want = tick_reference(&obs, shards, chunk, n_star, cyclic, mode);
                let got = ingest_run(
                    &obs,
                    shards,
                    chunk,
                    n_star,
                    cyclic,
                    false,
                    mode,
                    IngestDefense::default(),
                );
                prop_assert_eq!(
                    &got, &want,
                    "shards={}, chunk={}, n_star={}, cyclic={}, mode={:?}",
                    shards, chunk, n_star, cyclic, mode
                );
            }
        }
    }

    /// The scoped mode's thread-parallel drain path (forced spawns) is
    /// equivalent too — the merge by sequence stamp reconstructs publish
    /// order no matter how the shards were chunked onto threads.
    #[test]
    fn forced_parallel_drain_is_equivalent_too(
        obs in interleaving(150),
        chunk in 8usize..80,
        n_star in 1u64..16,
    ) {
        for shards in SHARD_COUNTS {
            let want = tick_reference(&obs, shards, chunk, n_star, true, ExecutionMode::ScopedSpawn);
            let got = ingest_run(
                &obs,
                shards,
                chunk,
                n_star,
                true,
                true,
                ExecutionMode::ScopedSpawn,
                IngestDefense::default(),
            );
            prop_assert_eq!(&got, &want, "shards={}, chunk={}", shards, chunk);
        }
    }

    /// The overload-defense no-overload invariant: with the priority lane
    /// and per-publisher fair queueing armed but the rings never full
    /// (Block policy, capacity covering the whole run), drained results
    /// stay bit-for-bit equal to the undefended Block-mode ingest — even
    /// though suspicious pids *are* marked hot mid-run and re-routed
    /// through the priority lane, the seq-stamp merge reconstructs publish
    /// order exactly. Shards {1, 2, 7} × both execution modes.
    #[test]
    fn defended_never_full_ingest_matches_block_mode_bit_for_bit(
        obs in interleaving(200),
        chunk in 1usize..64,
        n_star in 1u64..16,
    ) {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            for shards in [1usize, 2, 7] {
                let want = ingest_run(
                    &obs,
                    shards,
                    chunk,
                    n_star,
                    true,
                    false,
                    mode,
                    IngestDefense::default(),
                );
                let got = ingest_run(
                    &obs,
                    shards,
                    chunk,
                    n_star,
                    true,
                    false,
                    mode,
                    IngestDefense::full(),
                );
                prop_assert_eq!(
                    &got, &want,
                    "shards={}, chunk={}, n_star={}, mode={:?}",
                    shards, chunk, n_star, mode
                );
            }
        }
    }
}

/// Two identical async runs are bit-identical — ring placement, sequence
/// stamping and the drain merge introduce no run-to-run variation, in
/// either execution mode.
#[test]
fn identical_ingest_runs_are_deterministic() {
    let observations: Vec<(ProcessId, Classification)> = (0..3_000u64)
        .map(|i| {
            let pid = ProcessId(i % 401);
            let cls = if i % 5 == 0 {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            (pid, cls)
        })
        .collect();
    for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
        let first = ingest_run(
            &observations,
            7,
            500,
            7,
            true,
            true,
            mode,
            IngestDefense::full(),
        );
        let second = ingest_run(
            &observations,
            7,
            500,
            7,
            true,
            true,
            mode,
            IngestDefense::full(),
        );
        assert_eq!(first, second, "{mode:?}");
        // And identical to the synchronous reference.
        let reference = tick_reference(&observations, 7, 500, 7, true, mode);
        assert_eq!(first, reference, "{mode:?}");
    }
}

/// Detector threads racing the epoch driver: every published observation
/// is eventually consumed exactly once, and the engine's bookkeeping adds
/// up — without any cross-thread synchronisation beyond the rings.
#[test]
fn concurrent_publishers_feed_the_tick_driver_losslessly() {
    for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
        let mut engine = ShardedEngine::with_mode(engine_config(1_000_000, true), 7, 0, mode);
        let publisher = engine.enable_ingest(8 * 1024, OverflowPolicy::Block);
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let publisher = publisher.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let pid = ProcessId(t * 10_000 + (i % 97));
                        assert!(publisher.publish(pid, Classification::Malicious));
                    }
                })
            })
            .collect();
        // Tick continuously while the detector threads publish.
        let mut consumed = 0usize;
        while consumed < (THREADS * PER_THREAD) as usize {
            consumed += engine.drain_tick().len();
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(consumed, (THREADS * PER_THREAD) as usize, "{mode:?}");
        assert_eq!(engine.tracked(), (THREADS * 97) as usize, "{mode:?}");
        let stats = engine.ingest_stats().unwrap();
        assert_eq!(stats.published, THREADS * PER_THREAD, "{mode:?}");
        assert_eq!(stats.drained, THREADS * PER_THREAD, "{mode:?}");
        assert_eq!(stats.dropped, 0, "{mode:?}");
        assert_eq!(stats.queued, 0, "{mode:?}");
    }
}

/// The acceptance scenario: a detector whose verdicts are 3+ ticks late
/// (`LatencyModel`) feeding the scenario driver's ingest path. The epoch
/// driver completes every epoch on schedule — the attack just dies
/// `delay` epochs later than it would with an instant detector.
#[test]
fn delayed_detector_does_not_stall_the_epoch_driver() {
    use valkyrie::detect::Detector;
    use valkyrie::hpc::SampleWindow;

    /// Flags exactly one pid, cleanly classifying everything else.
    struct TargetedDetector {
        target: ProcessId,
    }
    impl Detector for TargetedDetector {
        fn name(&self) -> &str {
            "targeted"
        }
        fn infer(&mut self, pid: ProcessId, _w: &SampleWindow) -> Classification {
            if pid == self.target {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        }
    }

    const N_STAR: u64 = 6;
    const DELAY: u64 = 3;
    const EPOCHS: u64 = 30;
    let run_with = |delay: u64| {
        let mut machine = Machine::new(MachineConfig::default());
        let attack = machine.spawn(Box::new(Cryptominer::default()));
        let detector = LatencyModel::new(
            TargetedDetector {
                target: attack.into(),
            },
            delay,
        );
        let mut run = AugmentedRun::new(
            machine,
            EngineConfig::builder()
                .measurements_required(N_STAR)
                .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
                .build()
                .unwrap(),
            detector,
            ScenarioConfig {
                shards: 4,
                ingest: Some(IngestOptions::default()),
                ..ScenarioConfig::default()
            },
        );
        run.watch(attack);
        // A benign bystander that outlives the horizon: its history counts
        // the epochs the driver actually completed.
        let mut spec = valkyrie::workloads::roster().remove(0);
        spec.epochs_to_complete = u64::MAX / 4;
        let bystander = run
            .machine_mut()
            .spawn(Box::new(valkyrie::workloads::BenchmarkWorkload::new(spec)));
        run.watch(bystander);
        run.run(EPOCHS);
        let killed_at = run
            .history(attack)
            .iter()
            .position(|r| r.state == ProcessState::Terminated)
            .expect("the attack must still be terminated");
        (
            run.history(bystander).len() as u64,
            killed_at as u64,
            run.history(attack).to_vec(),
        )
    };
    let (epochs_instant, killed_instant, hist_instant) = run_with(0);
    let (epochs_delayed, killed_delayed, hist_delayed) = run_with(DELAY);
    assert_eq!(epochs_instant, EPOCHS, "instant detector driver stalled");
    assert_eq!(epochs_delayed, EPOCHS, "delayed detector driver stalled");
    // The latency is visible as a response lag: the instant detector has
    // the attack suspicious (and throttled) from its very first verdict,
    // while the delayed detector leaves it untouched for `DELAY` epochs —
    // but the driver ticks through either way, and the attack still dies.
    assert_eq!(hist_instant[0].state, ProcessState::Suspicious);
    for record in &hist_delayed[..DELAY as usize] {
        assert_eq!(record.state, ProcessState::Normal, "verdicts not due yet");
        assert_eq!(record.cpu_share, 1.0);
    }
    assert_eq!(
        hist_delayed[DELAY as usize].state,
        ProcessState::Suspicious,
        "the first late verdict lands after exactly DELAY epochs"
    );
    assert!(killed_delayed >= killed_instant);
    assert!(killed_delayed < EPOCHS, "detection lag, not a stall");
}

/// Per-detector cadence under async verdict ingest: a three-member fused
/// ensemble where two fast members publish every epoch and one slow,
/// heavily weighted member reports only every `CADENCE` epochs **through
/// its own publisher handle**, with its verdicts additionally `delay`
/// reports late (`LatencyModel`). The fused kill can only happen once the
/// slow member's first malicious confidence lands, so the first Terminate
/// response shifts by exactly the fusion-predicted lag:
/// `max(N* + 1, delay × CADENCE + 1)`.
#[test]
fn slow_member_cadence_shifts_the_first_response_by_the_predicted_lag() {
    use valkyrie::core::{EscalationLadder, FusionConfig, Verdict};
    use valkyrie::detect::{Detector, ScriptedDetector};
    use valkyrie::hpc::SampleWindow;

    const N_STAR: u64 = 2;
    const CADENCE: u64 = 3;
    const HORIZON: u64 = 40;

    let kill_epoch = |delay: u64| -> u64 {
        let config = EngineConfig::builder()
            .measurements_required(N_STAR)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .fusion(FusionConfig {
                // Two fast unit-weight members + one slow member heavy
                // enough (6) that the graduated Kill rung (mass > 0.85)
                // is out of reach until the slow member corroborates:
                // fast-only mass = 2/8 = 0.25.
                weights: vec![1.0, 1.0, 6.0],
                default_weight: 1.0,
                stale_decay: 1.0,
                ladder: EscalationLadder::graduated(),
            })
            .build()
            .unwrap();
        let mut engine = ShardedEngine::with_mode(config, 4, 1, ExecutionMode::ScopedSpawn);
        let fast_a = engine.enable_verdict_ingest(64, OverflowPolicy::Block);
        let fast_b = engine.verdict_publisher().expect("verdict ingest enabled");
        let slow_pub = engine.verdict_publisher().expect("verdict ingest enabled");
        // The slow member: always-malicious, but each confidence matures
        // only `delay` member-local reports after it was computed.
        let mut slow =
            LatencyModel::new(ScriptedDetector::constant(Classification::Malicious), delay);
        let window = SampleWindow::new(4);
        let pid = ProcessId(9);

        for epoch in 1..=HORIZON {
            assert!(fast_a.publish(pid, Verdict::new(0, 1.0)));
            assert!(fast_b.publish(pid, Verdict::new(1, 1.0)));
            if (epoch - 1).is_multiple_of(CADENCE) {
                let confidence = slow.infer_confidence(pid, &window);
                assert!(slow_pub.publish(
                    pid,
                    Verdict::new(2, confidence).with_cadence(CADENCE as u32)
                ));
            }
            let responses = engine.drain_tick();
            if responses
                .iter()
                .any(|r| r.pid == pid && r.action == Action::Terminate)
            {
                return epoch;
            }
        }
        panic!("attack never terminated with delay {delay}");
    };

    let baseline = kill_epoch(0);
    assert_eq!(baseline, N_STAR + 1, "instant slow member kills at N*+1");
    for delay in [1u64, 2, 3] {
        // The slow member's `delay` late reports land only at its cadence:
        // the first malicious confidence publishes at epoch
        // `delay × CADENCE + 1`, and the kill follows the same epoch.
        let predicted = (N_STAR + 1).max(delay * CADENCE + 1);
        assert_eq!(
            kill_epoch(delay),
            predicted,
            "delay {delay}: first response must shift by the fusion-predicted lag"
        );
    }
}
