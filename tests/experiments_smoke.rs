//! Smoke tests: every experiment binary's entry point runs in quick mode
//! and produces a plausible report.

use valkyrie::experiments as x;

#[test]
fn analytic_runs() {
    let r = x::analytic::run();
    assert!(r.report.contains("79.6%") || r.report.contains("attack"));
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn table1_runs() {
    assert!(x::table1::run().contains("Valkyrie"));
}

#[test]
fn table2_quick_runs() {
    let r = x::table2::run(&x::table2::Table2Config::quick());
    assert_eq!(r.rows.len(), 15);
    assert!(r.report.contains("Table II"));
}

#[test]
fn table3_runs() {
    assert!(x::table3::run().contains("Case study"));
}

#[test]
fn fig1_quick_runs() {
    let r = x::fig1::run(&x::fig1::Fig1Config::quick());
    assert!(!r.xgboost.points().is_empty());
    assert!(r.report.contains("Fig. 1"));
}

#[test]
fn fig4c_quick_runs() {
    let cfg = x::fig4::Fig4Config::quick();
    let r = x::fig4::run_c(&cfg);
    assert_eq!(r.without.len(), cfg.epochs as usize);
    assert!(r.report.contains("TSA"));
}

#[test]
fn fig4f_quick_runs() {
    let cfg = x::fig4::Fig4Config::quick();
    let r = x::fig4::run_f(&cfg);
    let with = *r.with_valkyrie.last().unwrap();
    let without = *r.without.last().unwrap();
    assert!(without >= with);
}

#[test]
fn fig5a_quick_subset_runs() {
    // Full 77-benchmark runs are exercised by the binary; here a fast
    // configuration over the roster with shortened runtimes.
    let cfg = x::fig5::Fig5Config {
        runtime_divisor: 12,
        multithreaded: false,
        ..x::fig5::Fig5Config::default()
    };
    let r = x::fig5::run_5a(&cfg);
    assert_eq!(r.rows.len(), 77);
    // Nothing was terminated: every benchmark completed within its cap.
    for row in &r.rows {
        assert!(
            row.valkyrie_epochs < row.baseline_epochs * 8,
            "{} did not finish",
            row.name
        );
    }
    let blender = r.rows.iter().find(|r| r.name == "blender_r").unwrap();
    assert!(
        blender.slowdown_pct > 3.0,
        "blender_r {}",
        blender.slowdown_pct
    );
}

#[test]
fn table4_quick_runs() {
    let r = x::table4::run(&x::table4::Table4Config {
        runtime_divisor: 12,
        ..x::table4::Table4Config::quick()
    });
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn fig6c_quick_runs() {
    let r = x::fig6::run_c(&x::fig6::Fig6Config::quick());
    assert!(r.slowdown_pct > 80.0);
}

#[test]
fn responses_quick_runs() {
    let r = x::responses::run(&x::responses::ResponsesConfig {
        benign_trials: 5,
        benign_epochs: 80,
        ..x::responses::ResponsesConfig::default()
    });
    assert_eq!(r.rows.len(), x::responses::POLICIES.len());
    assert_eq!(r.rowhammer.len(), 3);
    assert!(r.report.contains("Table I, quantified"));
}

#[test]
fn ensemble_quick_runs() {
    let r = x::ensemble::run(&x::ensemble::EnsembleConfig::quick());
    assert!(!r.two_level.points().is_empty());
    assert_eq!(r.confirmer_duty_cycle.len(), r.screen.points().len());
    assert!(r.report.contains("Two-level detection"));
}

#[test]
fn adaptive_quick_runs() {
    let r = x::adaptive::run(&x::adaptive::AdaptiveConfig::quick());
    // 5 throttle laws × 2 penalty functions + 2 escalation ladders.
    assert_eq!(r.rows.len(), 12);
    assert_eq!(r.probe.len(), 5);
    for key in ["Worst-case ranking", "Law probe", "ladder graduated"] {
        assert!(r.report.contains(key), "missing {key}");
    }
    // The probe re-identifies every deployed law family.
    for row in &r.probe {
        assert!(
            row.hit,
            "probe missed {}: estimated {}",
            row.label, row.family
        );
    }
    // Acceptance: the best-response attacker measurably beats every fixed
    // strategy on at least one law.
    assert!(
        r.rows.iter().any(|row| row.gap_pts > 5.0),
        "no defense shows a meaningful adaptive gap"
    );
}

#[test]
fn evasion_quick_runs() {
    let r = x::evasion::run(&x::evasion::EvasionConfig {
        trials: 3,
        horizon: 50,
        ..x::evasion::EvasionConfig::default()
    });
    assert_eq!(r.duty_cycle.len(), x::evasion::strategies(30).len());
    assert_eq!(r.hardening.len(), 4);
    assert!(r.report.contains("Evasion study"));
}
