//! Equivalence guarantees of the fleet tier.
//!
//! The cluster tier's contract mirrors the sharding tier's
//! (`tests/sharding.rs`): hierarchy is **semantically invisible**. A
//! one-group [`FleetEngine`] driving machine-0 pids is bit-for-bit the
//! single-machine `ShardedEngine`; regrouping machines across engine
//! groups never changes any response; and a one-machine [`Cluster`] is
//! bit-for-bit a bare [`Machine`] built with the same derived seed.

use proptest::prelude::*;
use valkyrie::core::prelude::*;
use valkyrie::sim::prelude::*;
use valkyrie::workloads::{fleet_instance, BenchmarkWorkload};

fn engine_config(n_star: u64, cyclic: bool) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .penalty(AssessmentFn::incremental())
        .compensation(AssessmentFn::incremental())
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(cyclic)
        .build()
        .unwrap()
}

/// An arbitrary cluster-wide interleaving: observations of pids spread
/// across up to 24 machines × 6 local pids, packed through the global pid
/// namespace.
fn fleet_interleaving(max_len: usize) -> impl Strategy<Value = Vec<(ProcessId, Classification)>> {
    prop::collection::vec(
        (0u32..24, 0u64..6, prop::bool::ANY).prop_map(|(machine, local, malicious)| {
            (
                ProcessId::from_parts(machine, local),
                if malicious {
                    Classification::Malicious
                } else {
                    Classification::Benign
                },
            )
        }),
        1..max_len,
    )
}

/// Machine-0 observations only: the single-machine namespace, where the
/// packed global pid *is* the bare local pid.
fn machine0_interleaving(
    max_len: usize,
) -> impl Strategy<Value = Vec<(ProcessId, Classification)>> {
    prop::collection::vec(
        (0u64..24, prop::bool::ANY).prop_map(|(pid, malicious)| {
            (
                ProcessId(pid),
                if malicious {
                    Classification::Malicious
                } else {
                    Classification::Benign
                },
            )
        }),
        1..max_len,
    )
}

fn fleet_responses(
    observations: &[(ProcessId, Classification)],
    groups: usize,
    shards: usize,
    chunk: usize,
    n_star: u64,
    cyclic: bool,
) -> Vec<EngineResponse> {
    let mut fleet = FleetEngine::new(engine_config(n_star, cyclic), groups, shards);
    observations
        .chunks(chunk.max(1))
        .flat_map(|batch| fleet.observe_batch(batch))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A one-group fleet over machine-0 pids is bit-for-bit today's
    /// single-machine `ShardedEngine`: same response sequence for any
    /// interleaving and batch segmentation, and the same per-pid
    /// state/threat afterwards.
    #[test]
    fn one_group_fleet_is_the_single_machine_engine(
        obs in machine0_interleaving(200),
        chunk in 1usize..64,
        shards in 1usize..5,
        n_star in 1u64..16,
        cyclic in prop::bool::ANY,
    ) {
        let mut single = ShardedEngine::new(engine_config(n_star, cyclic), shards);
        let want: Vec<EngineResponse> = obs
            .chunks(chunk.max(1))
            .flat_map(|batch| single.observe_batch(batch))
            .collect();
        let got = fleet_responses(&obs, 1, shards, chunk, n_star, cyclic);
        prop_assert_eq!(&got, &want, "chunk={}, shards={}", chunk, shards);

        let mut fleet = FleetEngine::new(engine_config(n_star, cyclic), 1, shards);
        for batch in obs.chunks(chunk.max(1)) {
            fleet.observe_batch(batch);
        }
        for &(pid, _) in &obs {
            prop_assert_eq!(fleet.state(pid), single.state(pid));
            prop_assert_eq!(fleet.threat(pid), single.threat(pid));
            prop_assert_eq!(fleet.resources(pid), single.resources(pid));
        }
        prop_assert_eq!(fleet.tracked(), single.tracked());
    }

    /// Fleet results are invariant to how machines are partitioned into
    /// engine groups: every group count produces the same response
    /// sequence, because per-pid state is independent and scatter restores
    /// input order.
    #[test]
    fn responses_are_invariant_to_machine_grouping(
        obs in fleet_interleaving(200),
        chunk in 1usize..64,
        n_star in 1u64..16,
        cyclic in prop::bool::ANY,
    ) {
        let want = fleet_responses(&obs, 1, 2, chunk, n_star, cyclic);
        for groups in [2usize, 3, 8] {
            let got = fleet_responses(&obs, groups, 2, chunk, n_star, cyclic);
            prop_assert_eq!(&got, &want, "groups={}, chunk={}", groups, chunk);
        }
    }

    /// Grouping invariance also holds for the aggregate bookkeeping the
    /// fleet driver relies on: tracked counts, purges and per-pid state
    /// after ticks with terminations in flight.
    #[test]
    fn tick_bookkeeping_is_invariant_to_machine_grouping(
        obs in fleet_interleaving(150),
        chunk in 1usize..48,
        n_star in 1u64..8,
    ) {
        let mut reference = FleetEngine::new(engine_config(n_star, true), 1, 2);
        for batch in obs.chunks(chunk.max(1)) {
            reference.tick(batch);
        }
        for groups in [2usize, 3, 8] {
            let mut fleet = FleetEngine::new(engine_config(n_star, true), groups, 2);
            for batch in obs.chunks(chunk.max(1)) {
                fleet.tick(batch);
            }
            prop_assert_eq!(fleet.tracked(), reference.tracked(), "groups={}", groups);
            prop_assert_eq!(fleet.tracked_live(), reference.tracked_live());
            prop_assert_eq!(fleet.purged_total(), reference.purged_total());
            prop_assert_eq!(fleet.epoch(), reference.epoch());
            for &(pid, _) in &obs {
                prop_assert_eq!(fleet.state(pid), reference.state(pid));
                prop_assert_eq!(fleet.threat(pid), reference.threat(pid));
            }
        }
    }
}

/// A one-machine cluster is bit-for-bit the bare machine it wraps: same
/// pids, same epoch reports, with the cluster's only additions being the
/// machine-id half of the global pid and the shared-corpus boot.
#[test]
fn one_machine_cluster_matches_bare_machine() {
    let template = SimFs::uniform("/srv", 64, 4096);
    let mut cluster = Cluster::new(ClusterConfig {
        machine: MachineConfig::default(),
        fs_template: Some(template.clone()),
        seed: 0xBEEF,
    });
    let id = cluster.boot();

    let mut reference = Machine::with_id(
        MachineConfig {
            seed: cluster.seed_for(id),
            ..MachineConfig::default()
        },
        id,
    );
    reference.restore_fs(&template);

    for i in 0..4 {
        let gpid = cluster
            .spawn(id, Box::new(BenchmarkWorkload::new(fleet_instance(i))))
            .unwrap();
        let pid = reference.spawn(Box::new(BenchmarkWorkload::new(fleet_instance(i))));
        assert_eq!(gpid.machine, id);
        assert_eq!(gpid.pid, pid);
    }

    let mut cluster_out = Vec::new();
    let mut machine_out = Vec::new();
    for _ in 0..12 {
        cluster_out.clear();
        machine_out.clear();
        cluster.run_epoch_into(&mut cluster_out);
        reference.run_epoch_into(&mut machine_out);
        assert_eq!(cluster_out.len(), machine_out.len());
        for (&(gpid, got), &(pid, want)) in cluster_out.iter().zip(&machine_out) {
            assert_eq!(gpid.machine, id);
            assert_eq!(gpid.pid, pid);
            assert_eq!(got, want);
        }
    }
}
