//! Cross-crate integration tests: full detector → engine → machine loops.

use rand::rngs::StdRng;
use rand::SeedableRng;
use valkyrie::attacks::cryptominer::Cryptominer;
use valkyrie::attacks::ransomware::Ransomware;
use valkyrie::attacks::rowhammer::RowhammerAttack;
use valkyrie::core::prelude::*;
use valkyrie::detect::{ScriptedDetector, StatisticalDetector, VotingDetector};
use valkyrie::experiments::fig4::{benign_baseline, spawn_background};
use valkyrie::experiments::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use valkyrie::sim::fs::SimFs;
use valkyrie::sim::machine::{Machine, MachineConfig};
use valkyrie::workloads::{roster, BenchmarkWorkload};

fn engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()
        .unwrap()
}

#[test]
fn cryptominer_is_detected_throttled_and_terminated() {
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(1), 3.2);
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(10),
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: 20,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    let mut first_epoch_hashes = 0.0;
    let mut last_epoch_hashes = 0.0;
    for e in 0..12 {
        let r = run.step();
        if let Some(rep) = r.get(&pid) {
            if e == 0 {
                first_epoch_hashes = rep.progress;
            }
            last_epoch_hashes = rep.progress;
        }
    }
    assert!(!run.machine().is_alive(pid), "miner must be terminated");
    assert!(
        last_epoch_hashes < first_epoch_hashes / 10.0,
        "miner should be deeply throttled before termination ({last_epoch_hashes} vs {first_epoch_hashes})"
    );
}

#[test]
fn ransomware_damage_is_bounded_by_valkyrie() {
    let mut machine = Machine::new(MachineConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    machine.set_filesystem(SimFs::generate(&mut rng, 100_000, 1 << 20));
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(2), 3.5);
    let mut run = AugmentedRun::new(
        machine,
        engine(15),
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: 30,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run.machine_mut().spawn(Box::new(Ransomware::default()));
    run.watch(pid);
    let mut encrypted = 0.0;
    for _ in 0..30 {
        encrypted += run.step().get(&pid).map_or(0.0, |r| r.progress);
    }
    assert!(
        !run.machine().is_alive(pid),
        "ransomware must be terminated"
    );
    // Unthrottled it would have encrypted ~35 MB in 3 s; Valkyrie caps the
    // damage to a few MB.
    assert!(
        encrypted < 8.0e6,
        "too much data encrypted: {:.1} MB",
        encrypted / 1e6
    );
}

#[test]
fn rowhammer_never_flips_a_bit_under_valkyrie() {
    let detector = StatisticalDetector::fit_normalized(&benign_baseline(3), 3.5);
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(4000),
        detector,
        ScenarioConfig::default(),
    );
    let pid = run
        .machine_mut()
        .spawn(Box::new(RowhammerAttack::default()));
    spawn_background(run.machine_mut());
    run.watch(pid);
    run.run(2000); // 200 simulated seconds in the suspicious state
    assert_eq!(run.machine().dram().flipped_bits(), 0);
}

#[test]
fn benign_program_survives_noisy_detector_and_recovers() {
    // blender_r is misclassified in ~30% of epochs; a majority verdict over
    // N* samples has FPR ~ Binomial tail P(X > N*/2). N* = 40 pushes the
    // per-verdict termination risk below 0.5% — exactly the efficacy
    // planning trade-off of Section IV-A.
    let n_star = 40;
    let mut spec = roster()
        .into_iter()
        .find(|s| s.name == "blender_r")
        .unwrap();
    spec.epochs_to_complete = 60;
    let detector = VotingDetector::new(
        StatisticalDetector::fit_normalized(&benign_baseline(4), 4.0),
        n_star,
    );
    let config = EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true)
        .build()
        .unwrap();
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        config,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: n_star as usize * 3,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run
        .machine_mut()
        .spawn(Box::new(BenchmarkWorkload::new(spec)));
    run.watch(pid);
    let mut epochs = 0;
    while !run.machine().is_completed(pid) && epochs < 500 {
        run.step();
        epochs += 1;
        // Completion also clears the alive flag; only real termination
        // (not-alive and not-completed) fails the test.
        assert!(
            run.machine().is_alive(pid) || run.machine().is_completed(pid),
            "benign process was terminated"
        );
    }
    assert!(
        run.machine().is_completed(pid),
        "must finish within 500 epochs"
    );
    assert!(epochs >= 60, "cannot finish faster than the baseline");
}

#[test]
fn fig3_state_machine_is_respected_end_to_end() {
    use Classification::{Benign, Malicious};
    let script = vec![
        Benign, Malicious, Malicious, Benign, Benign, Benign, Malicious, Benign, Benign, Benign,
        Benign, Benign,
    ];
    let detector = ScriptedDetector::cycle(script);
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(40),
        detector,
        ScenarioConfig::default(),
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    let mut prev = ProcessState::Normal;
    for _ in 0..40 {
        run.step();
        let state = run.history(pid).last().unwrap().state;
        assert!(
            prev.can_transition_to(state),
            "illegal transition {prev} -> {state}"
        );
        prev = state;
    }
}

#[test]
fn termination_only_happens_in_terminable_state() {
    let detector = ScriptedDetector::constant(Classification::Malicious);
    let n_star = 9;
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(n_star),
        detector,
        ScenarioConfig::default(),
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    for epoch in 1..=(n_star + 1) {
        run.step();
        let rec = run.history(pid).last().unwrap();
        if epoch <= n_star {
            assert_ne!(
                rec.state,
                ProcessState::Terminated,
                "terminated before N* at epoch {epoch}"
            );
        }
    }
    assert_eq!(
        run.history(pid).last().unwrap().state,
        ProcessState::Terminated
    );
}

#[test]
fn mixed_fleet_attacks_die_and_benign_tenants_survive() {
    // A multi-tenant machine: a dozen benign benchmarks, a cryptominer and
    // a ransomware sample share one Valkyrie deployment (cyclic monitoring,
    // majority verdicts). Both attacks must be terminated; no benign tenant
    // may be.
    let n_star = 30;
    let mut machine = Machine::new(MachineConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    machine.set_filesystem(SimFs::generate(&mut rng, 50_000, 1 << 20));
    // Threshold 3.2 (as in the solo cryptominer test): the miner's
    // compute-only signature sits close to the benign envelope, so the
    // fleet detector must run at the same sensitivity.
    let detector = VotingDetector::new(
        StatisticalDetector::fit_normalized(&benign_baseline(5), 3.2),
        n_star,
    );
    let config = EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .cyclic(true)
        .build()
        .unwrap();
    let mut run = AugmentedRun::new(
        machine,
        config,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: n_star as usize * 3,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );

    let mut benign_pids = Vec::new();
    for (i, spec) in roster().into_iter().enumerate() {
        if i % 7 != 0 {
            continue; // every 7th spec: 12 tenants across all suites
        }
        let mut spec = spec;
        spec.epochs_to_complete = spec.epochs_to_complete.min(200);
        let pid = run
            .machine_mut()
            .spawn(Box::new(BenchmarkWorkload::new(spec)));
        run.watch(pid);
        benign_pids.push(pid);
    }
    let miner = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    let ransom = run.machine_mut().spawn(Box::new(Ransomware::default()));
    run.watch(miner);
    run.watch(ransom);

    run.run(120);

    assert!(!run.machine().is_alive(miner), "miner must be terminated");
    assert!(
        !run.machine().is_alive(ransom),
        "ransomware must be terminated"
    );
    assert_eq!(run.state(miner), Some(ProcessState::Terminated));
    assert_eq!(run.state(ransom), Some(ProcessState::Terminated));
    for pid in benign_pids {
        assert!(
            run.machine().is_alive(pid) || run.machine().is_completed(pid),
            "benign tenant {pid:?} was terminated"
        );
        assert_ne!(
            run.state(pid),
            Some(ProcessState::Terminated),
            "benign tenant {pid:?} reached the terminated state"
        );
    }
}

#[test]
fn resource_floor_bounds_worst_case_throttling() {
    let detector = ScriptedDetector::constant(Classification::Malicious);
    let config = EngineConfig::builder()
        .measurements_required(1000)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.05))
        .build()
        .unwrap();
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        config,
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: 8,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    run.run(50);
    for rec in run.history(pid) {
        assert!(
            rec.cpu_share >= 0.05 - 1e-12,
            "floor violated: {}",
            rec.cpu_share
        );
    }
}
