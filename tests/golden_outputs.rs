//! Golden outputs: the substrate refactor (SoA filesystem, dense process
//! table, allocation-free epoch loop) must not change a single experiment
//! result. These tests pin the exact (bit-identical) values the pre-refactor
//! seed produced for Table II, Fig. 6b and the multi-tenant machine.
//!
//! To regenerate after an *intentional* behaviour change, run
//! `cargo test --release --test golden_outputs -- --ignored --nocapture`
//! and paste the printed literals below.

use valkyrie::experiments as x;

fn capture_table2() -> Vec<(String, String, f64, f64)> {
    x::table2::run(&x::table2::Table2Config::quick())
        .rows
        .into_iter()
        .map(|r| {
            (
                r.resource.to_string(),
                r.setting,
                r.kb_per_s,
                r.slowdown_pct,
            )
        })
        .collect()
}

fn capture_fig6b() -> (f64, f64, f64) {
    let r = x::fig6::run_b(&x::fig6::Fig6Config::quick());
    (r.mb_without, r.mb_with_cpu, r.mb_with_fs)
}

fn capture_multi_tenant() -> (usize, f64, f64, f64, usize, u64) {
    let r = x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::quick());
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed_pct,
        r.benign_slowdown_pct,
        r.benign_completed,
        r.purged,
    )
}

fn capture_multi_tenant_async() -> (usize, f64, f64, f64, usize, u64, u64, u64) {
    let r = x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::quick_async());
    let stats = r.ingest.expect("async runs expose ingest stats");
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed_pct,
        r.benign_slowdown_pct,
        r.benign_completed,
        r.purged,
        stats.published,
        stats.dropped,
    )
}

#[allow(clippy::type_complexity)]
fn capture_fleet_scale() -> (usize, f64, u64, u64, u64, u64, u64, u64, u64, u64) {
    let r = x::fleet_scale::run(&x::fleet_scale::FleetScaleConfig::quick());
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed,
        r.services_completed,
        r.services_drained,
        r.services_evicted,
        r.machines_booted,
        r.machines_decommissioned,
        r.purged,
        r.observations,
    )
}

/// Prints the current values as Rust literals (for regeneration).
#[test]
#[ignore]
fn print_golden_values() {
    println!("// --- table2 quick rows ---");
    for (res, set, kb, sd) in capture_table2() {
        println!("    (\"{res}\", \"{set}\", {kb:?}, {sd:?}),");
    }
    let (a, b, c) = capture_fig6b();
    println!("// --- fig6b quick ---");
    println!("    ({a:?}, {b:?}, {c:?})");
    let mt = capture_multi_tenant();
    println!("// --- multi_tenant quick ---");
    println!("    {mt:?}");
    let mta = capture_multi_tenant_async();
    println!("// --- multi_tenant quick_async ---");
    println!("    {mta:?}");
    let fs = capture_fleet_scale();
    println!("// --- fleet_scale quick ---");
    println!("    {fs:?}");
}

#[test]
fn table2_rows_are_bit_identical_to_seed() {
    let expected: &[(&str, &str, f64, f64)] = &[
        ("CPU", "100% [default]", 225.70000000000002, 0.0),
        ("CPU", "90%", 222.29999999999998, 1.5064244572441488),
        ("CPU", "50%", 123.5, 45.28134692069119),
        ("CPU", "1%", 2.47, 98.90562693841383),
        ("Memory", "4.7M [default]", 225.70000000000002, 0.0),
        (
            "Memory",
            "4.6M (93.6%)",
            0.6696992499095603,
            99.70327902086417,
        ),
        (
            "Memory",
            "4.4M (89.4%)",
            0.09724514613143208,
            99.95691398044686,
        ),
        ("Network", "1024G [default]", 225.70000000000002, 0.0),
        ("Network", "512G", 199.97020000000006, 11.399999999999977),
        ("Network", "512M", 56.650700000000036, 74.89999999999999),
        ("Network", "512K", 0.049654, 99.978),
        (
            "Filesystem",
            "100 files/s [default]",
            225.70000000000002,
            0.0,
        ),
        ("Filesystem", "90 files/s", 203.13, 10.000000000000009),
        ("Filesystem", "50 files/s", 112.85000000000001, 50.0),
        ("Filesystem", "1 file/s", 0.0, 100.0),
    ];
    let got = capture_table2();
    assert_eq!(got.len(), expected.len());
    for ((res, set, kb, sd), (eres, eset, ekb, esd)) in got.iter().zip(expected) {
        assert_eq!(res, eres);
        assert_eq!(set, eset);
        assert_eq!(
            kb.to_bits(),
            ekb.to_bits(),
            "{res}/{set}: {kb:?} vs {ekb:?}"
        );
        assert_eq!(
            sd.to_bits(),
            esd.to_bits(),
            "{res}/{set}: {sd:?} vs {esd:?}"
        );
    }
}

#[test]
fn fig6b_curves_are_bit_identical_to_seed() {
    let (without, cpu, fs) = capture_fig6b();
    let (ew, ec, ef) = (17.505f64, 3.59436f64, 5.21558f64);
    assert_eq!(without.to_bits(), ew.to_bits(), "{without:?} vs {ew:?}");
    assert_eq!(cpu.to_bits(), ec.to_bits(), "{cpu:?} vs {ec:?}");
    assert_eq!(fs.to_bits(), ef.to_bits(), "{fs:?} vs {ef:?}");
}

/// The fleet-scale quick counters: kill-at-`N*+1` (n_star = 8 → mean 9.0
/// epochs), wrongful terminations, churn totals (service drains, machine
/// boots/decommissions and their evictions), purges and total
/// observations. Every draw in the run is a pure hash, so these are
/// bit-stable across platforms and engine groupings.
#[test]
fn fleet_scale_counters_are_bit_identical_to_seed() {
    let got = capture_fleet_scale();
    let expected: (usize, f64, u64, u64, u64, u64, u64, u64, u64, u64) =
        (4, 9.0, 16, 382, 392, 186, 240, 42, 393, 35577);
    assert_eq!(got.0, expected.0, "attacks terminated");
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "mean epochs to kill: {:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(got.2, expected.2, "benign killed");
    assert_eq!(got.3, expected.3, "services completed");
    assert_eq!(got.4, expected.4, "services drained");
    assert_eq!(got.5, expected.5, "services evicted");
    assert_eq!(got.6, expected.6, "machines booted");
    assert_eq!(got.7, expected.7, "machines decommissioned");
    assert_eq!(got.8, expected.8, "purged");
    assert_eq!(got.9, expected.9, "observations");
}

#[test]
fn multi_tenant_rates_are_bit_identical_to_seed() {
    let got = capture_multi_tenant();
    let expected = (
        3usize,
        11.0f64,
        5.333333333333333f64,
        0.4304577464788733f64,
        0usize,
        19u64,
    );
    assert_eq!(got.0, expected.0);
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "{:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(
        got.2.to_bits(),
        expected.2.to_bits(),
        "{:?} vs {:?}",
        got.2,
        expected.2
    );
    assert_eq!(
        got.3.to_bits(),
        expected.3.to_bits(),
        "{:?} vs {:?}",
        got.3,
        expected.3
    );
    assert_eq!(got.4, expected.4);
    assert_eq!(got.5, expected.5);
}

/// The async-ingest variant's response outcome is pinned too: refactors of
/// the ingest tier (ring layout, drain merge, scheduling) must not
/// silently change the kill or wrongful-termination rates. The 16.0
/// mean-epochs-to-kill against the synchronous run's 11.0 *is* the
/// detector latency (3 + up to 2 jitter epochs) showing up as detection
/// lag — while the driver ticks every one of its 80 epochs on schedule.
#[test]
fn multi_tenant_async_ingest_rates_are_bit_identical_to_seed() {
    let got = capture_multi_tenant_async();
    let expected = (
        3usize,
        16.0f64,
        4.666666666666667f64,
        0.4265734265734266f64,
        0usize,
        17u64,
        22055u64, // verdicts published through the rings
        0u64,     // none dropped: the rings are sized for the fleet
    );
    assert_eq!(got.0, expected.0);
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "{:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(
        got.2.to_bits(),
        expected.2.to_bits(),
        "{:?} vs {:?}",
        got.2,
        expected.2
    );
    assert_eq!(
        got.3.to_bits(),
        expected.3.to_bits(),
        "{:?} vs {:?}",
        got.3,
        expected.3
    );
    assert_eq!(got.4, expected.4);
    assert_eq!(got.5, expected.5);
    assert_eq!(got.6, expected.6);
    assert_eq!(got.7, expected.7);
}
