//! Golden outputs: the substrate refactor (SoA filesystem, dense process
//! table, allocation-free epoch loop) must not change a single experiment
//! result. These tests pin the exact (bit-identical) values the pre-refactor
//! seed produced for Table II, Fig. 6b and the multi-tenant machine.
//!
//! To regenerate after an *intentional* behaviour change, run
//! `cargo test --release --test golden_outputs -- --ignored --nocapture`
//! and paste the printed literals below.

use valkyrie::experiments as x;

fn capture_table2() -> Vec<(String, String, f64, f64)> {
    x::table2::run(&x::table2::Table2Config::quick())
        .rows
        .into_iter()
        .map(|r| {
            (
                r.resource.to_string(),
                r.setting,
                r.kb_per_s,
                r.slowdown_pct,
            )
        })
        .collect()
}

fn capture_fig6b() -> (f64, f64, f64) {
    let r = x::fig6::run_b(&x::fig6::Fig6Config::quick());
    (r.mb_without, r.mb_with_cpu, r.mb_with_fs)
}

fn capture_multi_tenant() -> (usize, f64, f64, f64, usize, u64) {
    let r = x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::quick());
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed_pct,
        r.benign_slowdown_pct,
        r.benign_completed,
        r.purged,
    )
}

fn capture_multi_tenant_async() -> (usize, f64, f64, f64, usize, u64, u64, u64) {
    let r = x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::quick_async());
    let stats = r.ingest.expect("async runs expose ingest stats");
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed_pct,
        r.benign_slowdown_pct,
        r.benign_completed,
        r.purged,
        stats.published,
        stats.dropped,
    )
}

/// One noise-flood run's counters: `(attacks_terminated,
/// mean_epochs_to_kill, benign_killed_pct, flood_decoys, published,
/// dropped, priority_queued, evictions_deflected, dropped_by_publisher)`.
/// Publisher 0 is the driver-side slot (unused here), 1 the legit
/// detector handle, 2 the flooder.
#[allow(clippy::type_complexity)]
fn capture_multi_tenant_flood(
    defense: valkyrie_core::IngestDefense,
) -> (usize, f64, f64, u64, u64, u64, u64, u64, Vec<u64>) {
    let r = x::multi_tenant::run(&x::multi_tenant::MultiTenantConfig::quick_flood(defense));
    let stats = r.ingest.expect("flood runs expose ingest stats");
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed_pct,
        r.flood_decoys,
        stats.published,
        stats.dropped,
        stats.priority_queued,
        stats.evictions_deflected,
        stats.dropped_by_publisher,
    )
}

#[allow(clippy::type_complexity)]
fn capture_fleet_scale() -> (usize, f64, u64, u64, u64, u64, u64, u64, u64, u64) {
    let r = x::fleet_scale::run(&x::fleet_scale::FleetScaleConfig::quick());
    (
        r.attacks_terminated,
        r.mean_epochs_to_kill,
        r.benign_killed,
        r.services_completed,
        r.services_drained,
        r.services_evicted,
        r.machines_booted,
        r.machines_decommissioned,
        r.purged,
        r.observations,
    )
}

/// The fusion sweep flattened to one row per point (baseline first):
/// `(slow_weight, attacks_terminated, mean_epochs_to_kill,
/// benign_killed_pct, benign_completed, verdicts, stale_decayed,
/// escalations)`.
#[allow(clippy::type_complexity)]
fn capture_fusion_sweep() -> Vec<(Option<f64>, usize, f64, f64, usize, u64, u64, u64)> {
    let r = x::ensemble::run_fusion(&x::ensemble::FusionSweepConfig::quick());
    std::iter::once(&r.baseline)
        .chain(r.points.iter())
        .map(|p| {
            (
                p.slow_weight,
                p.attacks_terminated,
                p.mean_epochs_to_kill,
                p.benign_killed_pct,
                p.benign_completed,
                p.fusion.verdicts,
                p.fusion.stale_decayed,
                p.fusion.escalations,
            )
        })
        .collect()
}

/// The adaptive best-response ranking (quick config), one row per defense:
/// `(label, worst_floor_pct, adaptive_progress, killed_pct,
/// mean_kill_epoch, fixed_best_floor_pct, gap_pts)`. A never-killed best
/// response reports `mean_kill_epoch = -1.0` (the NaN sentinel), so the
/// pins stay comparable via `to_bits`.
#[allow(clippy::type_complexity)]
fn capture_adaptive() -> Vec<(String, f64, f64, f64, f64, f64, f64)> {
    x::adaptive::run(&x::adaptive::AdaptiveConfig::quick())
        .rows
        .into_iter()
        .map(|r| {
            (
                r.label,
                r.worst_floor_pct,
                r.adaptive_progress,
                r.killed_pct,
                if r.mean_kill_epoch.is_nan() {
                    -1.0
                } else {
                    r.mean_kill_epoch
                },
                r.fixed_best_floor_pct,
                r.gap_pts,
            )
        })
        .collect()
}

/// The law-probe table (quick config):
/// `(label, estimated_family, estimated_param, hit, closed_loop_floor_pct)`.
fn capture_adaptive_probe() -> Vec<(String, String, f64, bool, f64)> {
    x::adaptive::run(&x::adaptive::AdaptiveConfig::quick())
        .probe
        .into_iter()
        .map(|r| {
            (
                r.label,
                r.family,
                r.estimated,
                r.hit,
                r.closed_loop_floor_pct,
            )
        })
        .collect()
}

/// One efficacy curve flattened to `(measurements, f1, fpr)` triples.
fn curve_rows(curve: &valkyrie_core::EfficacyCurve) -> Vec<(u32, f64, f64)> {
    curve
        .points()
        .iter()
        .map(|p| (p.measurements, p.f1, p.fpr))
        .collect()
}

#[allow(clippy::type_complexity)]
fn capture_fig1() -> Vec<(&'static str, Vec<(u32, f64, f64)>)> {
    let r = x::fig1::run(&x::fig1::Fig1Config::quick());
    vec![
        ("small_ann", curve_rows(&r.small_ann)),
        ("large_ann", curve_rows(&r.large_ann)),
        ("svm", curve_rows(&r.svm)),
        ("xgboost", curve_rows(&r.xgboost)),
    ]
}

fn capture_fig5a() -> Vec<(String, u64, u64, bool)> {
    let r = x::fig5::run_5a(&x::fig5::Fig5Config::quick());
    assert!(r.mt_rows.is_empty(), "quick config is single-threaded only");
    r.rows
        .into_iter()
        .map(|row| {
            (
                row.name,
                row.baseline_epochs,
                row.valkyrie_epochs,
                row.terminated,
            )
        })
        .collect()
}

/// Prints the current values as Rust literals (for regeneration).
#[test]
#[ignore]
fn print_golden_values() {
    println!("// --- fig1 quick curves ---");
    for (name, rows) in capture_fig1() {
        println!("    // {name}");
        for (n, f1, fpr) in rows {
            println!("    ({n}, {f1:?}, {fpr:?}),");
        }
    }
    println!("// --- fig5a quick rows ---");
    for (name, base, valk, term) in capture_fig5a() {
        println!("    (\"{name}\", {base}, {valk}, {term}),");
    }
    println!("// --- table2 quick rows ---");
    for (res, set, kb, sd) in capture_table2() {
        println!("    (\"{res}\", \"{set}\", {kb:?}, {sd:?}),");
    }
    let (a, b, c) = capture_fig6b();
    println!("// --- fig6b quick ---");
    println!("    ({a:?}, {b:?}, {c:?})");
    let mt = capture_multi_tenant();
    println!("// --- multi_tenant quick ---");
    println!("    {mt:?}");
    let mta = capture_multi_tenant_async();
    println!("// --- multi_tenant quick_async ---");
    println!("    {mta:?}");
    let undefended = capture_multi_tenant_flood(valkyrie_core::IngestDefense::default());
    println!("// --- multi_tenant quick_flood (undefended) ---");
    println!("    {undefended:?}");
    let defended = capture_multi_tenant_flood(valkyrie_core::IngestDefense::full());
    println!("// --- multi_tenant quick_flood (defended) ---");
    println!("    {defended:?}");
    let fs = capture_fleet_scale();
    println!("// --- fleet_scale quick ---");
    println!("    {fs:?}");
    println!("// --- fusion sweep quick (baseline first) ---");
    for row in capture_fusion_sweep() {
        println!("    {row:?},");
    }
    println!("// --- adaptive ranking quick ---");
    for (label, floor, prog, killed, epoch, fixed, gap) in capture_adaptive() {
        println!(
            "    (\"{label}\", {floor:?}, {prog:?}, {killed:?}, {epoch:?}, {fixed:?}, {gap:?}),"
        );
    }
    println!("// --- adaptive probe quick ---");
    for (label, family, est, hit, floor) in capture_adaptive_probe() {
        println!("    (\"{label}\", \"{family}\", {est:?}, {hit}, {floor:?}),");
    }
}

#[test]
fn table2_rows_are_bit_identical_to_seed() {
    let expected: &[(&str, &str, f64, f64)] = &[
        ("CPU", "100% [default]", 225.70000000000002, 0.0),
        ("CPU", "90%", 222.29999999999998, 1.5064244572441488),
        ("CPU", "50%", 123.5, 45.28134692069119),
        ("CPU", "1%", 2.47, 98.90562693841383),
        ("Memory", "4.7M [default]", 225.70000000000002, 0.0),
        (
            "Memory",
            "4.6M (93.6%)",
            0.6696992499095603,
            99.70327902086417,
        ),
        (
            "Memory",
            "4.4M (89.4%)",
            0.09724514613143208,
            99.95691398044686,
        ),
        ("Network", "1024G [default]", 225.70000000000002, 0.0),
        ("Network", "512G", 199.97020000000006, 11.399999999999977),
        ("Network", "512M", 56.650700000000036, 74.89999999999999),
        ("Network", "512K", 0.049654, 99.978),
        (
            "Filesystem",
            "100 files/s [default]",
            225.70000000000002,
            0.0,
        ),
        ("Filesystem", "90 files/s", 203.13, 10.000000000000009),
        ("Filesystem", "50 files/s", 112.85000000000001, 50.0),
        ("Filesystem", "1 file/s", 0.0, 100.0),
    ];
    let got = capture_table2();
    assert_eq!(got.len(), expected.len());
    for ((res, set, kb, sd), (eres, eset, ekb, esd)) in got.iter().zip(expected) {
        assert_eq!(res, eres);
        assert_eq!(set, eset);
        assert_eq!(
            kb.to_bits(),
            ekb.to_bits(),
            "{res}/{set}: {kb:?} vs {ekb:?}"
        );
        assert_eq!(
            sd.to_bits(),
            esd.to_bits(),
            "{res}/{set}: {sd:?} vs {esd:?}"
        );
    }
}

#[test]
fn fig6b_curves_are_bit_identical_to_seed() {
    let (without, cpu, fs) = capture_fig6b();
    let (ew, ec, ef) = (17.505f64, 3.59436f64, 5.21558f64);
    assert_eq!(without.to_bits(), ew.to_bits(), "{without:?} vs {ew:?}");
    assert_eq!(cpu.to_bits(), ec.to_bits(), "{cpu:?} vs {ec:?}");
    assert_eq!(fs.to_bits(), ef.to_bits(), "{fs:?} vs {ef:?}");
}

/// The fleet-scale quick counters: kill-at-`N*+1` (n_star = 8 → mean 9.0
/// epochs), wrongful terminations, churn totals (service drains, machine
/// boots/decommissions and their evictions), purges and total
/// observations. Every draw in the run is a pure hash, so these are
/// bit-stable across platforms and engine groupings.
#[test]
fn fleet_scale_counters_are_bit_identical_to_seed() {
    let got = capture_fleet_scale();
    let expected: (usize, f64, u64, u64, u64, u64, u64, u64, u64, u64) =
        (4, 9.0, 16, 382, 392, 186, 240, 42, 393, 35577);
    assert_eq!(got.0, expected.0, "attacks terminated");
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "mean epochs to kill: {:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(got.2, expected.2, "benign killed");
    assert_eq!(got.3, expected.3, "services completed");
    assert_eq!(got.4, expected.4, "services drained");
    assert_eq!(got.5, expected.5, "services evicted");
    assert_eq!(got.6, expected.6, "machines booted");
    assert_eq!(got.7, expected.7, "machines decommissioned");
    assert_eq!(got.8, expected.8, "purged");
    assert_eq!(got.9, expected.9, "observations");
}

#[test]
fn multi_tenant_rates_are_bit_identical_to_seed() {
    let got = capture_multi_tenant();
    let expected = (
        3usize,
        11.0f64,
        5.333333333333333f64,
        0.4304577464788733f64,
        0usize,
        19u64,
    );
    assert_eq!(got.0, expected.0);
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "{:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(
        got.2.to_bits(),
        expected.2.to_bits(),
        "{:?} vs {:?}",
        got.2,
        expected.2
    );
    assert_eq!(
        got.3.to_bits(),
        expected.3.to_bits(),
        "{:?} vs {:?}",
        got.3,
        expected.3
    );
    assert_eq!(got.4, expected.4);
    assert_eq!(got.5, expected.5);
}

/// The async-ingest variant's response outcome is pinned too: refactors of
/// the ingest tier (ring layout, drain merge, scheduling) must not
/// silently change the kill or wrongful-termination rates. The 16.0
/// mean-epochs-to-kill against the synchronous run's 11.0 *is* the
/// detector latency (3 + up to 2 jitter epochs) showing up as detection
/// lag — while the driver ticks every one of its 80 epochs on schedule.
#[test]
fn multi_tenant_async_ingest_rates_are_bit_identical_to_seed() {
    let got = capture_multi_tenant_async();
    let expected = (
        3usize,
        16.0f64,
        4.666666666666667f64,
        0.4265734265734266f64,
        0usize,
        17u64,
        22055u64, // verdicts published through the rings
        0u64,     // none dropped: the rings are sized for the fleet
    );
    assert_eq!(got.0, expected.0);
    assert_eq!(
        got.1.to_bits(),
        expected.1.to_bits(),
        "{:?} vs {:?}",
        got.1,
        expected.1
    );
    assert_eq!(
        got.2.to_bits(),
        expected.2.to_bits(),
        "{:?} vs {:?}",
        got.2,
        expected.2
    );
    assert_eq!(
        got.3.to_bits(),
        expected.3.to_bits(),
        "{:?} vs {:?}",
        got.3,
        expected.3
    );
    assert_eq!(got.4, expected.4);
    assert_eq!(got.5, expected.5);
    assert_eq!(got.6, expected.6);
    assert_eq!(got.7, expected.7);
}

/// The noise-flood DoS, pinned at the PR that introduced it: with small
/// `DropOldest` rings and a decoy stream out-publishing the legit
/// detector at the attack pids' shards, **every** attack survives — the
/// flood evicts the real verdicts before the driver can drain them. The
/// per-publisher breakdown shows the collateral: publisher 1 (the legit
/// handle) loses 10 986 verdicts, most of the drops.
#[test]
fn multi_tenant_flood_counters_are_bit_identical_to_seed() {
    let got = capture_multi_tenant_flood(valkyrie_core::IngestDefense::default());
    assert_eq!(got.0, 0, "no attack terminated under the flood");
    assert!(got.1.is_nan(), "no kills, no kill latency: {:?}", got.1);
    let pct = 3.3333333333333335f64;
    assert_eq!(got.2.to_bits(), pct.to_bits(), "{:?} vs {:?}", got.2, pct);
    assert_eq!(got.3, 27200, "decoys published");
    assert_eq!(got.4, 49477, "published (legit + decoys)");
    assert_eq!(got.5, 17706, "evicted by overflow");
    assert_eq!(got.6, 0, "no priority lane without the defense");
    assert_eq!(got.7, 0, "no deflections without the defense");
    assert_eq!(got.8, vec![0, 10986, 6720], "drops by publisher");
}

/// The same flood with the overload defense armed (priority lane +
/// per-publisher fair queueing): the kill rate, kill latency and wrongful
/// terminations return **bit-for-bit** to the flood-free `quick_async`
/// values (3 kills at 16.0 mean epochs) while the flood is still running
/// at full rate. The counters show how: 2 966 verdicts re-routed through
/// the priority lane once their pids turned suspicious, and 14 402
/// evictions deflected from the legit publisher onto the flooder, which
/// now absorbs 14 914 of the 15 630 drops — it mostly evicts itself.
#[test]
fn multi_tenant_defended_flood_counters_are_bit_identical_to_seed() {
    let got = capture_multi_tenant_flood(valkyrie_core::IngestDefense::full());
    assert_eq!(got.0, 3, "every attack terminated despite the flood");
    let mean = 16.0f64;
    assert_eq!(got.1.to_bits(), mean.to_bits(), "{:?} vs {mean:?}", got.1);
    let pct = 4.666666666666667f64;
    assert_eq!(got.2.to_bits(), pct.to_bits(), "{:?} vs {pct:?}", got.2);
    assert_eq!(got.3, 27200, "same decoy stream as the undefended run");
    assert_eq!(got.4, 49255, "published (legit + decoys)");
    assert_eq!(got.5, 15630, "evicted by overflow");
    assert_eq!(got.6, 2966, "priority-lane verdicts");
    assert!(got.6 > 0, "the priority lane must carry verdicts");
    assert_eq!(got.7, 14402, "evictions deflected onto the flooder");
    assert!(got.7 > 0, "fair queueing must deflect evictions");
    assert_eq!(got.8, vec![0, 716, 14914], "drops by publisher");
    assert!(
        got.8[2] > 10 * got.8[1],
        "the flooder pays for its own flood"
    );
}

/// The heterogeneous-cadence fusion sweep's quick counters, pinned at the
/// PR that introduced the weighted-evidence verdict path. The baseline row
/// (`None`) is the single fast-weak binary detector: 77% of the benign
/// fleet wrongfully killed at verdict FPR 0.20. Every fused point kills
/// the same 3/3 attacks at a wrongful rate 30–60× lower — the
/// fast-weak + slow-strong composition carrying the false-positive
/// budget. All draws come from the seeded `StdRng` streams, so the
/// counters are bit-stable across platforms, shard counts and execution
/// modes.
#[test]
fn fusion_sweep_counters_are_bit_identical_to_seed() {
    #[allow(clippy::type_complexity)]
    let expected: &[(Option<f64>, usize, f64, f64, usize, u64, u64, u64)] = &[
        (None, 3, 18.333333333333332, 77.0, 0, 0, 0, 637),
        (Some(0.5), 3, 11.0, 2.0, 0, 28896, 2646, 715),
        (
            Some(1.0),
            3,
            11.666666666666666,
            2.3333333333333335,
            0,
            28854,
            2682,
            96,
        ),
        (Some(2.0), 3, 11.0, 2.0, 0, 28865, 2682, 190),
        (Some(4.0), 3, 11.0, 1.3333333333333333, 0, 28903, 2676, 168),
    ];
    let got = capture_fusion_sweep();
    assert_eq!(got.len(), expected.len());
    for ((w, killed, epochs, pct, done, verdicts, stale, esc), (ew, ek, ee, ep, ed, ev, es, ec)) in
        got.iter().zip(expected)
    {
        assert_eq!(w, ew, "slow weight grid");
        assert_eq!(killed, ek, "{w:?}: attacks terminated");
        assert_eq!(
            epochs.to_bits(),
            ee.to_bits(),
            "{w:?}: epochs to kill {epochs:?} vs {ee:?}"
        );
        assert_eq!(
            pct.to_bits(),
            ep.to_bits(),
            "{w:?}: benign killed {pct:?} vs {ep:?}"
        );
        assert_eq!(done, ed, "{w:?}: benign completed");
        assert_eq!(verdicts, ev, "{w:?}: fused verdicts");
        assert_eq!(stale, es, "{w:?}: stale-decayed");
        assert_eq!(esc, ec, "{w:?}: escalations");
    }
}

/// The adaptive best-response ranking (quick config), pinned at the PR
/// that introduced it. The whole study — fixed-roster baselines, the
/// grid + coordinate-descent search, and the winning strategy's replay —
/// is seeded-StdRng deterministic, so every floor, progress and gap value
/// is bit-stable, debug or release. The two ladder rows at the bottom are
/// the headline: a mass rider holding its expected fused confidence just
/// below the throttle rung is never killed and shaves 39–50 efficacy
/// points off the fixed-roster floor.
#[test]
fn adaptive_ranking_is_bit_identical_to_seed() {
    #[allow(clippy::type_complexity)]
    let expected: &[(&str, f64, f64, f64, f64, f64, f64)] = &[
        (
            "sched g=0.10 + exp2",
            95.0275,
            3.9779999999999993,
            100.0,
            32.666666666666664,
            97.26666666666667,
            2.2391666666666623,
        ),
        (
            "mult 0.90/unit + exp2",
            94.12498406286657,
            4.700012749706744,
            100.0,
            32.666666666666664,
            97.12756828958334,
            3.0025842267167633,
        ),
        (
            "pp 0.10/unit + exp2",
            93.00625,
            5.594999999999999,
            100.0,
            32.333333333333336,
            96.20416666666667,
            3.1979166666666714,
        ),
        (
            "pp 0.10/unit + inc",
            90.1525,
            7.8779999999999974,
            100.0,
            32.333333333333336,
            92.26458333333333,
            2.112083333333331,
        ),
        (
            "sched g=0.10 + inc",
            90.13865,
            7.889079999999999,
            100.0,
            32.333333333333336,
            92.26666666666668,
            2.1280166666666815,
        ),
        (
            "halve/event + inc",
            88.65625,
            9.075,
            100.0,
            32.166666666666664,
            89.0625,
            0.40625,
        ),
        (
            "mult 0.90/unit + inc",
            88.44837555756392,
            9.241299553948869,
            100.0,
            32.333333333333336,
            89.25902606555893,
            0.8106505079950068,
        ),
        (
            "mult 0.70/event + inc",
            86.180125,
            11.0559,
            100.0,
            32.5,
            85.52083333333333,
            -0.6592916666666753,
        ),
        (
            "halve/event + exp2",
            82.23958333333334,
            14.20833333333333,
            100.0,
            36.0,
            89.0625,
            6.822916666666657,
        ),
        (
            "mult 0.70/event + exp2",
            75.83375,
            19.333,
            100.0,
            36.0,
            85.4375,
            9.603750000000005,
        ),
        (
            "ladder binary",
            53.48837209302319,
            37.209302325581454,
            0.0,
            -1.0,
            92.86440677324893,
            39.37603468022574,
        ),
        (
            "ladder graduated",
            42.50187436485052,
            45.998500508119584,
            0.0,
            -1.0,
            92.86440677324893,
            50.36253240839841,
        ),
    ];
    let got = capture_adaptive();
    assert_eq!(got.len(), expected.len());
    for ((label, floor, prog, killed, epoch, fixed, gap), (el, ef, ep, ek, ee, efx, eg)) in
        got.iter().zip(expected)
    {
        assert_eq!(label, el, "ranking order");
        assert_eq!(
            floor.to_bits(),
            ef.to_bits(),
            "{label}: worst floor {floor:?} vs {ef:?}"
        );
        assert_eq!(
            prog.to_bits(),
            ep.to_bits(),
            "{label}: progress {prog:?} vs {ep:?}"
        );
        assert_eq!(
            killed.to_bits(),
            ek.to_bits(),
            "{label}: killed {killed:?} vs {ek:?}"
        );
        assert_eq!(
            epoch.to_bits(),
            ee.to_bits(),
            "{label}: kill epoch {epoch:?} vs {ee:?}"
        );
        assert_eq!(
            fixed.to_bits(),
            efx.to_bits(),
            "{label}: fixed floor {fixed:?} vs {efx:?}"
        );
        assert_eq!(
            gap.to_bits(),
            eg.to_bits(),
            "{label}: gap {gap:?} vs {eg:?}"
        );
    }
}

/// The law-probe identification table (quick config): a three-epoch
/// calibrated burst re-derives every deployed family and parameter, and
/// the closed-loop (probe → calibrate → modulate) floors are pinned too.
#[test]
fn adaptive_probe_is_bit_identical_to_seed() {
    let expected: &[(&str, &str, f64, bool, f64)] = &[
        (
            "pp 0.10/unit",
            "percent-point/unit",
            0.10000000000000002,
            true,
            93.18125,
        ),
        (
            "mult 0.90/unit",
            "multiplicative/unit",
            0.9,
            true,
            90.34310557849435,
        ),
        (
            "mult 0.70/event",
            "multiplicative/event",
            0.7,
            true,
            88.39270833333333,
        ),
        ("halve/event", "halve/event", 0.5, true, 90.18229166666667),
        (
            "sched g=0.10",
            "scheduler-weight",
            0.09999999999999999,
            true,
            93.02833333333334,
        ),
    ];
    let got = capture_adaptive_probe();
    assert_eq!(got.len(), expected.len());
    for ((label, family, est, hit, floor), (el, efam, ee, eh, efl)) in got.iter().zip(expected) {
        assert_eq!(label, el);
        assert_eq!(family, efam, "{label}: family");
        assert_eq!(
            est.to_bits(),
            ee.to_bits(),
            "{label}: estimate {est:?} vs {ee:?}"
        );
        assert_eq!(hit, eh, "{label}: hit");
        assert_eq!(
            floor.to_bits(),
            efl.to_bits(),
            "{label}: closed-loop floor {floor:?} vs {efl:?}"
        );
    }
}

/// Fig. 1 efficacy curves (quick config) pinned before the batched/cached
/// ML tier landed: every `predict_batch`, prefix-vote and model-cache path
/// must reproduce these f1/fpr values bit-for-bit.
#[test]
fn fig1_quick_curves_are_bit_identical_to_seed() {
    #[allow(clippy::type_complexity)]
    let expected: &[(&str, &[(u32, f64, f64)])] = &[
        (
            "small_ann",
            &[
                (1, 0.5454545454545454, 0.25),
                (3, 0.923076923076923, 0.0),
                (5, 0.923076923076923, 0.0),
                (7, 1.0, 0.0),
                (9, 1.0, 0.0),
                (11, 1.0, 0.0),
                (13, 1.0, 0.0),
                (15, 1.0, 0.0),
                (17, 1.0, 0.0),
                (19, 1.0, 0.0),
                (21, 0.9333333333333333, 0.25),
                (23, 0.9333333333333333, 0.25),
                (25, 0.9333333333333333, 0.25),
            ],
        ),
        (
            "large_ann",
            &[
                (1, 0.5454545454545454, 0.25),
                (3, 0.923076923076923, 0.0),
                (5, 0.923076923076923, 0.0),
                (7, 0.923076923076923, 0.0),
                (9, 1.0, 0.0),
                (11, 1.0, 0.0),
                (13, 1.0, 0.0),
                (15, 1.0, 0.0),
                (17, 1.0, 0.0),
                (19, 1.0, 0.0),
                (21, 0.9333333333333333, 0.25),
                (23, 0.9333333333333333, 0.25),
                (25, 0.9333333333333333, 0.25),
            ],
        ),
        (
            "svm",
            &[
                (1, 0.6, 0.0),
                (3, 0.6, 0.0),
                (5, 0.7272727272727273, 0.0),
                (7, 0.6, 0.0),
                (9, 0.923076923076923, 0.0),
                (11, 0.7272727272727273, 0.0),
                (13, 0.6, 0.0),
                (15, 0.7272727272727273, 0.0),
                (17, 0.7272727272727273, 0.0),
                (19, 0.6, 0.0),
                (21, 0.6, 0.0),
                (23, 0.7272727272727273, 0.0),
                (25, 0.6, 0.0),
            ],
        ),
        (
            "xgboost",
            &[
                (1, 0.6, 0.0),
                (3, 0.8333333333333333, 0.0),
                (5, 0.8333333333333333, 0.0),
                (7, 0.923076923076923, 0.0),
                (9, 0.923076923076923, 0.0),
                (11, 0.923076923076923, 0.0),
                (13, 1.0, 0.0),
                (15, 0.923076923076923, 0.0),
                (17, 1.0, 0.0),
                (19, 1.0, 0.0),
                (21, 1.0, 0.0),
                (23, 1.0, 0.0),
                (25, 1.0, 0.0),
            ],
        ),
    ];
    let got = capture_fig1();
    assert_eq!(got.len(), expected.len());
    for ((name, rows), (ename, erows)) in got.iter().zip(expected) {
        assert_eq!(name, ename);
        assert_eq!(rows.len(), erows.len(), "{name}: point count");
        for ((n, f1, fpr), (en, ef1, efpr)) in rows.iter().zip(*erows) {
            assert_eq!(n, en, "{name}: grid point");
            assert_eq!(
                f1.to_bits(),
                ef1.to_bits(),
                "{name}@{n}: f1 {f1:?} vs {ef1:?}"
            );
            assert_eq!(
                fpr.to_bits(),
                efpr.to_bits(),
                "{name}@{n}: fpr {fpr:?} vs {efpr:?}"
            );
        }
    }
}

/// Fig. 5a per-benchmark epoch counts (quick config) pinned before the
/// detector-cache / incremental-voting / batched-scoring changes: the
/// response trajectory of all 77 benchmarks must stay bit-identical.
#[test]
fn fig5a_quick_rows_are_bit_identical_to_seed() {
    let expected: &[(&str, u64, u64, bool)] = &[
        ("perlbench", 49, 49, false),
        ("bzip2", 42, 42, false),
        ("gcc", 58, 58, false),
        ("mcf", 79, 84, false),
        ("gobmk", 123, 124, false),
        ("hmmer", 48, 48, false),
        ("sjeng", 40, 40, false),
        ("libquantum", 79, 81, false),
        ("h264ref", 127, 128, false),
        ("omnetpp", 67, 71, false),
        ("astar", 73, 73, false),
        ("xalancbmk", 94, 95, false),
        ("bwaves", 94, 97, false),
        ("gamess", 119, 120, false),
        ("milc", 112, 117, false),
        ("zeusmp", 94, 95, false),
        ("gromacs", 109, 110, false),
        ("cactusADM", 72, 72, false),
        ("leslie3d", 84, 87, false),
        ("namd", 49, 49, false),
        ("dealII", 73, 73, false),
        ("soplex", 61, 61, false),
        ("povray", 97, 98, false),
        ("calculix", 75, 75, false),
        ("GemsFDTD", 78, 80, false),
        ("tonto", 83, 83, false),
        ("lbm", 106, 110, false),
        ("wrf", 42, 42, false),
        ("sphinx3", 84, 84, false),
        ("perlbench_r", 46, 46, false),
        ("gcc_r", 130, 131, false),
        ("mcf_r", 44, 45, false),
        ("omnetpp_r", 107, 108, false),
        ("xalancbmk_r", 89, 89, false),
        ("x264_r", 77, 77, false),
        ("deepsjeng_r", 76, 76, false),
        ("leela_r", 130, 131, false),
        ("exchange2_r", 119, 120, false),
        ("xz_r", 81, 81, false),
        ("bwaves_r", 43, 44, false),
        ("cactuBSSN_r", 82, 82, false),
        ("namd_r", 68, 68, false),
        ("parest_r", 116, 117, false),
        ("povray_r", 71, 72, false),
        ("lbm_r", 116, 121, false),
        ("wrf_r", 66, 66, false),
        ("blender_r", 112, 160, false),
        ("cam4_r", 105, 106, false),
        ("imagick_r", 94, 95, false),
        ("nab_r", 68, 68, false),
        ("fotonik3d_r", 62, 63, false),
        ("roms_r", 97, 108, false),
        ("perlbench_s", 98, 98, false),
        ("gcc_s", 82, 82, false),
        ("mcf_s", 93, 96, false),
        ("omnetpp_s", 58, 58, false),
        ("xalancbmk_s", 41, 41, false),
        ("x264_s", 126, 127, false),
        ("deepsjeng_s", 128, 129, false),
        ("leela_s", 82, 82, false),
        ("exchange2_s", 71, 71, false),
        ("xz_s", 129, 130, false),
        ("lbm_s", 67, 70, false),
        ("wrf_s", 117, 118, false),
        ("3dsmax-06", 54, 55, false),
        ("catia-05", 136, 138, false),
        ("creo-02", 101, 104, false),
        ("energy-02", 113, 115, false),
        ("maya-05", 110, 112, false),
        ("medical-02", 66, 67, false),
        ("showcase-02", 42, 43, false),
        ("snx-03", 127, 136, false),
        ("sw-04", 56, 58, false),
        ("stream-copy", 48, 49, false),
        ("stream-scale", 82, 83, false),
        ("stream-add", 79, 81, false),
        ("stream-triad", 61, 62, false),
    ];
    let got = capture_fig5a();
    assert_eq!(got.len(), expected.len());
    for ((name, base, valk, term), (en, eb, ev, et)) in got.iter().zip(expected) {
        assert_eq!(name, en);
        assert_eq!(base, eb, "{name}: baseline epochs");
        assert_eq!(valk, ev, "{name}: valkyrie epochs");
        assert_eq!(term, et, "{name}: terminated");
    }
}
