//! Failure-injection and adversarial-edge tests: oscillating detectors,
//! detector outages, mid-run process churn, long-horizon stability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use valkyrie::attacks::cryptominer::Cryptominer;
use valkyrie::core::prelude::*;
use valkyrie::detect::{Detector, ScriptedDetector};
use valkyrie::experiments::scenario::{AugmentedRun, CpuLever, ScenarioConfig};
use valkyrie::hpc::SampleWindow;
use valkyrie::sim::machine::{Machine, MachineConfig};
use valkyrie::workloads::{roster, BenchmarkWorkload};

fn engine(n_star: u64) -> EngineConfig {
    EngineConfig::builder()
        .measurements_required(n_star)
        .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
        .build()
        .unwrap()
}

#[test]
fn oscillating_detector_keeps_resources_bounded_and_recovers() {
    use Classification::{Benign, Malicious};
    let mut e = ValkyrieEngine::new(engine(10_000));
    let pid = ProcessId(1);
    let mut min_cpu: f64 = 1.0;
    for i in 0..5_000 {
        let c = if i % 2 == 0 { Malicious } else { Benign };
        let r = e.observe(pid, c);
        assert!(r.resources.is_valid());
        min_cpu = min_cpu.min(r.resources.cpu);
        assert_ne!(
            r.state,
            ProcessState::Terminated,
            "oscillation must not kill"
        );
    }
    assert!(min_cpu >= 0.01 - 1e-12);
    // A calm tail fully restores the process.
    let mut last = None;
    for _ in 0..50 {
        last = Some(e.observe(pid, Benign));
    }
    assert!(last.unwrap().resources.is_full());
}

/// A detector that goes silent (always benign) after an outage epoch —
/// models a crashed/fooled detector. Valkyrie degrades gracefully: the
/// attack runs, but benign processes are never harmed.
struct OutageDetector {
    healthy_until: u64,
    epoch: u64,
}

impl Detector for OutageDetector {
    fn name(&self) -> &str {
        "outage"
    }
    fn infer(&mut self, _pid: ProcessId, _w: &SampleWindow) -> Classification {
        self.epoch += 1;
        if self.epoch <= self.healthy_until {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

#[test]
fn detector_outage_restores_resources_instead_of_wedging() {
    let detector = OutageDetector {
        healthy_until: 5,
        epoch: 0,
    };
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(100),
        detector,
        ScenarioConfig {
            cpu_lever: CpuLever::CgroupQuota,
            window: 16,
            shards: 1,
            ..ScenarioConfig::default()
        },
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    run.run(40);
    // After the outage the compensation path unwinds the throttle fully.
    let last = run.history(pid).last().unwrap();
    assert_eq!(last.cpu_share, 1.0);
    assert!(run.machine().is_alive(pid));
}

#[test]
fn attack_that_masks_in_terminable_state_survives_one_shot_monitoring() {
    use Classification::{Benign, Malicious};
    // An adaptive attacker that behaves exactly until N*, then attacks.
    // One-shot Fig. 3 monitoring restores it for good after the benign
    // verdict — this is the known limitation cyclic monitoring addresses.
    let mut script = vec![Benign; 11];
    script.extend(vec![Malicious; 30]);
    let mut one_shot = ValkyrieEngine::new(engine(10));
    let mut cyclic = ValkyrieEngine::new(
        EngineConfig::builder()
            .measurements_required(10)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .cyclic(true)
            .build()
            .unwrap(),
    );
    let pid = ProcessId(9);
    let mut one_shot_killed = false;
    let mut cyclic_killed = false;
    for &c in &script {
        if one_shot.observe(pid, c).action == Action::Terminate {
            one_shot_killed = true;
        }
        if cyclic.observe(pid, c).action == Action::Terminate {
            cyclic_killed = true;
        }
    }
    // One-shot: the single benign verdict at N* ends monitoring (the
    // monitor only terminates on a later malicious epoch in terminable
    // state — which the mask dodged exactly once but not forever).
    assert!(one_shot_killed, "post-verdict malicious epochs still kill");
    assert!(cyclic_killed, "cyclic monitoring re-arms and kills");
}

#[test]
fn process_churn_does_not_corrupt_engine_state() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut e = ValkyrieEngine::new(engine(20));
    let mut live: Vec<ProcessId> = Vec::new();
    for step in 0..2_000u64 {
        if rng.gen_bool(0.05) {
            live.push(ProcessId(step));
        }
        if !live.is_empty() && rng.gen_bool(0.02) {
            let idx = rng.gen_range(0..live.len());
            let pid = live.swap_remove(idx);
            e.forget(pid);
        }
        for &pid in &live {
            let c = if rng.gen_bool(0.1) {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            let r = e.observe(pid, c);
            assert!(r.resources.is_valid());
            assert!(r.threat.value() >= 0.0 && r.threat.value() <= 100.0);
        }
        // Drop terminated pids like a real supervisor would.
        live.retain(|&pid| e.state(pid) != Some(ProcessState::Terminated));
    }
}

#[test]
fn terminated_workload_stays_inspectable_but_inert() {
    let detector = ScriptedDetector::constant(Classification::Malicious);
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(3),
        detector,
        ScenarioConfig::default(),
    );
    let pid = run.machine_mut().spawn(Box::new(Cryptominer::default()));
    run.watch(pid);
    run.run(10);
    assert!(!run.machine().is_alive(pid));
    let hashes_at_death = run
        .machine()
        .workload_as::<Cryptominer>(pid)
        .unwrap()
        .hashes();
    run.run(10);
    let hashes_later = run
        .machine()
        .workload_as::<Cryptominer>(pid)
        .unwrap()
        .hashes();
    assert_eq!(
        hashes_at_death, hashes_later,
        "dead processes make no progress"
    );
}

#[test]
fn perverse_detector_rates_keep_evasion_invariants() {
    // A detector that is blind to activity (tpr = 0) and paranoid about
    // silence (fpr = 1): throttling and termination land on the *dormant*
    // phases. The replay must still uphold its invariants — bounded
    // slowdown, progress never exceeding the unimpeded baseline.
    use valkyrie::core::{run_evasion, AttackerStrategy, DetectorModel, EvasionScenario};
    let config = engine(10);
    for (tpr, fpr) in [(0.0, 1.0), (0.0, 0.0), (1.0, 1.0)] {
        let scenario = EvasionScenario::new(
            AttackerStrategy::DutyCycle {
                active: 2,
                dormant: 2,
            },
            DetectorModel::new(tpr, fpr).unwrap(),
            60,
        );
        let out = run_evasion(&config, &scenario);
        assert!(out.progress <= out.unimpeded + 1e-9, "tpr={tpr} fpr={fpr}");
        assert!((0.0..=100.0).contains(&out.slowdown_percent()));
        if tpr == 0.0 && fpr == 0.0 {
            // A fully blind detector means Valkyrie never intervenes.
            assert_eq!(out.terminated_at, None);
            assert!((out.progress - out.unimpeded).abs() < 1e-9);
        }
    }
}

#[test]
fn response_log_stays_consistent_under_process_churn() {
    use valkyrie::core::telemetry::ResponseLog;
    let mut rng = StdRng::seed_from_u64(0x106);
    let mut e = ValkyrieEngine::new(engine(15));
    let mut log = ResponseLog::new();
    let mut live: Vec<ProcessId> = (0..8).map(ProcessId).collect();
    for epoch in 0..500u64 {
        if rng.gen_bool(0.05) {
            live.push(ProcessId(1000 + epoch));
        }
        for &pid in &live {
            let c = if rng.gen_bool(0.2) {
                Classification::Malicious
            } else {
                Classification::Benign
            };
            let r = e.observe(pid, c);
            log.record(epoch, &r);
        }
        live.retain(|&pid| e.state(pid) != Some(ProcessState::Terminated));
    }
    // The log's per-process epoch counts must sum to the entry count, and
    // every summary must be internally consistent.
    let mut total = 0;
    let mut seen = 0;
    for entry in log.entries() {
        let _ = entry;
        total += 1;
    }
    for pid in (0..8).map(ProcessId).chain((1000..1500).map(ProcessId)) {
        if let Some(s) = log.summary(pid) {
            seen += s.epochs_observed;
            assert!(s.throttled_epochs <= s.epochs_observed);
            assert!((0.0..=1.0).contains(&s.min_cpu_share));
            assert!((0.0..=1.0).contains(&s.mean_cpu_share()));
            assert!((0.0..=100.0).contains(&s.peak_threat));
        }
    }
    assert_eq!(seen as usize, total);
    assert_eq!(log.len(), total);
}

/// A detector that wedges forever — it holds a publisher for the engine's
/// ingest rings but never publishes a single verdict — must not stall the
/// async epoch driver: `drain_tick` keeps returning on schedule, healthy
/// detectors keep being served, and the stalled detector's process is
/// handled per cyclic-monitoring rules (no observation means no
/// measurement this epoch: its state and resources stay frozen exactly
/// where the last consumed verdict left them).
#[test]
fn stalled_detector_never_stalls_the_drain_tick_driver() {
    use std::sync::mpsc;

    for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
        let mut e = ShardedEngine::with_mode(
            EngineConfig::builder()
                .measurements_required(3)
                .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
                .cyclic(true)
                .build()
                .unwrap(),
            4,
            0,
            mode,
        );
        let publisher = e.enable_ingest(64, OverflowPolicy::Block);
        let watched = ProcessId(1); // served by the healthy detector
        let stalled_pid = ProcessId(2); // its detector wedges immediately

        // The stalled detector: parks on a channel that is never sent to,
        // publisher in hand, until the test releases it at the very end.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let stalled = {
            let publisher = publisher.clone();
            std::thread::spawn(move || {
                let _wedged = release_rx.recv(); // blocks for the whole test
                drop(publisher);
            })
        };

        // One observation for the stalled pid *did* arrive before the
        // wedge: its monitor state must stay frozen afterwards.
        publisher.publish(stalled_pid, Classification::Malicious);
        e.drain_tick();
        let frozen_state = e.state(stalled_pid);
        let frozen_resources = e.resources(stalled_pid);
        assert_eq!(frozen_state, Some(ProcessState::Suspicious));

        // The healthy detector keeps publishing; the driver ticks through
        // its whole horizon with no regard for the wedged thread.
        let mut terminated_at = None;
        for epoch in 0..20u64 {
            publisher.publish(watched, Classification::Malicious);
            let responses = e.drain_tick();
            assert_eq!(responses.len(), 1, "only the healthy verdict arrives");
            if responses[0].action == Action::Terminate && terminated_at.is_none() {
                terminated_at = Some(epoch);
            }
        }
        assert_eq!(e.epoch(), 21, "every epoch ticked on schedule ({mode:?})");
        // The healthy pid progressed to termination at its N* + 1 = 4th
        // observation (loop epoch 3).
        assert_eq!(terminated_at, Some(3), "{mode:?}");
        // The stalled pid is exactly where its last verdict left it.
        assert_eq!(e.state(stalled_pid), frozen_state, "{mode:?}");
        assert_eq!(e.resources(stalled_pid), frozen_resources, "{mode:?}");
        // Nothing was lost or left queued: every published verdict was
        // consumed by some tick.
        let stats = e.ingest_stats().unwrap();
        assert_eq!(stats.published, 21, "{mode:?}");
        assert_eq!(stats.drained, 21, "{mode:?}");
        assert_eq!(stats.queued, 0, "{mode:?}");

        drop(release_tx); // un-wedge the stalled detector so it can exit
        stalled.join().unwrap();
    }
}

#[test]
fn long_horizon_benign_run_is_stable() {
    // 10,000 epochs of a clean benign program: no drift, no throttle.
    let detector = ScriptedDetector::constant(Classification::Benign);
    let mut run = AugmentedRun::new(
        Machine::new(MachineConfig::default()),
        engine(1_000_000),
        detector,
        ScenarioConfig::default(),
    );
    let mut spec = roster().remove(0);
    spec.epochs_to_complete = u64::MAX / 4;
    let pid = run
        .machine_mut()
        .spawn(Box::new(BenchmarkWorkload::new(spec)));
    run.watch(pid);
    run.run(10_000);
    assert!(run.history(pid).iter().all(|r| r.cpu_share == 1.0));
    assert!(run.history(pid).iter().all(|r| r.threat == 0.0));
}
