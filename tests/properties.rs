//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use valkyrie::core::prelude::*;
use valkyrie::core::slowdown::completion_slowdown_percent;
use valkyrie::core::{simulate_response, Monitor};

fn classification_seq(max_len: usize) -> impl Strategy<Value = Vec<Classification>> {
    prop::collection::vec(
        prop::bool::ANY.prop_map(|b| {
            if b {
                Classification::Malicious
            } else {
                Classification::Benign
            }
        }),
        1..max_len,
    )
}

proptest! {
    /// The threat index is clamped into [0, 100] for any inference stream.
    #[test]
    fn threat_index_is_always_bounded(seq in classification_seq(200), n_star in 1u64..100) {
        let mut m = Monitor::new(n_star, AssessmentFn::incremental(), AssessmentFn::incremental());
        for c in seq {
            let r = m.observe(c);
            prop_assert!(r.threat.value() >= 0.0 && r.threat.value() <= 100.0);
        }
    }

    /// Resource shares stay within [floor, 1] for any inference stream and
    /// any percentage-point step.
    #[test]
    fn resources_respect_floor_and_ceiling(
        seq in classification_seq(150),
        step in 0.01f64..0.5,
        floor in 0.0f64..0.2,
    ) {
        let config = EngineConfig::builder()
            .measurements_required(1_000)
            .actuator(ShareActuator::cpu_percent_point(step, floor))
            .build()
            .unwrap();
        let mut engine = ValkyrieEngine::new(config);
        let pid = ProcessId(1);
        for c in seq {
            let resp = engine.observe(pid, c);
            prop_assert!(resp.resources.cpu >= floor - 1e-12);
            prop_assert!(resp.resources.cpu <= 1.0 + 1e-12);
            prop_assert!(resp.resources.is_valid());
        }
    }

    /// A process whose stream ends with enough benign epochs always ends
    /// with full resources (recovery is guaranteed for false positives).
    #[test]
    fn sustained_benign_stream_recovers_fully(prefix in classification_seq(50)) {
        let config = EngineConfig::builder()
            .measurements_required(10_000)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let mut engine = ValkyrieEngine::new(config);
        let pid = ProcessId(7);
        for c in prefix {
            engine.observe(pid, c);
        }
        let mut last = None;
        for _ in 0..500 {
            last = Some(engine.observe(pid, Classification::Benign));
        }
        let last = last.unwrap();
        prop_assert!(last.resources.is_full(), "resources: {:?}", last.resources);
        prop_assert!(last.threat.is_zero());
        prop_assert_eq!(last.state, ProcessState::Normal);
    }

    /// Every state transition taken by the monitor is legal per Fig. 3.
    #[test]
    fn monitor_transitions_follow_fig3(seq in classification_seq(120), n_star in 1u64..40) {
        let mut m = Monitor::new(n_star, AssessmentFn::incremental(), AssessmentFn::incremental());
        let mut prev = m.state();
        for c in seq {
            let r = m.observe(c);
            prop_assert!(prev.can_transition_to(r.state), "{} -> {}", prev, r.state);
            prev = r.state;
        }
    }

    /// Slowdown is within [0, 100] for any simulated response, and zero for
    /// all-benign streams.
    #[test]
    fn slowdown_is_bounded(seq in classification_seq(60), n_star in 1u64..40) {
        let trace = simulate_response(
            n_star,
            &seq,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            ShareActuator::cpu_percent_point(0.10, 0.01),
        );
        let s = trace.cpu_slowdown_percent();
        prop_assert!((0.0..=100.0).contains(&s), "slowdown {s}");
    }

    /// All-benign streams never get throttled at all.
    #[test]
    fn benign_stream_is_never_throttled(n in 1usize..100, n_star in 1u64..200) {
        let seq = vec![Classification::Benign; n];
        let trace = simulate_response(
            n_star,
            &seq,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            ShareActuator::cpu_percent_point(0.10, 0.01),
        );
        prop_assert_eq!(trace.cpu_slowdown_percent(), 0.0);
    }

    /// Completion slowdown is monotone in added epochs.
    #[test]
    fn completion_slowdown_monotone(base in 1.0f64..1000.0, extra1 in 0.0f64..100.0, extra2 in 0.0f64..100.0) {
        let (lo, hi) = if extra1 < extra2 { (extra1, extra2) } else { (extra2, extra1) };
        prop_assert!(
            completion_slowdown_percent(base, base + lo)
                <= completion_slowdown_percent(base, base + hi) + 1e-12
        );
    }

    /// Assessment functions always produce clamped, finite metrics.
    #[test]
    fn assessment_outputs_are_clamped(prev in -1e6f64..1e6, epoch in 0u64..1000, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        for f in [
            AssessmentFn::incremental(),
            AssessmentFn::linear(a, b),
            AssessmentFn::exponential(2.0),
        ] {
            let v = f.next(prev, epoch);
            prop_assert!((0.0..=100.0).contains(&v), "{v}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The CFS scheduler conserves CPU time and respects weight ordering
    /// for arbitrary weight scales.
    #[test]
    fn scheduler_conserves_and_orders(scales in prop::collection::vec(0.01f64..1.0, 2..6)) {
        use valkyrie::sim::sched::{CfsScheduler, SchedConfig};
        use valkyrie::sim::Pid;
        let mut s = CfsScheduler::new(SchedConfig::default());
        for (i, &scale) in scales.iter().enumerate() {
            s.add(Pid(i as u64), 0);
            s.set_weight_scale(Pid(i as u64), scale);
        }
        let total_ticks = 20_000;
        let granted = s.run(total_ticks);
        let sum: u64 = granted.values().sum();
        prop_assert_eq!(sum, total_ticks);
        // Long-run grants are ordered like the weights (with slack for
        // slicing granularity).
        let shares: Vec<f64> = (0..scales.len())
            .map(|i| granted.get(&Pid(i as u64)).copied().unwrap_or(0) as f64 / total_ticks as f64)
            .collect();
        let weight_sum: f64 = scales.iter().sum();
        for (share, scale) in shares.iter().zip(&scales) {
            let expected = scale / weight_sum;
            prop_assert!((share - expected).abs() < 0.1, "share {share} vs expected {expected}");
        }
    }

    /// Cache occupancy never exceeds capacity for arbitrary access streams.
    #[test]
    fn cache_never_exceeds_capacity(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        use valkyrie::uarch::{Cache, CacheConfig};
        let cfg = CacheConfig::l1d();
        let mut c = Cache::new(cfg);
        for a in addrs {
            c.access(a);
            prop_assert!(c.resident_lines() <= cfg.sets * cfg.ways);
        }
    }

    /// Stats identity: hits + misses equals the number of accesses.
    #[test]
    fn cache_stats_identity(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        use valkyrie::uarch::{Cache, CacheConfig};
        let mut c = Cache::new(CacheConfig::l1d());
        for a in &addrs {
            c.access(*a);
        }
        let st = c.stats();
        prop_assert_eq!(st.hits + st.misses, addrs.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TLB occupancy is bounded and its stats add up.
    #[test]
    fn tlb_capacity_and_stats(addrs in prop::collection::vec(0u64..10_000_000, 1..300)) {
        use valkyrie::uarch::{Tlb, TlbConfig};
        let cfg = TlbConfig::dtlb();
        let mut tlb = Tlb::new(cfg);
        for a in &addrs {
            tlb.translate(*a);
        }
        let (hits, misses) = tlb.stats();
        prop_assert_eq!(hits + misses, addrs.len() as u64);
    }

    /// The load-store buffer never exceeds its capacity, and an exact-match
    /// load always beats an aliasing load in latency.
    #[test]
    fn lsb_bounded_and_ordered(stores in prop::collection::vec(0u64..1_000_000, 1..200)) {
        use valkyrie::uarch::{LoadStoreBuffer, LsbConfig};
        let cfg = LsbConfig::skylake();
        let mut lsb = LoadStoreBuffer::new(cfg);
        for s in &stores {
            lsb.store(*s);
            prop_assert!(lsb.in_flight() <= cfg.store_entries);
        }
        let last = *stores.last().unwrap();
        let (_, fwd) = lsb.load(last);
        let alias = last ^ (1 << 13); // same page offset, different page
        let (_, alias_lat) = lsb.load(alias);
        prop_assert!(fwd <= alias_lat);
    }

    /// Network shaping never delivers more than demanded or more than the
    /// cap allows (plus one epoch of rolled-over burst).
    #[test]
    fn net_delivery_is_bounded(cap in 1.0e3f64..1.0e12, demand in 0.0f64..1.0e9) {
        use valkyrie::sim::net::NetController;
        let mut n = NetController::with_cap(cap);
        let delivered = n.send(100, demand);
        prop_assert!(delivered <= demand + 1e-6);
        prop_assert!(delivered <= cap * 0.1 * 2.0 + 1e-6, "cap {cap} delivered {delivered}");
    }

    /// DRAM never flips bits while every per-window activation count stays
    /// below the disturbance threshold.
    #[test]
    fn dram_below_threshold_never_flips(
        bursts in prop::collection::vec(0u64..60_000, 1..50),
    ) {
        use valkyrie::sim::dram::{Dram, DramConfig};
        use rand::SeedableRng;
        let cfg = DramConfig::ddr3_1333();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut dram = Dram::new(cfg);
        for b in bursts {
            // One burst per refresh window, always below threshold.
            dram.hammer_pair(10, 12, b.min(cfg.disturbance_threshold - 1), &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        prop_assert_eq!(dram.flipped_bits(), 0);
    }

    /// The memory-thrash efficiency curve is monotone in the limit fraction
    /// and equals 1 at or above the working set.
    #[test]
    fn memory_efficiency_monotone(a in 0.0f64..1.2, b in 0.0f64..1.2) {
        use valkyrie::sim::cgroup::MemoryController;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(
            MemoryController::new(lo).efficiency() <= MemoryController::new(hi).efficiency() + 1e-15
        );
        prop_assert_eq!(MemoryController::new(1.0 + lo).efficiency(), 1.0);
    }

    /// Throttle laws keep shares in [0, 1] for arbitrary deltas, and a
    /// positive delta never increases the share.
    #[test]
    fn throttle_laws_are_sane(share in 0.0f64..1.0, delta in -50.0f64..50.0) {
        use valkyrie::core::ThrottleLaw;
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.1 },
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
            ThrottleLaw::MultiplicativePerEvent { factor: 0.5 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ] {
            let next = law.step_share(share, delta);
            prop_assert!((0.0..=1.0).contains(&next), "{law:?}: {next}");
            if delta > 0.0 {
                prop_assert!(next <= share + 1e-12, "{law:?} increased share on throttle");
            }
            if delta < 0.0 {
                prop_assert!(next >= share - 1e-12, "{law:?} decreased share on recovery");
            }
        }
    }
}

fn evasion_strategy() -> impl Strategy<Value = valkyrie::core::AttackerStrategy> {
    use valkyrie::core::AttackerStrategy;
    prop_oneof![
        Just(AttackerStrategy::AlwaysActive),
        (1u32..6, 0u32..6)
            .prop_map(|(active, dormant)| AttackerStrategy::DutyCycle { active, dormant }),
        (0u64..40).prop_map(|active_epochs| AttackerStrategy::Sprint { active_epochs }),
        (0.1f64..1.0).prop_map(|resume_above| AttackerStrategy::ThreatAdaptive { resume_above }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No evasion strategy outruns its own unimpeded baseline, and the
    /// slowdown metric stays within [0, 100] for any detector quality.
    #[test]
    fn evasion_never_beats_unimpeded(
        strategy in evasion_strategy(),
        tpr in 0.1f64..1.0,
        fpr in 0.0f64..0.3,
        n_star in 2u64..40,
        seed in 0u64..1_000,
    ) {
        use valkyrie::core::{run_evasion, DetectorModel, EvasionScenario};
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let scenario = EvasionScenario::new(
            strategy,
            DetectorModel::new(tpr, fpr).unwrap(),
            80,
        )
        .with_seed(seed);
        let out = run_evasion(&config, &scenario);
        prop_assert!(out.progress <= out.unimpeded + 1e-9);
        prop_assert!((0.0..=100.0).contains(&out.slowdown_percent()));
        prop_assert!(out.active_epochs as f64 >= out.progress - 1e-9);
    }

    /// The k-consecutive baseline's benign survival probability is monotone:
    /// it falls with the FP rate and rises with the streak length k.
    #[test]
    fn consecutive_survival_is_monotone(
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
        k in 1u32..6,
        n in 1usize..200,
    ) {
        use valkyrie::core::ConsecutiveTermination;
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        let policy = ConsecutiveTermination::new(k);
        prop_assert!(
            policy.benign_survival_probability(hi, n)
                <= policy.benign_survival_probability(lo, n) + 1e-12
        );
        let stricter = ConsecutiveTermination::new(k + 1);
        prop_assert!(
            policy.benign_survival_probability(lo, n)
                <= stricter.benign_survival_probability(lo, n) + 1e-12
        );
    }

    /// Priority reduction bounds progress between the reduced-share floor
    /// and full speed, and never terminates.
    #[test]
    fn priority_reduction_progress_is_bounded(
        seq in classification_seq(150),
        share in 0.0f64..1.0,
    ) {
        use valkyrie::core::PriorityReduction;
        let out = PriorityReduction::new(share).run(&seq);
        prop_assert!(out.survived());
        let n = seq.len() as f64;
        prop_assert!(out.total_progress() <= n + 1e-9);
        prop_assert!(out.total_progress() >= share * n - 1e-9);
    }

    /// DRAM refresh permits at most one flip per `threshold` undetected
    /// epochs, and zero flips if detections come faster than the threshold.
    #[test]
    fn dram_refresh_flip_bound(seq in classification_seq(300), threshold in 1u32..40) {
        use valkyrie::core::DramRefresh;
        let out = DramRefresh::new(threshold).run(&seq);
        prop_assert!(out.flips <= (seq.len() as u32 / threshold) as u64);
        let max_gap = seq
            .split(|c| c.is_malicious())
            .map(|gap| gap.len())
            .max()
            .unwrap_or(0);
        if (max_gap as u32) < threshold {
            prop_assert_eq!(out.flips, 0);
        }
    }

    /// Ensemble rules are ordered by strictness: All ⟹ Majority ⟹ Any.
    #[test]
    fn combination_rules_are_ordered(malicious in 0usize..10, extra in 0usize..10) {
        use valkyrie::detect::CombinationRule;
        let total = malicious + extra;
        prop_assume!(total > 0);
        let flags = |r: CombinationRule| r.decide(malicious, total).is_malicious();
        if flags(CombinationRule::All) {
            prop_assert!(flags(CombinationRule::Majority));
        }
        if flags(CombinationRule::Majority) {
            prop_assert!(flags(CombinationRule::Any));
        }
    }

    /// A cyclic monitor that receives a benign verdict restarts with fresh
    /// metrics: threat zero, normal state, zero measurements.
    #[test]
    fn cyclic_monitor_recycles_cleanly(prefix in classification_seq(40), n_star in 2u64..20) {
        let mut m = Monitor::new_cyclic(
            n_star,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
        );
        for c in prefix {
            if m.state() == ProcessState::Terminated {
                return Ok(());
            }
            m.observe(c);
        }
        // Drive to the terminable verdict with benign epochs, then check
        // that the verdict resets the cycle.
        for _ in 0..(2 * n_star) {
            if m.state() == ProcessState::Terminated {
                return Ok(());
            }
            if m.state() == ProcessState::Terminable {
                m.observe(Classification::Benign);
                prop_assert_eq!(m.state(), ProcessState::Normal);
                prop_assert_eq!(m.measurements(), 0);
                prop_assert!(m.threat().is_zero());
                prop_assert_eq!(m.penalty(), 0.0);
                return Ok(());
            }
            m.observe(Classification::Benign);
        }
        prop_assert!(false, "terminable state never reached");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fusing uniformly weighted binary verdicts with a majority threshold
    /// reproduces `CombinationRule::Majority` **bit-for-bit**: the
    /// `FusionEngine` answers exactly like the legacy `EnsembleDetector`
    /// across ensemble sizes {1, 3, 5}, and carrying the fused decision
    /// through the engine's weighted-evidence verdict path (unit weight,
    /// binary escalation ladder) leaves every response — threat values
    /// included — identical to the legacy classification path across shard
    /// counts {1, 2, 7}.
    #[test]
    fn unit_weight_majority_fusion_matches_legacy_ensemble(
        scripts in prop::collection::vec(classification_seq(12), 5),
        size_idx in 0usize..3,
        shard_idx in 0usize..3,
        n_star in 1u64..8,
    ) {
        use valkyrie::core::{EscalationLadder, FusionConfig, ShardedEngine, Verdict};
        use valkyrie::detect::{
            CombinationRule, Detector, EnsembleDetector, FusionEngine, ScriptedDetector,
        };
        use valkyrie::hpc::SampleWindow;

        let size = [1usize, 3, 5][size_idx];
        let shards = [1usize, 2, 7][shard_idx];
        let epochs = 12usize;

        let members = || -> Vec<Box<dyn Detector>> {
            scripts[..size]
                .iter()
                .map(|s| Box::new(ScriptedDetector::cycle(s.clone())) as Box<dyn Detector>)
                .collect()
        };
        let mut legacy = EnsembleDetector::new("legacy", members(), CombinationRule::Majority);
        let mut fused = FusionEngine::from_rule("fused", members(), CombinationRule::Majority);

        // Detector level: identical decisions, epoch by epoch.
        let window = SampleWindow::new(4);
        let pid = ProcessId(1);
        let mut decisions = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let want = legacy.infer(pid, &window);
            let got = fused.infer(pid, &window);
            prop_assert_eq!(got, want);
            decisions.push(want);
        }

        // Engine level: the fused decision stream, lifted into unit-weight
        // verdicts under the binary ladder, yields bit-identical responses
        // to the legacy binary path — across processes spread over shards.
        let build = |fusion: Option<FusionConfig>| {
            let mut b = EngineConfig::builder()
                .measurements_required(n_star)
                .actuator(ShareActuator::cpu_percent_point(0.10, 0.01));
            if let Some(f) = fusion {
                b = b.fusion(f);
            }
            ShardedEngine::new(b.build().unwrap(), shards)
        };
        let mut binary_engine = build(None);
        let mut verdict_engine = build(Some(FusionConfig {
            weights: Vec::new(),
            default_weight: 1.0,
            stale_decay: 1.0,
            ladder: EscalationLadder::BINARY,
        }));
        for e in 0..epochs {
            let mut bin_batch = Vec::new();
            let mut ver_batch = Vec::new();
            for p in 0..5u64 {
                let d = decisions[(e + p as usize) % epochs];
                bin_batch.push((ProcessId(p), d));
                ver_batch.push((ProcessId(p), Verdict::from_classification(0, d)));
            }
            let mut a = binary_engine.observe_batch(&bin_batch);
            let mut b = verdict_engine.observe_verdict_batch(&ver_batch);
            a.sort_by_key(|r| r.pid.0);
            b.sort_by_key(|r| r.pid.0);
            prop_assert_eq!(a, b, "epoch {} diverged", e);
        }
    }

    /// The SoA filesystem's incremental `total_bytes`/`encrypted_bytes`/
    /// `encrypted_files` counters equal full scans over `size_of`/
    /// `is_encrypted` under arbitrary `push`/`generate`/`uniform`/
    /// `encrypt_file` sequences, and `encrypt_file` succeeds exactly once
    /// per in-bounds file.
    #[test]
    fn simfs_incremental_counters_match_full_scans(
        init in 0usize..3,
        n in 0usize..200,
        seed in 0u64..1_000,
        ops in prop::collection::vec((0usize..2, 0usize..260, 1u64..10_000), 1..80),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use valkyrie::sim::fs::SimFs;

        let mut fs = match init {
            0 => SimFs::new(),
            1 => SimFs::generate(&mut StdRng::seed_from_u64(seed), n, 4096),
            _ => SimFs::uniform("/data/f", n, 2257),
        };
        for (op, idx, size) in ops {
            match op {
                0 => fs.push(format!("/pushed/{idx}"), size),
                _ => {
                    let was_encrypted = fs.is_encrypted(idx);
                    let res = fs.encrypt_file(idx);
                    prop_assert_eq!(res.is_some(), idx < fs.len() && !was_encrypted);
                    if let Some(s) = res {
                        prop_assert_eq!(Some(s), fs.size_of(idx));
                        prop_assert!(fs.is_encrypted(idx));
                    }
                }
            }
            let scan_total: u64 = (0..fs.len()).map(|i| fs.size_of(i).unwrap()).sum();
            let scan_encrypted_bytes: u64 = (0..fs.len())
                .filter(|&i| fs.is_encrypted(i))
                .map(|i| fs.size_of(i).unwrap())
                .sum();
            let scan_encrypted_files = (0..fs.len()).filter(|&i| fs.is_encrypted(i)).count();
            prop_assert_eq!(fs.total_bytes(), scan_total);
            prop_assert_eq!(fs.encrypted_bytes(), scan_encrypted_bytes);
            prop_assert_eq!(fs.encrypted_files(), scan_encrypted_files);
        }
    }

    /// Filesystem snapshots are value-independent: encrypting files in the
    /// original never leaks into a snapshot taken earlier, even though the
    /// SoA layout shares the size table between them.
    #[test]
    fn simfs_snapshots_are_independent(
        n in 1usize..300,
        to_encrypt in prop::collection::vec(0usize..300, 1..40),
    ) {
        use valkyrie::sim::fs::SimFs;

        let mut fs = SimFs::uniform("/data/f", n, 4096);
        let snapshot = fs.clone();
        for idx in to_encrypt {
            fs.encrypt_file(idx % n);
        }
        prop_assert_eq!(snapshot.encrypted_files(), 0);
        prop_assert_eq!(snapshot.encrypted_bytes(), 0);
        prop_assert_eq!(snapshot.total_bytes(), fs.total_bytes());
        prop_assert!(fs.encrypted_files() >= 1);
    }

    /// `fs_snapshot`/`restore_fs` round-trips exactly, even while two
    /// machines share one prebuilt corpus and mutate their views
    /// concurrently (the cluster boot path): a snapshot of machine A taken
    /// mid-interleaving is a faithful restore point for A, machine B's
    /// concurrent encryption never bleeds into it, and the template
    /// corpus itself stays pristine throughout.
    #[test]
    fn fs_snapshot_round_trips_under_concurrent_mutation(
        n in 1usize..200,
        ops in prop::collection::vec((prop::bool::ANY, 0usize..200), 2..60),
        cut in 0usize..60,
    ) {
        use valkyrie::sim::fs::SimFs;
        use valkyrie::sim::prelude::{Machine, MachineConfig};

        let template = SimFs::uniform("/shared/f", n, 2257);
        let mut a = Machine::new(MachineConfig { seed: 1, ..MachineConfig::default() });
        let mut b = Machine::new(MachineConfig { seed: 2, ..MachineConfig::default() });
        a.restore_fs(&template);
        b.restore_fs(&template);

        let cut = cut.min(ops.len());
        for &(on_a, idx) in &ops[..cut] {
            let m = if on_a { &mut a } else { &mut b };
            m.filesystem_mut().encrypt_file(idx % n);
        }
        let checkpoint = a.fs_snapshot();
        let want_files = a.filesystem().encrypted_files();
        let want_bytes = a.filesystem().encrypted_bytes();

        // Both machines keep mutating after the checkpoint.
        for &(on_a, idx) in &ops[cut..] {
            let m = if on_a { &mut a } else { &mut b };
            m.filesystem_mut().encrypt_file(idx % n);
        }

        // The checkpoint is immune to post-snapshot mutation on either
        // machine, and restoring it rolls A back exactly.
        prop_assert_eq!(checkpoint.encrypted_files(), want_files);
        prop_assert_eq!(checkpoint.encrypted_bytes(), want_bytes);
        a.restore_fs(&checkpoint);
        prop_assert_eq!(a.filesystem().encrypted_files(), want_files);
        prop_assert_eq!(a.filesystem().encrypted_bytes(), want_bytes);
        for i in 0..n {
            prop_assert_eq!(a.filesystem().is_encrypted(i), checkpoint.is_encrypted(i));
            prop_assert_eq!(a.filesystem().size_of(i), template.size_of(i));
        }
        // The shared template never saw anyone's writes.
        prop_assert_eq!(template.encrypted_files(), 0);
        prop_assert_eq!(template.encrypted_bytes(), 0);
        prop_assert_eq!(a.filesystem().total_bytes(), template.total_bytes());
        prop_assert_eq!(b.filesystem().total_bytes(), template.total_bytes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degenerate adaptive strategies replay the fixed roster **bit-for-bit**:
    /// constant intensity 1.0 is `AlwaysActive`, a 1.0/0.0 periodic schedule
    /// is `DutyCycle`, and a 1.0→0.0 step-down is `Sprint` — across seeds,
    /// detector qualities and measurement requirements. This pins the graded
    /// evasion path (`run_adaptive`) as a strict generalisation of the
    /// binary one (`run_evasion`): same RNG draws, same share arithmetic.
    #[test]
    fn degenerate_adaptive_strategies_replay_fixed_ones_bitwise(
        which in 0usize..3,
        active in 1u32..6,
        dormant in 0u32..6,
        sprint in 0u64..40,
        tpr in 0.1f64..1.0,
        fpr in 0.0f64..0.5,
        n_star in 2u64..40,
        seed in 0u64..1_000,
    ) {
        use valkyrie::core::evasion::{
            run_adaptive, run_evasion, AdaptiveScenario, AdaptiveStrategy, AttackerStrategy,
            ConstantIntensity, DetectorModel, EvasionScenario, PeriodicIntensity, StepDown,
        };
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let detector = DetectorModel::new(tpr, fpr).unwrap();
        let (fixed, mut graded): (AttackerStrategy, Box<dyn AdaptiveStrategy>) = match which {
            0 => (
                AttackerStrategy::AlwaysActive,
                Box::new(ConstantIntensity(1.0)),
            ),
            1 => (
                AttackerStrategy::DutyCycle { active, dormant },
                Box::new(PeriodicIntensity {
                    active,
                    dormant,
                    high: 1.0,
                    low: 0.0,
                }),
            ),
            _ => (
                AttackerStrategy::Sprint { active_epochs: sprint },
                Box::new(StepDown {
                    active_epochs: sprint,
                    high: 1.0,
                    low: 0.0,
                }),
            ),
        };
        let want =
            run_evasion(&config, &EvasionScenario::new(fixed, detector, 80).with_seed(seed));
        let got = run_adaptive(
            &config,
            &AdaptiveScenario::new(detector, 80).with_seed(seed),
            graded.as_mut(),
        );
        prop_assert_eq!(want.progress.to_bits(), got.progress.to_bits());
        prop_assert_eq!(want.unimpeded.to_bits(), got.unimpeded.to_bits());
        prop_assert_eq!(want.terminated_at, got.terminated_at);
        prop_assert_eq!(want.active_epochs, got.active_epochs);
    }

    /// The `AttackerStrategy → AdaptiveStrategy` adapter (fixed strategies
    /// lifted to intensities {0.0, 1.0}) is bit-identical to the binary
    /// runner for **every** fixed strategy, not just the three families with
    /// hand-written graded twins.
    #[test]
    fn attacker_strategy_adapter_is_bit_identical(
        strategy in evasion_strategy(),
        tpr in 0.1f64..1.0,
        fpr in 0.0f64..0.5,
        n_star in 2u64..40,
        seed in 0u64..1_000,
    ) {
        use valkyrie::core::evasion::{
            run_adaptive, run_evasion, AdaptiveScenario, DetectorModel, EvasionScenario,
        };
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let detector = DetectorModel::new(tpr, fpr).unwrap();
        let want =
            run_evasion(&config, &EvasionScenario::new(strategy, detector, 80).with_seed(seed));
        let mut adapter = strategy;
        let got = run_adaptive(
            &config,
            &AdaptiveScenario::new(detector, 80).with_seed(seed),
            &mut adapter,
        );
        prop_assert_eq!(want, got);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For the three fixed-vector model families (SVM, GBDT, MLP), the
    /// batched scoring path is bit-identical to mapping the scalar path
    /// over the batch — the invariant that lets detectors and experiment
    /// drivers switch freely between `score` and `score_batch`.
    #[test]
    fn batched_scores_match_scalar_scores_bitwise(
        seed in 0u64..1_000,
        n in 1usize..24,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use valkyrie::ml::{
            BinaryClassifier, Gbdt, GbdtConfig, LinearSvm, Mlp, MlpConfig, SvmConfig,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 6;
        let train_xs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let c = if i % 2 == 0 { 1.0 } else { -1.0 };
                (0..dim).map(|_| c + rng.gen::<f64>()).collect()
            })
            .collect();
        let train_ys: Vec<f64> = (0..40).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let batch: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect())
            .collect();

        let svm = LinearSvm::train(
            &SvmConfig { epochs: 8, ..SvmConfig::default() },
            &train_xs,
            &train_ys,
        );
        let gbdt = Gbdt::train(
            &GbdtConfig { rounds: 6, max_depth: 3, ..GbdtConfig::default() },
            &train_xs,
            &train_ys,
        );
        let mlp = Mlp::train(
            &MlpConfig::new(vec![dim, 4, 1]).with_epochs(15),
            &train_xs,
            &train_ys,
        );
        let models: [(&str, &dyn BinaryClassifier); 3] =
            [("svm", &svm), ("gbdt", &gbdt), ("mlp", &mlp)];
        for (name, model) in models {
            let batched = model.score_batch(&batch);
            prop_assert_eq!(batched.len(), batch.len());
            for (x, &b) in batch.iter().zip(&batched) {
                prop_assert_eq!(
                    model.score(x).to_bits(),
                    b.to_bits(),
                    "{} batched score diverged",
                    name
                );
            }
        }
    }

    /// The LSTM's batched sequence scoring (length-grouped matrix forward)
    /// is bit-identical to the per-sequence scalar path, across mixed
    /// sequence lengths.
    #[test]
    fn lstm_batched_scores_match_scalar_bitwise(
        seed in 0u64..1_000,
        lens in prop::collection::vec(1usize..12, 1..8),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use valkyrie::ml::{Lstm, LstmConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = 4;
        let mut mk_seq = |len: usize, c: f64| -> Vec<Vec<f64>> {
            (0..len)
                .map(|_| (0..inputs).map(|_| c + rng.gen::<f64>()).collect())
                .collect()
        };
        let train_seqs: Vec<Vec<Vec<f64>>> = (0..12)
            .map(|i| mk_seq(6, if i % 2 == 0 { 0.8 } else { -0.8 }))
            .collect();
        let train_ys: Vec<f64> = (0..12).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        let lstm = Lstm::train(
            &LstmConfig { epochs: 4, ..LstmConfig::new(inputs, 3) },
            &train_seqs,
            &train_ys,
        );
        let batch: Vec<Vec<Vec<f64>>> = lens
            .iter()
            .map(|&len| mk_seq(len, 0.0))
            .collect();
        let batched = lstm.predict_batch(&batch);
        prop_assert_eq!(batched.len(), batch.len());
        for (seq, &b) in batch.iter().zip(&batched) {
            prop_assert_eq!(
                lstm.predict_proba(seq).to_bits(),
                b.to_bits(),
                "lstm batched score diverged"
            );
        }
    }
}
