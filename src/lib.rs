//! # Valkyrie (facade crate)
//!
//! A reproduction of *"Valkyrie: A Response Framework to Augment Runtime
//! Detection of Time-Progressive Attacks"* (DSN 2025).
//!
//! This facade re-exports the workspace crates so applications can depend on
//! a single `valkyrie` crate:
//!
//! * [`core`] — the response framework itself (threat index, Fig. 3 state
//!   machine, actuators, efficacy planner, slowdown model).
//! * [`sim`] — the simulated OS/machine substrate (CFS scheduler,
//!   cgroup-style controllers, DRAM, filesystem, network).
//! * [`uarch`] — cache / TLB / load-store-buffer timing models.
//! * [`hpc`] — simulated hardware performance counters.
//! * [`ml`] — from-scratch ML models used by the detectors.
//! * [`detect`] — runtime detectors producing per-epoch inferences.
//! * [`attacks`] — the evaluated time-progressive attacks.
//! * [`workloads`] — the benign SPEC-like benchmark roster.
//! * [`experiments`] — scenario harnesses regenerating each paper figure.
//!
//! # Examples
//!
//! ```
//! use valkyrie::core::prelude::*;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(15)
//!     .actuator(ShareActuator::scheduler_weight(0.1, 0.01))
//!     .build()?;
//! let mut engine = ValkyrieEngine::new(config);
//! let resp = engine.observe(ProcessId(1), Classification::Malicious);
//! assert_eq!(resp.state, ProcessState::Suspicious);
//! # Ok::<(), ValkyrieError>(())
//! ```

pub use valkyrie_attacks as attacks;
pub use valkyrie_core as core;
pub use valkyrie_detect as detect;
pub use valkyrie_experiments as experiments;
pub use valkyrie_hpc as hpc;
pub use valkyrie_ml as ml;
pub use valkyrie_sim as sim;
pub use valkyrie_uarch as uarch;
pub use valkyrie_workloads as workloads;

pub use valkyrie_core::prelude;
