//! The persistent worker pool: actor-style shard ownership for the
//! scaling tier.
//!
//! [`crate::sharded::ShardedEngine`] in its default
//! [`ScopedSpawn`](crate::sharded::ExecutionMode::ScopedSpawn) mode fans
//! each batch out with [`std::thread::scope`], paying a fresh set of thread
//! spawns **every tick**. At fleet scale — tens of thousands of
//! observations per epoch, one epoch per detector inference round — those
//! spawns dominate the steady-state cost the response tier adds on top of
//! detection. A [`ShardPool`] removes them: `N` long-lived workers are
//! spawned **once**, each taking ownership of a contiguous run of
//! [`EngineShard`]s, and every tick is two message exchanges per worker
//! (work out, responses back) over [`std::sync::mpsc`] channels.
//!
//! The design is deliberately actor-style rather than lock-based: a shard
//! is owned by exactly one worker thread for the pool's whole lifetime, so
//! there is no shared mutable state, no locks on the observe path, and the
//! per-shard application order — the thing the bit-for-bit equivalence
//! guarantee of the scaling tier rests on — is trivially preserved.
//! Control-plane operations (state queries, completion, purges, snapshots)
//! travel over the same channels in strict request/reply lockstep, so the
//! pool needs no synchronisation beyond the channels themselves.
//!
//! Shutdown is graceful and lossless: [`ShardPool::shutdown`] asks every
//! worker to hand its shards back and joins the threads, returning the
//! shards with all their per-process state intact (this is how
//! [`ShardedEngine::set_execution_mode`](crate::sharded::ShardedEngine::set_execution_mode)
//! demotes a pooled engine back to scoped mode). Dropping the pool joins
//! the workers too, so no thread outlives the engine.
//!
//! Embedders normally never touch this type directly — construct a
//! [`ShardedEngine`](crate::sharded::ShardedEngine) with
//! [`ExecutionMode::Pool`](crate::sharded::ExecutionMode::Pool) instead —
//! but it is public so bespoke drivers can own the fan-out themselves.

use crate::actuator::Actuator;
use crate::engine::{EngineResponse, EngineShard};
use crate::error::ValkyrieError;
use crate::ingest::IngestQueues;
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::telemetry::FusionStats;
use crate::threat::{Classification, ThreatIndex, Verdict};
use std::fmt;
use std::ops::Range;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One shard's partitioned work list for a tick.
pub(crate) type ShardWork = Vec<(ProcessId, Classification)>;

/// One shard's partitioned per-detector verdict list (the fusion path).
pub(crate) type VerdictWork = Vec<(ProcessId, Verdict)>;

/// What the engine asks a worker to do. One request always produces
/// exactly one [`Reply`], which keeps the channels in lockstep without any
/// request ids.
enum Request {
    /// One tick's observations, one work list per owned shard (in shard
    /// order). The buffers are returned in the reply so the engine's
    /// partition scratch keeps its allocations across ticks.
    Observe {
        work: Vec<ShardWork>,
    },
    /// The single-observation compatibility path, routed to one shard.
    ObserveOne {
        shard: usize,
        pid: ProcessId,
        inference: Classification,
    },
    /// One tick's per-detector verdicts, one work list per owned shard (in
    /// shard order). Each shard absorbs its whole list, then fuses every
    /// touched process once (see
    /// [`EngineShard::observe_verdict_batch`]).
    ObserveVerdicts {
        work: Vec<VerdictWork>,
    },
    /// The single-verdict fusion path, routed to one shard.
    ObserveVerdictOne {
        shard: usize,
        pid: ProcessId,
        verdict: Verdict,
    },
    /// Hand the worker the engine's ingest rings plus the global index of
    /// its first shard, so later [`Request::Drain`]s can be served from
    /// the worker's own thread.
    InstallIngest {
        queues: Arc<IngestQueues>,
        base: usize,
    },
    /// The fusion-path twin of [`Request::InstallIngest`]: the engine's
    /// verdict rings plus the worker's first global shard index.
    InstallVerdictIngest {
        queues: Arc<IngestQueues<Verdict>>,
        base: usize,
    },
    /// Drain each owned shard's ingest ring in place and answer the
    /// drained observations (async-tick counterpart of
    /// [`Request::Observe`]; no work list crosses the channel).
    Drain,
    /// Drain each owned shard's *verdict* ring in place, absorb the
    /// verdicts and answer one fused response per touched process.
    DrainVerdicts,
    /// Collect every owned shard's fusion counters, merged.
    FusionStats,
    /// Evict terminated processes from every owned shard.
    Purge,
    Complete {
        shard: usize,
        pid: ProcessId,
    },
    Forget {
        shard: usize,
        pid: ProcessId,
    },
    State {
        shard: usize,
        pid: ProcessId,
    },
    Threat {
        shard: usize,
        pid: ProcessId,
    },
    Resources {
        shard: usize,
        pid: ProcessId,
    },
    Tracked,
    TrackedLive,
    /// Collect `(pid, state, threat)` of every tracked process.
    Snapshot,
    /// Hand the shards back and exit the worker loop.
    Shutdown,
}

/// A worker's answer to one [`Request`].
enum Reply<A: Actuator + Clone> {
    Observed {
        responses: Vec<Vec<EngineResponse>>,
        work: Vec<ShardWork>,
    },
    ObservedVerdicts {
        responses: Vec<Vec<EngineResponse>>,
        work: Vec<VerdictWork>,
    },
    /// One `(sequence stamps, responses)` pair per owned shard, aligned
    /// index-for-index, in shard order.
    Drained(Vec<(Vec<u64>, Vec<EngineResponse>)>),
    /// One fused-response list per owned shard, in shard order.
    DrainedVerdicts(Vec<Vec<EngineResponse>>),
    Fusion(FusionStats),
    Response(EngineResponse),
    Purged(usize),
    Completed(Result<(), ValkyrieError>),
    State(Option<ProcessState>),
    Threat(Option<ThreatIndex>),
    Resources(Option<ResourceVector>),
    Count(usize),
    Snapshot(Vec<(ProcessId, ProcessState, ThreatIndex)>),
    Done,
    Shards(Vec<EngineShard<A>>),
}

/// The long-lived worker body: owns its shards until told to hand them
/// back. Exits when the request channel closes (engine dropped without a
/// shutdown — nothing to reply to) or on [`Request::Shutdown`].
fn worker_loop<A: Actuator + Clone>(
    mut shards: Vec<EngineShard<A>>,
    requests: Receiver<Request>,
    replies: Sender<Reply<A>>,
) {
    // Installed by [`Request::InstallIngest`]: the engine's ingest rings
    // plus the global index of this worker's first shard.
    let mut ingest: Option<(Arc<IngestQueues>, usize)> = None;
    // The fusion path's twin, installed by [`Request::InstallVerdictIngest`].
    let mut verdict_ingest: Option<(Arc<IngestQueues<Verdict>>, usize)> = None;
    while let Ok(request) = requests.recv() {
        let reply = match request {
            Request::Observe { work } => {
                let responses = shards
                    .iter_mut()
                    .zip(&work)
                    .map(|(shard, part)| shard.observe_batch(part))
                    .collect();
                Reply::Observed { responses, work }
            }
            Request::ObserveVerdicts { work } => {
                let responses = shards
                    .iter_mut()
                    .zip(&work)
                    .map(|(shard, part)| shard.observe_verdict_batch(part))
                    .collect();
                Reply::ObservedVerdicts { responses, work }
            }
            Request::ObserveOne {
                shard,
                pid,
                inference,
            } => Reply::Response(shards[shard].observe(pid, inference)),
            Request::ObserveVerdictOne {
                shard,
                pid,
                verdict,
            } => Reply::Response(shards[shard].observe_verdict(pid, verdict)),
            Request::InstallIngest { queues, base } => {
                ingest = Some((queues, base));
                Reply::Done
            }
            Request::InstallVerdictIngest { queues, base } => {
                verdict_ingest = Some((queues, base));
                Reply::Done
            }
            Request::Drain => {
                // The engine only sends Drain after InstallIngest; an
                // uninstalled worker still answers the protocol shape
                // (empty drains) rather than wedging the lockstep.
                //
                // Empty every owned ring *before* any observe work runs —
                // the same ordering the scoped drain path guarantees — so
                // a publisher blocked on this worker's last ring is not
                // parked behind the first ring's observe batch.
                let mut drained: Vec<(ShardWork, Vec<u64>)> = shards
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let mut work = Vec::new();
                        let mut seqs = Vec::new();
                        if let Some((queues, base)) = &ingest {
                            queues.drain_shard_into(base + i, &mut work, &mut seqs);
                        }
                        (work, seqs)
                    })
                    .collect();
                let parts = shards
                    .iter_mut()
                    .zip(drained.iter_mut())
                    .map(|(shard, (work, seqs))| {
                        let responses = shard.observe_batch(work);
                        (std::mem::take(seqs), responses)
                    })
                    .collect();
                Reply::Drained(parts)
            }
            Request::DrainVerdicts => {
                // Same discipline as Drain: empty every owned verdict ring
                // before any fuse work runs, so blocked publishers wake
                // first. Fused responses are per-process (not
                // per-observation), so no sequence stamps travel back.
                let mut drained: Vec<VerdictWork> = shards
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let mut work = Vec::new();
                        let mut seqs = Vec::new();
                        if let Some((queues, base)) = &verdict_ingest {
                            queues.drain_shard_into(base + i, &mut work, &mut seqs);
                        }
                        work
                    })
                    .collect();
                let parts = shards
                    .iter_mut()
                    .zip(drained.iter_mut())
                    .map(|(shard, work)| shard.observe_verdict_batch(work))
                    .collect();
                Reply::DrainedVerdicts(parts)
            }
            Request::FusionStats => {
                let mut stats = FusionStats::default();
                for shard in &shards {
                    stats.merge(shard.fusion_stats());
                }
                Reply::Fusion(stats)
            }
            Request::Purge => Reply::Purged(
                shards
                    .iter_mut()
                    .map(EngineShard::purge_terminated)
                    .sum::<usize>(),
            ),
            Request::Complete { shard, pid } => Reply::Completed(shards[shard].complete(pid)),
            Request::Forget { shard, pid } => {
                shards[shard].forget(pid);
                Reply::Done
            }
            Request::State { shard, pid } => Reply::State(shards[shard].state(pid)),
            Request::Threat { shard, pid } => Reply::Threat(shards[shard].threat(pid)),
            Request::Resources { shard, pid } => Reply::Resources(shards[shard].resources(pid)),
            Request::Tracked => Reply::Count(shards.iter().map(EngineShard::tracked).sum()),
            Request::TrackedLive => {
                Reply::Count(shards.iter().map(EngineShard::tracked_live).sum())
            }
            Request::Snapshot => Reply::Snapshot(
                shards
                    .iter()
                    .flat_map(EngineShard::iter)
                    .collect::<Vec<_>>(),
            ),
            Request::Shutdown => {
                let _ = replies.send(Reply::Shards(shards));
                return;
            }
        };
        if replies.send(reply).is_err() {
            // The engine went away mid-request; nothing left to serve.
            return;
        }
    }
}

/// One worker thread plus its channel pair and the global shard indices it
/// owns.
struct Worker<A: Actuator + Clone> {
    requests: Sender<Request>,
    replies: Receiver<Reply<A>>,
    shard_range: Range<usize>,
    handle: Option<JoinHandle<()>>,
}

impl<A: Actuator + Clone> Worker<A> {
    fn send(&self, request: Request) {
        self.requests
            .send(request)
            .expect("engine shard worker exited unexpectedly");
    }

    fn recv(&self) -> Reply<A> {
        self.replies.recv().expect("engine shard worker panicked")
    }
}

/// A persistent pool of worker threads, each owning a contiguous run of
/// [`EngineShard`]s (see the [module docs](self)).
///
/// All methods keep the request/reply channels in lockstep: every request
/// sent is answered before the method returns, so the pool can be driven
/// from a single thread without any further synchronisation.
pub struct ShardPool<A: Actuator + Clone> {
    workers: Vec<Worker<A>>,
    nshards: usize,
}

impl<A: Actuator + Clone> fmt::Debug for ShardPool<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.nshards)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<A: Actuator + Clone + Send + 'static> ShardPool<A> {
    /// Spawns `workers` long-lived threads (clamped to `[1, shards.len()]`)
    /// and distributes the shards across them in contiguous, near-equal
    /// runs. Shard order is preserved: global shard `i` stays shard `i`,
    /// so placement — and therefore every response — is identical to the
    /// scoped-spawn path.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<EngineShard<A>>, workers: usize) -> Self {
        assert!(!shards.is_empty(), "a shard pool needs at least one shard");
        let nshards = shards.len();
        let nworkers = workers.clamp(1, nshards);
        // Balanced split: the first `nshards % nworkers` workers take one
        // extra shard, so exactly `nworkers` workers are spawned (a naive
        // ceil-sized chunking can come up short — 5 shards over 4 workers
        // would yield runs of 2+2+1 and only 3 workers).
        let base = nshards / nworkers;
        let extra = nshards % nworkers;
        let mut pool = Vec::with_capacity(nworkers);
        let mut iter = shards.into_iter();
        let mut start = 0;
        for w in 0..nworkers {
            let end = start + base + usize::from(w < extra);
            let owned: Vec<EngineShard<A>> = iter.by_ref().take(end - start).collect();
            let (req_tx, req_rx) = mpsc::channel();
            let (rep_tx, rep_rx) = mpsc::channel();
            let handle = std::thread::Builder::new()
                .name(format!("valkyrie-shards-{start}"))
                .spawn(move || worker_loop(owned, req_rx, rep_tx))
                .expect("failed to spawn engine shard worker");
            pool.push(Worker {
                requests: req_tx,
                replies: rep_rx,
                shard_range: start..end,
                handle: Some(handle),
            });
            start = end;
        }
        Self {
            workers: pool,
            nshards,
        }
    }
}

impl<A: Actuator + Clone> ShardPool<A> {
    /// Number of shards owned across all workers.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker owning global shard index `shard`.
    fn worker_of(&self, shard: usize) -> &Worker<A> {
        debug_assert!(shard < self.nshards);
        self.workers
            .iter()
            .find(|w| w.shard_range.contains(&shard))
            .expect("every shard index is owned by a worker")
    }

    /// Sends `request` to the owner of `shard` with the shard index
    /// rebased to the worker's local numbering, and returns its reply.
    fn ask(&self, shard: usize, request: impl FnOnce(usize) -> Request) -> Reply<A> {
        let worker = self.worker_of(shard);
        worker.send(request(shard - worker.shard_range.start));
        worker.recv()
    }

    /// Feeds one tick's partitioned work — `parts[i]` is the work list for
    /// global shard `i` — and returns one response list per shard, in
    /// shard order. All workers run concurrently; the work buffers are
    /// moved to the workers and handed back through the reply, so the
    /// caller's scratch keeps its allocations (contents included — the
    /// caller clears them on the next partition pass).
    pub(crate) fn observe_parts(&mut self, parts: &mut [ShardWork]) -> Vec<Vec<EngineResponse>> {
        debug_assert_eq!(parts.len(), self.nshards);
        for worker in &self.workers {
            let work: Vec<ShardWork> = parts[worker.shard_range.clone()]
                .iter_mut()
                .map(std::mem::take)
                .collect();
            worker.send(Request::Observe { work });
        }
        let mut all = Vec::with_capacity(self.nshards);
        for worker in &self.workers {
            match worker.recv() {
                Reply::Observed { responses, work } => {
                    for (slot, buf) in parts[worker.shard_range.clone()].iter_mut().zip(work) {
                        *slot = buf;
                    }
                    all.extend(responses);
                }
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        all
    }

    /// The fusion twin of [`ShardPool::observe_parts`]: `parts[i]` is the
    /// per-detector verdict list for global shard `i`; returns one fused
    /// response list per shard, in shard order.
    pub(crate) fn observe_verdict_parts(
        &mut self,
        parts: &mut [VerdictWork],
    ) -> Vec<Vec<EngineResponse>> {
        debug_assert_eq!(parts.len(), self.nshards);
        for worker in &self.workers {
            let work: Vec<VerdictWork> = parts[worker.shard_range.clone()]
                .iter_mut()
                .map(std::mem::take)
                .collect();
            worker.send(Request::ObserveVerdicts { work });
        }
        let mut all = Vec::with_capacity(self.nshards);
        for worker in &self.workers {
            match worker.recv() {
                Reply::ObservedVerdicts { responses, work } => {
                    for (slot, buf) in parts[worker.shard_range.clone()].iter_mut().zip(work) {
                        *slot = buf;
                    }
                    all.extend(responses);
                }
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        all
    }

    /// Hands every worker the engine's ingest rings (see
    /// [`crate::ingest`]) so [`ShardPool::drain_parts`] can be served by
    /// the shard owners themselves. Idempotent: re-installing replaces the
    /// workers' handles.
    pub(crate) fn install_ingest(&self, queues: &Arc<IngestQueues>) {
        for worker in &self.workers {
            worker.send(Request::InstallIngest {
                queues: Arc::clone(queues),
                base: worker.shard_range.start,
            });
        }
        for worker in &self.workers {
            match worker.recv() {
                Reply::Done => {}
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
    }

    /// Hands every worker the engine's *verdict* rings; the fusion twin of
    /// [`ShardPool::install_ingest`].
    pub(crate) fn install_verdict_ingest(&self, queues: &Arc<IngestQueues<Verdict>>) {
        for worker in &self.workers {
            worker.send(Request::InstallVerdictIngest {
                queues: Arc::clone(queues),
                base: worker.shard_range.start,
            });
        }
        for worker in &self.workers {
            match worker.recv() {
                Reply::Done => {}
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
    }

    /// Asks every worker to drain its own shards' ingest rings in place
    /// and answer the drained observations. Returns one `(sequence
    /// stamps, responses)` pair per shard, in shard order — the stamps let
    /// the engine merge the lists back into publish order. Workers run
    /// concurrently; no work list crosses a thread boundary (the rings are
    /// shared, the drains are local).
    pub(crate) fn drain_parts(&mut self) -> Vec<(Vec<u64>, Vec<EngineResponse>)> {
        for worker in &self.workers {
            worker.send(Request::Drain);
        }
        let mut all = Vec::with_capacity(self.nshards);
        for worker in &self.workers {
            match worker.recv() {
                Reply::Drained(parts) => all.extend(parts),
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        all
    }

    /// Asks every worker to drain its own shards' verdict rings in place,
    /// fuse the absorbed evidence and answer one response per touched
    /// process, shard by shard in shard order.
    pub(crate) fn drain_verdict_parts(&mut self) -> Vec<Vec<EngineResponse>> {
        for worker in &self.workers {
            worker.send(Request::DrainVerdicts);
        }
        let mut all = Vec::with_capacity(self.nshards);
        for worker in &self.workers {
            match worker.recv() {
                Reply::DrainedVerdicts(parts) => all.extend(parts),
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        all
    }

    /// The fusion counters merged across every shard.
    pub fn fusion_stats(&self) -> FusionStats {
        for worker in &self.workers {
            worker.send(Request::FusionStats);
        }
        let mut stats = FusionStats::default();
        for worker in &self.workers {
            match worker.recv() {
                Reply::Fusion(part) => stats.merge(&part),
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        stats
    }

    /// Single-verdict fusion path, routed to one shard.
    pub fn observe_verdict_one(
        &mut self,
        shard: usize,
        pid: ProcessId,
        verdict: Verdict,
    ) -> EngineResponse {
        match self.ask(shard, |s| Request::ObserveVerdictOne {
            shard: s,
            pid,
            verdict,
        }) {
            Reply::Response(response) => response,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Single-observation compatibility path.
    pub fn observe_one(
        &mut self,
        shard: usize,
        pid: ProcessId,
        inference: Classification,
    ) -> EngineResponse {
        match self.ask(shard, |s| Request::ObserveOne {
            shard: s,
            pid,
            inference,
        }) {
            Reply::Response(response) => response,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Evicts terminated processes from every shard, returning the count.
    pub fn purge_terminated(&mut self) -> usize {
        for worker in &self.workers {
            worker.send(Request::Purge);
        }
        self.workers
            .iter()
            .map(|w| match w.recv() {
                Reply::Purged(n) => n,
                _ => unreachable!("worker broke the request/reply protocol"),
            })
            .sum()
    }

    /// Marks the process as completed on its owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, shard: usize, pid: ProcessId) -> Result<(), ValkyrieError> {
        match self.ask(shard, |s| Request::Complete { shard: s, pid }) {
            Reply::Completed(result) => result,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Drops the process from its owning shard.
    pub fn forget(&mut self, shard: usize, pid: ProcessId) {
        match self.ask(shard, |s| Request::Forget { shard: s, pid }) {
            Reply::Done => {}
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Current state of `pid` on its owning shard.
    pub fn state(&self, shard: usize, pid: ProcessId) -> Option<ProcessState> {
        match self.ask(shard, |s| Request::State { shard: s, pid }) {
            Reply::State(state) => state,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Current threat index of `pid` on its owning shard.
    pub fn threat(&self, shard: usize, pid: ProcessId) -> Option<ThreatIndex> {
        match self.ask(shard, |s| Request::Threat { shard: s, pid }) {
            Reply::Threat(threat) => threat,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Current resource shares of `pid` on its owning shard.
    pub fn resources(&self, shard: usize, pid: ProcessId) -> Option<ResourceVector> {
        match self.ask(shard, |s| Request::Resources { shard: s, pid }) {
            Reply::Resources(resources) => resources,
            _ => unreachable!("worker broke the request/reply protocol"),
        }
    }

    /// Total processes tracked across all shards (terminated included).
    pub fn tracked(&self) -> usize {
        self.fan_out_count(|| Request::Tracked)
    }

    /// Total live processes tracked across all shards.
    pub fn tracked_live(&self) -> usize {
        self.fan_out_count(|| Request::TrackedLive)
    }

    fn fan_out_count(&self, make: impl Fn() -> Request) -> usize {
        for worker in &self.workers {
            worker.send(make());
        }
        self.workers
            .iter()
            .map(|w| match w.recv() {
                Reply::Count(n) => n,
                _ => unreachable!("worker broke the request/reply protocol"),
            })
            .sum()
    }

    /// `(pid, state, threat)` of every tracked process, worker by worker
    /// (no global ordering — same contract as the scoped path's iterator).
    pub fn snapshot(&self) -> Vec<(ProcessId, ProcessState, ThreatIndex)> {
        for worker in &self.workers {
            worker.send(Request::Snapshot);
        }
        let mut all = Vec::new();
        for worker in &self.workers {
            match worker.recv() {
                Reply::Snapshot(part) => all.extend(part),
                _ => unreachable!("worker broke the request/reply protocol"),
            }
        }
        all
    }

    /// Stops every worker and returns the shards in their original global
    /// order, with all per-process state intact. This is the lossless
    /// inverse of [`ShardPool::new`].
    ///
    /// # Panics
    ///
    /// Panics if a worker died before handing its shards back (it can only
    /// die by panicking mid-request, i.e. a shard panicked): returning a
    /// partial shard set would silently shift shard indices and corrupt
    /// pid routing, so the panic is propagated instead.
    pub fn shutdown(mut self) -> Vec<EngineShard<A>> {
        let mut shards = Vec::with_capacity(self.nshards);
        for worker in &self.workers {
            let _ = worker.requests.send(Request::Shutdown);
        }
        for worker in &mut self.workers {
            match worker.replies.recv() {
                Ok(Reply::Shards(owned)) => shards.extend(owned),
                Ok(_) => unreachable!("worker broke the request/reply protocol"),
                Err(_) => panic!("engine shard worker panicked; its shards are lost"),
            }
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
        debug_assert_eq!(shards.len(), self.nshards);
        shards
    }
}

impl<A: Actuator + Clone> Drop for ShardPool<A> {
    /// Joins every worker so no thread outlives the pool. Workers that
    /// already handed their shards back (via [`ShardPool::shutdown`])
    /// have exited and their channels are closed; the sends then fail
    /// harmlessly.
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.requests.send(Request::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::{Action, EngineConfig};
    use Classification::{Benign, Malicious};

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    fn shards(n: usize, n_star: u64) -> Vec<EngineShard> {
        (0..n).map(|_| EngineShard::new(config(n_star))).collect()
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_pool_is_rejected() {
        let _ = ShardPool::<crate::CompositeActuator>::new(Vec::new(), 4);
    }

    #[test]
    fn worker_count_is_clamped_to_shard_count() {
        let pool = ShardPool::new(shards(3, 5), 16);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.shards(), 3);
        let pool = ShardPool::new(shards(8, 5), 0);
        assert_eq!(pool.workers(), 1);
    }

    /// Regression: ceil-sized chunking used to come up short when the
    /// shard count didn't divide evenly — 5 shards over 4 requested
    /// workers yielded runs of 2+2+1 and only 3 workers. The balanced
    /// split must spawn exactly the requested (clamped) count, with every
    /// shard owned by exactly one worker.
    #[test]
    fn uneven_shard_counts_still_get_every_requested_worker() {
        for (nshards, requested) in [(5usize, 4usize), (7, 3), (16, 5), (9, 9)] {
            let mut pool = ShardPool::new(shards(nshards, 50), requested);
            assert_eq!(pool.workers(), requested, "{nshards} shards");
            // Every shard index routes somewhere and does work.
            for shard in 0..nshards {
                pool.observe_one(shard, ProcessId(shard as u64), Benign);
            }
            assert_eq!(pool.tracked(), nshards, "{nshards} shards");
        }
    }

    #[test]
    fn observe_parts_returns_per_shard_responses_and_buffers() {
        let mut pool = ShardPool::new(shards(4, 100), 2);
        let mut parts: Vec<ShardWork> = vec![
            vec![(ProcessId(0), Malicious)],
            vec![(ProcessId(1), Benign)],
            vec![],
            vec![(ProcessId(3), Malicious), (ProcessId(3), Malicious)],
        ];
        let responses = pool.observe_parts(&mut parts);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].len(), 1);
        assert_eq!(responses[2].len(), 0);
        assert_eq!(responses[3].len(), 2);
        assert_eq!(responses[0][0].action, Action::Throttle);
        assert!(responses[3][1].resources.cpu < responses[3][0].resources.cpu);
        // The work buffers came back (contents intact until the next
        // partition pass clears them).
        assert_eq!(parts[3].len(), 2);
    }

    #[test]
    fn control_plane_routes_to_the_owning_shard() {
        let mut pool = ShardPool::new(shards(3, 50), 3);
        pool.observe_one(1, ProcessId(42), Malicious);
        assert_eq!(pool.state(1, ProcessId(42)), Some(ProcessState::Suspicious));
        assert_eq!(pool.state(0, ProcessId(42)), None);
        assert!(pool.resources(1, ProcessId(42)).unwrap().cpu < 1.0);
        assert!(!pool.threat(1, ProcessId(42)).unwrap().is_zero());
        assert_eq!(pool.tracked(), 1);
        assert_eq!(pool.tracked_live(), 1);
        pool.complete(1, ProcessId(42)).unwrap();
        assert_eq!(pool.tracked_live(), 0);
        assert_eq!(pool.purge_terminated(), 1);
        assert_eq!(pool.tracked(), 0);
        assert!(pool.complete(1, ProcessId(42)).is_err());
    }

    #[test]
    fn forget_drops_without_error() {
        let mut pool = ShardPool::new(shards(2, 50), 2);
        pool.observe_one(0, ProcessId(9), Benign);
        pool.forget(0, ProcessId(9));
        assert_eq!(pool.tracked(), 0);
        // Forgetting an unknown pid is a no-op, as on EngineShard.
        pool.forget(1, ProcessId(9));
    }

    #[test]
    fn snapshot_covers_every_worker() {
        let mut pool = ShardPool::new(shards(4, 50), 2);
        pool.observe_one(0, ProcessId(1), Benign);
        pool.observe_one(3, ProcessId(2), Malicious);
        let mut pids: Vec<u64> = pool.snapshot().iter().map(|(pid, _, _)| pid.0).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![1, 2]);
    }

    #[test]
    fn shutdown_returns_shards_in_order_with_state_intact() {
        let mut pool = ShardPool::new(shards(5, 50), 2);
        pool.observe_one(3, ProcessId(7), Malicious);
        let shards = pool.shutdown();
        assert_eq!(shards.len(), 5);
        assert_eq!(
            shards[3].state(ProcessId(7)),
            Some(ProcessState::Suspicious)
        );
        assert_eq!(shards[0].tracked(), 0);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Regression for hanging shutdown: dropping the pool must return
        // (the workers exit on the shutdown message / closed channel).
        let mut pool = ShardPool::new(shards(7, 50), 4);
        pool.observe_one(2, ProcessId(1), Benign);
        drop(pool);
    }
}
