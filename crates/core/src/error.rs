//! Error type for the Valkyrie core crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running the Valkyrie framework.
///
/// # Examples
///
/// ```
/// use valkyrie_core::ValkyrieError;
/// let e = ValkyrieError::InvalidConfig("N* must be non-zero".into());
/// assert!(e.to_string().contains("N*"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValkyrieError {
    /// A configuration value was rejected (message explains which and why).
    InvalidConfig(String),
    /// An efficacy curve was malformed (unsorted, out-of-range metrics, ...).
    InvalidCurve(String),
    /// The requested efficacy cannot be met by the supplied curve.
    UnreachableEfficacy {
        /// Human-readable description of the constraint that failed.
        constraint: String,
    },
    /// An operation referenced a process the engine is not tracking.
    UnknownProcess(u64),
}

impl fmt::Display for ValkyrieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValkyrieError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ValkyrieError::InvalidCurve(msg) => write!(f, "invalid efficacy curve: {msg}"),
            ValkyrieError::UnreachableEfficacy { constraint } => {
                write!(f, "efficacy constraint not reachable: {constraint}")
            }
            ValkyrieError::UnknownProcess(pid) => write!(f, "unknown process id {pid}"),
        }
    }
}

impl Error for ValkyrieError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ValkyrieError::UnknownProcess(42);
        assert_eq!(e.to_string(), "unknown process id 42");
        let e = ValkyrieError::UnreachableEfficacy {
            constraint: "F1 >= 0.99".into(),
        };
        assert!(e.to_string().contains("F1 >= 0.99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValkyrieError>();
    }
}
