//! Adaptive attackers that try to *game* the response framework.
//!
//! The paper's discussion (Section VII) scopes adversarial attacks on the
//! **detector** out; this module studies the complementary question the
//! response layer itself raises: can an attacker exploit Valkyrie's
//! *compensation* mechanism — behave maliciously, pause until the threat
//! index decays, and resume — to make progress indefinitely without being
//! terminated?
//!
//! The answer, quantified by [`run_evasion`] and the `evasion` experiment
//! binary, is that duty-cycling is a losing trade under Valkyrie:
//!
//! * every dormant epoch costs the attacker wall-clock time but still counts
//!   toward `N*`, so the terminable verdict arrives on schedule;
//! * in the terminable state each active epoch is a Bernoulli trial against
//!   the detector's true-positive rate, bounding the expected remaining
//!   progress by [`expected_terminable_progress`];
//! * pre-`N*` progress is throttled as soon as the penalty outpaces the
//!   compensation, and steeper penalty functions (`F_p`) shrink the viable
//!   duty-cycle window — the hardening knob the ablation sweep exercises.
//!
//! The *adaptive tier* sharpens the question from fixed schedules to
//! best responses: [`AdaptiveStrategy`] attackers choose a graded effort in
//! `[0, 1]` each epoch (progress and detection probability both scale with
//! it — the detection probability interpolates between `fpr` at effort 0
//! and `tpr` at effort 1), and close the loop on their own [`AttackerView`].
//! [`LawProbe`] identifies the deployed [`ThrottleLaw`] family and parameter
//! from the share responses to a calibrated burst; [`IntensityModulator`]
//! rides a share-hysteresis band and goes quiet at its `N*` estimate;
//! [`MassRider`] holds the expected fused confidence just below an
//! [`crate::EscalationLadder`] rung. The `adaptive` experiment searches
//! these parameter spaces per response law and reports the *worst-case*
//! efficacy floor each law retains.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::evasion::{AttackerStrategy, DetectorModel, EvasionScenario, run_evasion};
//! use valkyrie_core::{EngineConfig, ShareActuator};
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(15)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()?;
//! let scenario = EvasionScenario::new(
//!     AttackerStrategy::DutyCycle { active: 2, dormant: 3 },
//!     DetectorModel::perfect(),
//!     60,
//! );
//! let outcome = run_evasion(&config, &scenario);
//! // The duty-cycling attacker is still terminated and makes far less
//! // progress than it would unimpeded.
//! assert!(outcome.terminated_at.is_some());
//! assert!(outcome.progress < outcome.unimpeded);
//! # Ok::<(), valkyrie_core::ValkyrieError>(())
//! ```

use crate::actuator::{Actuator, LawFamily, ThrottleLaw};
use crate::engine::{Action, EngineConfig, ValkyrieEngine};
use crate::resource::ProcessId;
use crate::threat::Classification;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the attacker can observe about its own situation when deciding
/// whether to attack in the next epoch.
///
/// The fields model a *strong* adversary: a real attack cannot read its
/// threat index, but it can estimate `cpu_share` from its own progress rate
/// (self-timing), which is why [`AttackerStrategy::ThreatAdaptive`] keys off
/// the share rather than the index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerView {
    /// Epoch index about to start (1-based).
    pub epoch: u64,
    /// CPU share granted in the previous epoch (1.0 = unthrottled).
    pub cpu_share: f64,
    /// Measurements the detector has accumulated so far.
    pub measurements: u64,
}

/// An evasion strategy: when does the attacker do malicious work?
///
/// Dormant epochs make no attack progress and (up to the detector's
/// false-positive rate) are classified benign, letting the compensation
/// mechanism decay the threat index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerStrategy {
    /// Attack every epoch (the paper's case-study attacks).
    AlwaysActive,
    /// Attack for `active` epochs, sleep for `dormant`, repeat.
    DutyCycle {
        /// Consecutive attacking epochs per period.
        active: u32,
        /// Consecutive dormant epochs per period.
        dormant: u32,
    },
    /// Attack flat-out for the first `active_epochs` epochs, then go dormant
    /// forever (hit-and-run inside one measurement cycle).
    Sprint {
        /// Number of leading attack epochs.
        active_epochs: u64,
    },
    /// Self-timing sawtooth: pause while the observed CPU share is below
    /// `resume_above`, attack once recovery has raised it back.
    ThreatAdaptive {
        /// Attack only when the previous epoch's CPU share is at least this.
        resume_above: f64,
    },
}

impl AttackerStrategy {
    /// Decides whether the attacker works this epoch.
    pub fn is_active(&self, view: &AttackerView) -> bool {
        match *self {
            AttackerStrategy::AlwaysActive => true,
            AttackerStrategy::DutyCycle { active, dormant } => {
                let period = u64::from(active) + u64::from(dormant);
                if period == 0 {
                    return false;
                }
                (view.epoch - 1) % period < u64::from(active)
            }
            AttackerStrategy::Sprint { active_epochs } => view.epoch <= active_epochs,
            AttackerStrategy::ThreatAdaptive { resume_above } => view.cpu_share >= resume_above,
        }
    }
}

/// A stochastic model of the augmented detector, reduced to the two rates
/// that matter to the response layer.
///
/// # Examples
///
/// ```
/// use valkyrie_core::evasion::DetectorModel;
/// let d = DetectorModel::new(0.95, 0.04).unwrap();
/// assert_eq!(d.tpr(), 0.95);
/// assert!(DetectorModel::new(1.5, 0.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorModel {
    tpr: f64,
    fpr: f64,
}

impl DetectorModel {
    /// A detector with true-positive rate `tpr` (malicious verdict while the
    /// attacker works) and false-positive rate `fpr` (malicious verdict
    /// while it sleeps).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ValkyrieError::InvalidConfig`] when either rate is
    /// outside `[0, 1]` or not finite.
    pub fn new(tpr: f64, fpr: f64) -> Result<Self, crate::ValkyrieError> {
        for (name, v) in [("tpr", tpr), ("fpr", fpr)] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(crate::ValkyrieError::InvalidConfig(format!(
                    "{name} must lie in [0, 1], got {v}"
                )));
            }
        }
        Ok(Self { tpr, fpr })
    }

    /// The ideal detector: always right (`tpr = 1`, `fpr = 0`).
    pub fn perfect() -> Self {
        Self { tpr: 1.0, fpr: 0.0 }
    }

    /// True-positive rate.
    pub fn tpr(&self) -> f64 {
        self.tpr
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// Samples one epoch's inference given the attacker's behaviour.
    pub fn classify<R: Rng>(&self, active: bool, rng: &mut R) -> Classification {
        let p = if active { self.tpr } else { self.fpr };
        if rng.gen::<f64>() < p {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Probability of a malicious verdict at a graded attack `intensity`.
    ///
    /// Interpolates linearly between the false-positive rate at intensity 0
    /// (a dormant attacker is only flagged by mistake) and the true-positive
    /// rate at intensity 1 (a flat-out attacker faces the detector's full
    /// sensitivity). The extremes return `fpr`/`tpr` *exactly* rather than
    /// through the interpolation arithmetic, so graded replays degenerate
    /// bit-for-bit to the binary ones at intensity 0/1. A non-finite
    /// intensity is treated as 0: effort is bounded by construction, so NaN
    /// is an upstream bug that must not reach the RNG comparison.
    pub fn detection_probability(&self, intensity: f64) -> f64 {
        let i = if intensity.is_finite() {
            intensity.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if i == 0.0 {
            self.fpr
        } else if i == 1.0 {
            self.tpr
        } else {
            self.fpr + (self.tpr - self.fpr) * i
        }
    }

    /// Samples one epoch's inference for a graded attack intensity
    /// (see [`DetectorModel::detection_probability`]).
    pub fn classify_graded<R: Rng>(&self, intensity: f64, rng: &mut R) -> Classification {
        if rng.gen::<f64>() < self.detection_probability(intensity) {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }

    /// Samples one epoch's *confidence* for the weighted-evidence path: the
    /// detection probability at this intensity plus uniform jitter of width
    /// `noise`, clamped into `[0, 1]`.
    ///
    /// Exactly one RNG draw is consumed regardless of `noise`, so replays
    /// with different noise settings stay draw-aligned. A non-finite noise
    /// is treated as 0.
    pub fn confidence<R: Rng>(&self, intensity: f64, noise: f64, rng: &mut R) -> f64 {
        let draw = rng.gen::<f64>() - 0.5;
        let jitter = if noise.is_finite() { draw * noise } else { 0.0 };
        (self.detection_probability(intensity) + jitter).clamp(0.0, 1.0)
    }
}

/// One evasion experiment: a strategy, a detector model and a horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionScenario {
    strategy: AttackerStrategy,
    detector: DetectorModel,
    horizon: u64,
    seed: u64,
}

impl EvasionScenario {
    /// A scenario observed for `horizon` epochs with the default seed.
    pub fn new(strategy: AttackerStrategy, detector: DetectorModel, horizon: u64) -> Self {
        Self {
            strategy,
            detector,
            horizon,
            seed: 0x56414C4B, // "VALK"
        }
    }

    /// Replaces the RNG seed (the replay is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The attacker strategy under test.
    pub fn strategy(&self) -> AttackerStrategy {
        self.strategy
    }

    /// The detector model in use.
    pub fn detector(&self) -> DetectorModel {
        self.detector
    }

    /// Number of epochs the replay covers.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }
}

/// The result of replaying an evasion scenario with and without Valkyrie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionOutcome {
    /// Attack progress achieved under Valkyrie (1.0 = one unthrottled
    /// active epoch).
    pub progress: f64,
    /// Progress the same strategy achieves with no response framework.
    pub unimpeded: f64,
    /// Epoch at which the attacker was terminated, if it was.
    pub terminated_at: Option<u64>,
    /// Number of epochs in which the attacker actually worked (pre-
    /// termination, under Valkyrie).
    pub active_epochs: u64,
}

impl EvasionOutcome {
    /// Slowdown relative to the unimpeded run, in percent (Eq. 4 semantics).
    ///
    /// 100 % means the attack made no progress at all; 0 % means Valkyrie
    /// did not slow it down.
    pub fn slowdown_percent(&self) -> f64 {
        if self.unimpeded <= 0.0 {
            0.0
        } else {
            (1.0 - self.progress / self.unimpeded) * 100.0
        }
    }
}

/// Replays an [`EvasionScenario`] through a [`ValkyrieEngine`] built from
/// `config` and returns the attacker's progress with and without Valkyrie.
///
/// Each epoch the strategy decides whether to work; the detector model
/// samples an inference; the engine updates the threat index and resource
/// shares. An active epoch contributes the granted CPU share to `progress`
/// (attack work rate is CPU-bound, as in every case study of Section VI);
/// dormant epochs contribute nothing. Termination stops the attack for good.
///
/// The unimpeded counterfactual runs the *same* activity sequence at full
/// share with no termination, so the comparison isolates the response
/// framework's effect.
pub fn run_evasion<A: Actuator + Clone>(
    config: &EngineConfig<A>,
    scenario: &EvasionScenario,
) -> EvasionOutcome {
    let mut engine = ValkyrieEngine::new(config.clone());
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let pid = ProcessId(1);

    let mut progress = 0.0;
    let mut unimpeded = 0.0;
    let mut active_epochs = 0;
    let mut terminated_at = None;
    let mut cpu_share = 1.0;
    let mut measurements = 0;

    for epoch in 1..=scenario.horizon {
        let view = AttackerView {
            epoch,
            cpu_share,
            measurements,
        };
        let active = scenario.strategy.is_active(&view);
        if active {
            // The counterfactual attacker follows the same duty cycle but is
            // never throttled or terminated.
            unimpeded += 1.0;
        }
        if terminated_at.is_some() {
            continue;
        }

        let inference = scenario.detector.classify(active, &mut rng);
        let response = engine.observe(pid, inference);
        measurements += 1;
        if response.action == Action::Terminate {
            terminated_at = Some(epoch);
            continue;
        }
        cpu_share = response.resources.cpu;
        if active {
            progress += cpu_share;
            active_epochs += 1;
        }
    }

    EvasionOutcome {
        progress,
        unimpeded,
        terminated_at,
        active_epochs,
    }
}

/// A closed-loop attacker: chooses a graded effort in `[0, 1]` from what it
/// can observe each epoch.
///
/// This is the adaptive sibling of [`AttackerStrategy`]: instead of a fixed
/// on/off schedule, implementations read the [`AttackerView`] (their own
/// share trajectory, the epoch, the measurement count) and pick an effort.
/// Progress and detection probability both scale with the effort (see
/// [`run_adaptive`] and [`DetectorModel::detection_probability`]), so the
/// strategy trades progress against exposure every epoch.
pub trait AdaptiveStrategy: std::fmt::Debug {
    /// Effort in `[0, 1]` for the epoch about to run. Out-of-range and
    /// non-finite values are sanitised by the runner.
    fn intensity(&mut self, view: &AttackerView) -> f64;

    /// Clears internal state before a fresh replay ([`run_adaptive`] and
    /// [`run_adaptive_mass`] call this once at the start).
    fn reset(&mut self) {}

    /// Feeds back a law estimate (from a [`LawProbe`]) so the strategy can
    /// retune itself mid-run; ignored by default.
    fn calibrate(&mut self, _estimate: &LawEstimate) {}
}

/// Every fixed [`AttackerStrategy`] is the degenerate adaptive strategy that
/// plays intensity 1 when active and 0 when dormant.
impl AdaptiveStrategy for AttackerStrategy {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        if self.is_active(view) {
            1.0
        } else {
            0.0
        }
    }
}

/// The same effort every epoch. `ConstantIntensity(1.0)` is bit-for-bit
/// [`AttackerStrategy::AlwaysActive`]; `ConstantIntensity(0.0)` never works.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantIntensity(pub f64);

impl AdaptiveStrategy for ConstantIntensity {
    fn intensity(&mut self, _view: &AttackerView) -> f64 {
        self.0
    }
}

/// A periodic effort schedule: `high` for `active` epochs, `low` for
/// `dormant` epochs, repeating. With `high = 1.0, low = 0.0` this is
/// bit-for-bit [`AttackerStrategy::DutyCycle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicIntensity {
    /// Consecutive high-effort epochs per period.
    pub active: u32,
    /// Consecutive low-effort epochs per period.
    pub dormant: u32,
    /// Effort during the active phase.
    pub high: f64,
    /// Effort during the dormant phase.
    pub low: f64,
}

impl AdaptiveStrategy for PeriodicIntensity {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        let period = u64::from(self.active) + u64::from(self.dormant);
        if period == 0 {
            return self.low;
        }
        if (view.epoch - 1) % period < u64::from(self.active) {
            self.high
        } else {
            self.low
        }
    }
}

/// A step-down schedule: `high` effort for the first `active_epochs` epochs,
/// `low` forever after. With `high = 1.0, low = 0.0` this is bit-for-bit
/// [`AttackerStrategy::Sprint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDown {
    /// Number of leading high-effort epochs.
    pub active_epochs: u64,
    /// Effort during the leading phase.
    pub high: f64,
    /// Effort after the step down.
    pub low: f64,
}

impl AdaptiveStrategy for StepDown {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        if view.epoch <= self.active_epochs {
            self.high
        } else {
            self.low
        }
    }
}

/// One observed share response to a penalty event, as reconstructed by a
/// [`LawProbe`]: the share `before` and `after` the event and the assumed
/// threat-index `delta` that caused it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareResponse {
    /// CPU share before the response.
    pub before: f64,
    /// CPU share after the response.
    pub after: f64,
    /// Assumed threat-index change (the k-th observed penalty under the
    /// incremental assessment contributes `delta = k`).
    pub delta: f64,
}

/// A [`LawProbe`]'s estimate of the deployed throttle law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LawEstimate {
    /// Best-fitting law (family + parameter).
    pub law: ThrottleLaw,
    /// Sum of squared share-prediction errors of the winning fit.
    pub residual: f64,
    /// Number of falling share responses the fit used.
    pub responses: usize,
}

/// Fits the best [`ThrottleLaw`] to a set of observed [`ShareResponse`]s.
///
/// For each [`LawFamily`] the parameter is estimated in closed form from the
/// falling responses (e.g. `step = mean((before − after) / delta)` for the
/// percent-point family), then every candidate is scored by its squared
/// share-prediction error and the lowest residual wins. [`LawFamily::Halve`]
/// is ordered before the general per-event family so the specific law wins
/// exact ties. Returns `None` with fewer than two usable falling responses.
///
/// # Examples
///
/// ```
/// use valkyrie_core::evasion::{fit_throttle_law, ShareResponse};
/// use valkyrie_core::ThrottleLaw;
/// let law = ThrottleLaw::PercentPointPerUnit { step: 0.10 };
/// let mut share = 1.0;
/// let mut obs = Vec::new();
/// for k in 1..=3u32 {
///     let next = law.step_share(share, f64::from(k));
///     obs.push(ShareResponse { before: share, after: next, delta: f64::from(k) });
///     share = next;
/// }
/// let est = fit_throttle_law(&obs).unwrap();
/// assert_eq!(est.law.family(), law.family());
/// assert!((est.law.parameter() - 0.10).abs() < 1e-9);
/// ```
pub fn fit_throttle_law(responses: &[ShareResponse]) -> Option<LawEstimate> {
    let falling: Vec<ShareResponse> = responses
        .iter()
        .copied()
        .filter(|r| {
            r.delta > 0.0
                && r.before.is_finite()
                && r.after.is_finite()
                && r.after < r.before
                && r.before > 0.0
                && r.after >= 0.0
        })
        .collect();
    if falling.len() < 2 {
        return None;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let mut best: Option<LawEstimate> = None;
    for family in LawFamily::ALL {
        let param = match family {
            LawFamily::PercentPoint => mean(
                &falling
                    .iter()
                    .map(|r| (r.before - r.after) / r.delta)
                    .collect::<Vec<_>>(),
            ),
            LawFamily::SchedulerWeight => mean(
                &falling
                    .iter()
                    .map(|r| (r.before - r.after) / (r.before * r.delta))
                    .collect::<Vec<_>>(),
            ),
            LawFamily::MultiplicativePerUnit => {
                let logs: Vec<f64> = falling
                    .iter()
                    .filter(|r| r.after > 0.0)
                    .map(|r| (r.after / r.before).ln() / r.delta)
                    .collect();
                if logs.is_empty() {
                    continue;
                }
                mean(&logs).exp()
            }
            LawFamily::Halve => 0.5,
            LawFamily::MultiplicativePerEvent => {
                let logs: Vec<f64> = falling
                    .iter()
                    .filter(|r| r.after > 0.0)
                    .map(|r| (r.after / r.before).ln())
                    .collect();
                if logs.is_empty() {
                    continue;
                }
                mean(&logs).exp()
            }
        };
        if !param.is_finite() {
            continue;
        }
        let law = ThrottleLaw::with_parameter(family, param);
        let residual: f64 = falling
            .iter()
            .map(|r| {
                let predicted = law.step_share(r.before, r.delta);
                (predicted - r.after).powi(2)
            })
            .sum();
        if !residual.is_finite() {
            continue;
        }
        if best.is_none_or(|b| residual < b.residual) {
            best = Some(LawEstimate {
                law,
                residual,
                responses: falling.len(),
            });
        }
    }
    best
}

/// Probes the deployed [`ThrottleLaw`] with a calibrated full-effort burst,
/// then hands control to an inner exploit strategy.
///
/// During the first `burst` epochs the probe attacks flat-out and watches
/// its own share trajectory. Every observed share *drop* is attributed to a
/// penalty event whose threat delta follows the incremental assessment
/// ladder (the k-th drop carries `delta = k` — the probe mirrors the
/// monitor's penalty counter, which never resets pre-`N*`). Once enough
/// falling responses accumulate, [`fit_throttle_law`] identifies the family
/// and parameter, the estimate is fed to the exploit strategy via
/// [`AdaptiveStrategy::calibrate`], and the exploit takes over.
#[derive(Debug, Clone)]
pub struct LawProbe<S> {
    burst: u64,
    exploit: S,
    prev_share: f64,
    penalties_seen: f64,
    responses: Vec<ShareResponse>,
    estimate: Option<LawEstimate>,
}

impl<S: AdaptiveStrategy> LawProbe<S> {
    /// A probe bursting at full effort for `burst` epochs (at least one)
    /// before delegating to `exploit`.
    pub fn new(burst: u64, exploit: S) -> Self {
        Self {
            burst: burst.max(1),
            exploit,
            prev_share: 1.0,
            penalties_seen: 0.0,
            responses: Vec::new(),
            estimate: None,
        }
    }

    /// The law estimate, once the burst produced enough responses.
    pub fn estimate(&self) -> Option<&LawEstimate> {
        self.estimate.as_ref()
    }

    /// The inner exploit strategy.
    pub fn exploit(&self) -> &S {
        &self.exploit
    }
}

impl<S: AdaptiveStrategy> AdaptiveStrategy for LawProbe<S> {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        // Attribute the share movement since last epoch. Drops are penalty
        // events on the incremental delta ladder; rises (recovery/restore)
        // carry no information the fit uses.
        if self.estimate.is_none() && view.epoch > 1 && view.cpu_share < self.prev_share {
            self.penalties_seen += 1.0;
            self.responses.push(ShareResponse {
                before: self.prev_share,
                after: view.cpu_share,
                delta: self.penalties_seen,
            });
        }
        self.prev_share = view.cpu_share;

        if view.epoch <= self.burst {
            return 1.0;
        }
        if self.estimate.is_none() {
            if let Some(est) = fit_throttle_law(&self.responses) {
                self.exploit.calibrate(&est);
                self.estimate = Some(est);
            }
        }
        self.exploit.intensity(view)
    }

    fn reset(&mut self) {
        self.prev_share = 1.0;
        self.penalties_seen = 0.0;
        self.responses.clear();
        self.estimate = None;
        self.exploit.reset();
    }
}

/// Best-responds to a throttle law by holding effort just below the
/// escalation/termination boundary.
///
/// Pre-`N*` it runs a share-hysteresis sawtooth at a tunable effort: attack
/// at `attack_intensity` until the share falls below `pause_below`, pause
/// until it recovers above `resume_above`. Once the measurement counter
/// reaches `quiet_after` — the attacker's estimate of the terminable
/// boundary — it drops to `terminal_intensity`, where every active epoch is
/// a near-`fpr` Bernoulli kill trial instead of a near-`tpr` one.
///
/// [`AdaptiveStrategy::calibrate`] retunes the hysteresis band to the
/// estimated law by simulating the attack/pause cycle under a worst-case
/// mirror of the penalty/compensation dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityModulator {
    /// Effort while attacking.
    pub attack_intensity: f64,
    /// Pause when the observed share falls below this.
    pub pause_below: f64,
    /// Resume when the observed share recovers to at least this.
    pub resume_above: f64,
    /// Measurement count at which to go quiet (the attacker's `N*` guess).
    pub quiet_after: u64,
    /// Effort after going quiet.
    pub terminal_intensity: f64,
    attacking: bool,
}

impl IntensityModulator {
    /// A modulator with a sanitised parameter set (`pause_below` never
    /// exceeds `resume_above`; efforts and thresholds clamp into `[0, 1]`).
    pub fn new(
        attack_intensity: f64,
        pause_below: f64,
        resume_above: f64,
        quiet_after: u64,
        terminal_intensity: f64,
    ) -> Self {
        let sane = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let pause_below = sane(pause_below);
        Self {
            attack_intensity: sane(attack_intensity),
            pause_below,
            resume_above: sane(resume_above).max(pause_below),
            quiet_after,
            terminal_intensity: sane(terminal_intensity),
            attacking: true,
        }
    }
}

/// Steady progress rate of an attack/pause hysteresis cycle under `law`,
/// assuming every attacking epoch draws a penalty and every paused epoch a
/// compensation (the attacker's worst case), with incremental assessments
/// mirroring the monitor's never-resetting counters.
fn hysteresis_rate(law: ThrottleLaw, intensity: f64, pause_below: f64, resume_above: f64) -> f64 {
    let epochs = 96u32;
    let mut share = 1.0f64;
    let mut penalty = 0.0f64;
    let mut compensation = 0.0f64;
    let mut attacking = true;
    let mut progress = 0.0f64;
    for _ in 0..epochs {
        if attacking {
            if share < pause_below {
                attacking = false;
            }
        } else if share >= resume_above {
            attacking = true;
        }
        if attacking {
            progress += intensity * share;
            penalty += 1.0;
            share = law.step_share(share, penalty);
        } else {
            compensation += 1.0;
            share = law.step_share(share, -compensation);
        }
    }
    progress / f64::from(epochs)
}

impl AdaptiveStrategy for IntensityModulator {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        if view.measurements >= self.quiet_after {
            return self.terminal_intensity;
        }
        if self.attacking {
            if view.cpu_share < self.pause_below {
                self.attacking = false;
            }
        } else if view.cpu_share >= self.resume_above {
            self.attacking = true;
        }
        if self.attacking {
            self.attack_intensity
        } else {
            0.0
        }
    }

    fn reset(&mut self) {
        self.attacking = true;
    }

    fn calibrate(&mut self, estimate: &LawEstimate) {
        let mut best = (self.pause_below, self.resume_above);
        let mut best_rate = hysteresis_rate(
            estimate.law,
            self.attack_intensity,
            self.pause_below,
            self.resume_above,
        );
        for pause in [0.1, 0.2, 0.35, 0.5, 0.65] {
            for resume in [0.5, 0.65, 0.8, 0.9, 0.99] {
                if resume < pause {
                    continue;
                }
                let rate = hysteresis_rate(estimate.law, self.attack_intensity, pause, resume);
                if rate > best_rate {
                    best_rate = rate;
                    best = (pause, resume);
                }
            }
        }
        self.pause_below = best.0;
        self.resume_above = best.1;
    }
}

/// Best-responds to an [`crate::EscalationLadder`] by holding the *expected fused
/// mass* just below a rung boundary (obtained from
/// [`crate::EscalationLadder::ride_below`]).
///
/// The effort is the inverse of [`DetectorModel::detection_probability`]:
/// the intensity whose expected confidence equals the target mass. Below
/// the throttle rung the attacker is never throttled; below the kill rung
/// it is never terminated — the graduated ladder's observe band is free
/// progress for an attacker that knows where the rungs sit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassRider {
    /// The attacker's model of the detector (used to invert the response).
    pub detector: DetectorModel,
    /// Expected-mass target before going quiet.
    pub target_mass: f64,
    /// Measurement count at which to switch to the terminal target.
    pub quiet_after: u64,
    /// Expected-mass target after going quiet.
    pub terminal_mass: f64,
}

impl MassRider {
    /// A rider with clamped mass targets.
    pub fn new(
        detector: DetectorModel,
        target_mass: f64,
        quiet_after: u64,
        terminal_mass: f64,
    ) -> Self {
        let sane = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            detector,
            target_mass: sane(target_mass),
            quiet_after,
            terminal_mass: sane(terminal_mass),
        }
    }

    /// The effort whose expected confidence equals `target`.
    pub fn effort_for(&self, target: f64) -> f64 {
        let span = self.detector.tpr() - self.detector.fpr();
        if span <= 0.0 {
            // A flat (or inverted) detector gives the attacker no dial to
            // turn; full effort is then the dominant choice.
            return 1.0;
        }
        ((target - self.detector.fpr()) / span).clamp(0.0, 1.0)
    }
}

impl AdaptiveStrategy for MassRider {
    fn intensity(&mut self, view: &AttackerView) -> f64 {
        let target = if view.measurements >= self.quiet_after {
            self.terminal_mass
        } else {
            self.target_mass
        };
        self.effort_for(target)
    }
}

/// One graded replay: a detector model, a horizon and a seed (plus a
/// confidence-jitter width for the weighted-evidence path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveScenario {
    detector: DetectorModel,
    horizon: u64,
    seed: u64,
    noise: f64,
}

impl AdaptiveScenario {
    /// A scenario observed for `horizon` epochs with the default seed and no
    /// confidence jitter.
    pub fn new(detector: DetectorModel, horizon: u64) -> Self {
        Self {
            detector,
            horizon,
            seed: 0x56414C4B, // "VALK"
            noise: 0.0,
        }
    }

    /// Replaces the RNG seed (the replay is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the confidence-jitter width used by [`run_adaptive_mass`].
    #[must_use]
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// The detector model in use.
    pub fn detector(&self) -> DetectorModel {
        self.detector
    }

    /// Number of epochs the replay covers.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The confidence-jitter width.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

/// Sanitises a strategy's declared effort: `[0, 1]`, non-finite → 0.
fn sane_intensity(raw: f64) -> f64 {
    if raw.is_finite() {
        raw.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Replays an adaptive attacker against the binary-verdict path.
///
/// The graded sibling of [`run_evasion`]: each epoch the strategy picks an
/// effort, the detector samples a verdict at the interpolated detection
/// probability, and an active epoch contributes `intensity × share` to
/// progress (and `intensity` to the unimpeded counterfactual). At effort
/// exactly 0/1 every arithmetic step degenerates to the binary path, so a
/// degenerate adaptive strategy replays bit-for-bit like its fixed
/// counterpart (property-pinned in `tests/properties.rs`).
pub fn run_adaptive<A: Actuator + Clone, S: AdaptiveStrategy + ?Sized>(
    config: &EngineConfig<A>,
    scenario: &AdaptiveScenario,
    strategy: &mut S,
) -> EvasionOutcome {
    let mut engine = ValkyrieEngine::new(config.clone());
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let pid = ProcessId(1);
    strategy.reset();

    let mut progress = 0.0;
    let mut unimpeded = 0.0;
    let mut active_epochs = 0;
    let mut terminated_at = None;
    let mut cpu_share = 1.0;
    let mut measurements = 0;

    for epoch in 1..=scenario.horizon {
        let view = AttackerView {
            epoch,
            cpu_share,
            measurements,
        };
        let intensity = sane_intensity(strategy.intensity(&view));
        if intensity > 0.0 {
            unimpeded += intensity;
        }
        if terminated_at.is_some() {
            continue;
        }

        let inference = scenario.detector.classify_graded(intensity, &mut rng);
        let response = engine.observe(pid, inference);
        measurements += 1;
        if response.action == Action::Terminate {
            terminated_at = Some(epoch);
            continue;
        }
        cpu_share = response.resources.cpu;
        if intensity > 0.0 {
            progress += intensity * cpu_share;
            active_epochs += 1;
        }
    }

    EvasionOutcome {
        progress,
        unimpeded,
        terminated_at,
        active_epochs,
    }
}

/// Replays an adaptive attacker against the weighted-evidence path.
///
/// Like [`run_adaptive`], but the detector emits a graded *confidence*
/// (detection probability at the chosen effort plus uniform jitter of the
/// scenario's noise width) and the engine advances through
/// [`ValkyrieEngine::observe_mass`] under its configured
/// [`crate::EscalationLadder`]. This is the path a [`MassRider`] games: holding the
/// expected confidence below the throttle rung keeps the ladder in its
/// observe band, where no penalty is ever assessed.
pub fn run_adaptive_mass<A: Actuator + Clone, S: AdaptiveStrategy + ?Sized>(
    config: &EngineConfig<A>,
    scenario: &AdaptiveScenario,
    strategy: &mut S,
) -> EvasionOutcome {
    let mut engine = ValkyrieEngine::new(config.clone());
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let pid = ProcessId(1);
    strategy.reset();

    let mut progress = 0.0;
    let mut unimpeded = 0.0;
    let mut active_epochs = 0;
    let mut terminated_at = None;
    let mut cpu_share = 1.0;
    let mut measurements = 0;

    for epoch in 1..=scenario.horizon {
        let view = AttackerView {
            epoch,
            cpu_share,
            measurements,
        };
        let intensity = sane_intensity(strategy.intensity(&view));
        if intensity > 0.0 {
            unimpeded += intensity;
        }
        if terminated_at.is_some() {
            continue;
        }

        let mass = scenario
            .detector
            .confidence(intensity, scenario.noise, &mut rng);
        let response = engine.observe_mass(pid, mass);
        measurements += 1;
        if response.action == Action::Terminate {
            terminated_at = Some(epoch);
            continue;
        }
        cpu_share = response.resources.cpu;
        if intensity > 0.0 {
            progress += intensity * cpu_share;
            active_epochs += 1;
        }
    }

    EvasionOutcome {
        progress,
        unimpeded,
        terminated_at,
        active_epochs,
    }
}

/// Expected progress (in unthrottled-epoch units) an always-active attacker
/// gains *after* reaching the terminable state, for a detector with
/// true-positive rate `tpr`.
///
/// In the terminable state every active epoch is an independent chance of
/// termination; the termination epoch itself yields no progress, so the
/// expectation is the mean of a geometric distribution minus the killing
/// trial: `(1 − tpr) / tpr`. A detector that is always right leaves zero
/// post-efficacy progress; a coin-flip detector leaves one epoch on average.
///
/// # Examples
///
/// ```
/// use valkyrie_core::evasion::expected_terminable_progress;
/// assert_eq!(expected_terminable_progress(1.0), 0.0);
/// assert_eq!(expected_terminable_progress(0.5), 1.0);
/// assert!(expected_terminable_progress(0.0).is_infinite());
/// ```
pub fn expected_terminable_progress(tpr: f64) -> f64 {
    let tpr = tpr.clamp(0.0, 1.0);
    if tpr == 0.0 {
        f64::INFINITY
    } else {
        (1.0 - tpr) / tpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::EngineConfig;
    use crate::state::ProcessState;

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    #[test]
    fn always_active_attacker_is_terminated_right_after_n_star() {
        let scenario =
            EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 40);
        let out = run_evasion(&config(15), &scenario);
        assert_eq!(out.terminated_at, Some(16));
        assert!(out.progress < out.unimpeded);
        assert!(out.slowdown_percent() > 70.0, "{}", out.slowdown_percent());
    }

    #[test]
    fn dormant_attacker_makes_no_progress_and_survives() {
        let scenario = EvasionScenario::new(
            AttackerStrategy::Sprint { active_epochs: 0 },
            DetectorModel::perfect(),
            50,
        );
        let out = run_evasion(&config(10), &scenario);
        assert_eq!(out.progress, 0.0);
        assert_eq!(out.unimpeded, 0.0);
        assert_eq!(out.terminated_at, None);
        assert_eq!(out.slowdown_percent(), 0.0);
    }

    #[test]
    fn duty_cycle_is_terminated_at_first_active_terminable_epoch() {
        // 1 active, 4 dormant; N* = 10. Epochs 1, 6, 11, ... are active.
        // The terminable state is reached at measurement 10; the next
        // *active* epoch (11) draws a malicious verdict and dies.
        let scenario = EvasionScenario::new(
            AttackerStrategy::DutyCycle {
                active: 1,
                dormant: 4,
            },
            DetectorModel::perfect(),
            60,
        );
        let out = run_evasion(&config(10), &scenario);
        assert_eq!(out.terminated_at, Some(11));
        // Two active epochs survived (1 and 6), both heavily compensated in
        // between, so progress stays below 2 full epochs.
        assert_eq!(out.active_epochs, 2);
        assert!(out.progress <= 2.0);
    }

    #[test]
    fn sprint_inside_one_cycle_is_throttled_not_free() {
        // Attack hard for 5 epochs, then hide. The sprint is throttled from
        // epoch 2 on, and the attacker still faces the terminable verdict.
        let scenario = EvasionScenario::new(
            AttackerStrategy::Sprint { active_epochs: 5 },
            DetectorModel::perfect(),
            30,
        );
        let out = run_evasion(&config(15), &scenario);
        assert_eq!(out.unimpeded, 5.0);
        assert!(
            out.progress < 5.0 * 0.8,
            "sprint was barely throttled: {}",
            out.progress
        );
        // All-dormant afterwards: classified benign, never terminated.
        assert_eq!(out.terminated_at, None);
    }

    #[test]
    fn threat_adaptive_sawtooth_is_bounded_by_duty_cycle() {
        let cfg = config(20);
        let sawtooth = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::ThreatAdaptive { resume_above: 0.95 },
                DetectorModel::perfect(),
                100,
            ),
        );
        let always = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::AlwaysActive,
                DetectorModel::perfect(),
                100,
            ),
        );
        // Dormant epochs still count toward N*, so the sawtooth cannot
        // postpone the terminable verdict …
        assert_eq!(sawtooth.terminated_at, always.terminated_at);
        // … and it pays for the evasion with a halved duty cycle.
        assert!(sawtooth.active_epochs < 15);
        assert!(sawtooth.progress < 0.35 * 100.0);
    }

    #[test]
    fn imperfect_detector_leaves_geometric_tail() {
        // With tpr < 1 the attacker survives some terminable epochs; the
        // empirical mean should approach (1-p)/p across seeds.
        let cfg = config(5);
        let tpr = 0.5;
        let mut total = 0.0;
        let trials = 400;
        for seed in 0..trials {
            let scenario = EvasionScenario::new(
                AttackerStrategy::AlwaysActive,
                DetectorModel::new(tpr, 0.0).unwrap(),
                400,
            )
            .with_seed(seed);
            let out = run_evasion(&cfg, &scenario);
            // Progress after the restore at N* is at full share; subtract
            // the (throttled) pre-N* part by measuring terminable survival.
            let t = out.terminated_at.expect("tpr>0 should terminate");
            total += (t - 1 - 5) as f64; // epochs survived past N*
        }
        let mean = total / trials as f64;
        let expect = expected_terminable_progress(tpr);
        assert!(
            (mean - expect).abs() < 0.25,
            "mean {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn steeper_penalty_reduces_duty_cycle_progress() {
        // Hardening: exponential penalty throttles the sawtooth harder than
        // the incremental one for the same compensation.
        let inc = EngineConfig::builder()
            .measurements_required(30)
            .penalty(crate::AssessmentFn::incremental())
            .compensation(crate::AssessmentFn::incremental())
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let exp = EngineConfig::builder()
            .measurements_required(30)
            .penalty(crate::AssessmentFn::exponential(2.0))
            .compensation(crate::AssessmentFn::incremental())
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let scenario = EvasionScenario::new(
            AttackerStrategy::DutyCycle {
                active: 3,
                dormant: 3,
            },
            DetectorModel::perfect(),
            30,
        );
        let p_inc = run_evasion(&inc, &scenario).progress;
        let p_exp = run_evasion(&exp, &scenario).progress;
        assert!(p_exp < p_inc, "exp {p_exp} !< inc {p_inc}");
    }

    #[test]
    fn termination_state_is_reflected_in_engine() {
        let cfg = config(3);
        let mut engine = ValkyrieEngine::new(cfg.clone());
        let pid = ProcessId(1);
        for _ in 0..4 {
            engine.observe(pid, Classification::Malicious);
        }
        assert_eq!(engine.state(pid), Some(ProcessState::Terminated));
    }

    #[test]
    fn zero_period_duty_cycle_is_never_active() {
        let s = AttackerStrategy::DutyCycle {
            active: 0,
            dormant: 0,
        };
        let view = AttackerView {
            epoch: 1,
            cpu_share: 1.0,
            measurements: 0,
        };
        assert!(!s.is_active(&view));
    }

    #[test]
    fn scenario_accessors_round_trip() {
        let s = EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 7)
            .with_seed(9);
        assert_eq!(s.horizon(), 7);
        assert_eq!(s.detector().tpr(), 1.0);
        assert_eq!(s.strategy(), AttackerStrategy::AlwaysActive);
    }

    // ---- adaptive tier ----

    #[test]
    fn adaptive_scenario_accessors_round_trip() {
        let s = AdaptiveScenario::new(DetectorModel::perfect(), 12)
            .with_seed(3)
            .with_noise(0.25);
        assert_eq!(s.horizon(), 12);
        assert_eq!(s.detector().fpr(), 0.0);
        assert_eq!(s.noise(), 0.25);
    }

    #[test]
    fn detection_probability_interpolates_with_exact_extremes() {
        let d = DetectorModel::new(0.9, 0.04).unwrap();
        assert_eq!(d.detection_probability(1.0), 0.9);
        assert_eq!(d.detection_probability(0.0), 0.04);
        let mid = d.detection_probability(0.5);
        assert!(mid > 0.04 && mid < 0.9);
        // Sanitisation: out-of-range clamps, non-finite is dormant.
        assert_eq!(d.detection_probability(7.0), 0.9);
        assert_eq!(d.detection_probability(-1.0), 0.04);
        assert_eq!(d.detection_probability(f64::NAN), 0.04);
    }

    #[test]
    fn constant_full_intensity_replays_exactly_like_always_active() {
        let cfg = config(15);
        for seed in [0u64, 1, 42, 0xDEAD] {
            let fixed = run_evasion(
                &cfg,
                &EvasionScenario::new(
                    AttackerStrategy::AlwaysActive,
                    DetectorModel::new(0.9, 0.04).unwrap(),
                    60,
                )
                .with_seed(seed),
            );
            let graded = run_adaptive(
                &cfg,
                &AdaptiveScenario::new(DetectorModel::new(0.9, 0.04).unwrap(), 60).with_seed(seed),
                &mut ConstantIntensity(1.0),
            );
            assert_eq!(fixed, graded);
        }
    }

    #[test]
    fn law_probe_identifies_every_family_from_a_calibrated_burst() {
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.10 },
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
            ThrottleLaw::MultiplicativePerEvent { factor: 0.7 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ] {
            let cfg = EngineConfig::builder()
                .measurements_required(30)
                .actuator(ShareActuator::new(
                    crate::resource::ResourceKind::Cpu,
                    law,
                    0.01,
                ))
                .build()
                .unwrap();
            let mut probe = LawProbe::new(3, ConstantIntensity(0.0));
            let scenario = AdaptiveScenario::new(DetectorModel::perfect(), 8);
            let _ = run_adaptive(&cfg, &scenario, &mut probe);
            let est = probe.estimate().unwrap_or_else(|| {
                panic!("probe found no estimate for {law:?}");
            });
            assert_eq!(est.law.family(), law.family(), "misidentified {law:?}");
            assert!(
                (est.law.parameter() - law.parameter()).abs() < 0.02,
                "{law:?} parameter off: {}",
                est.law.parameter()
            );
        }
    }

    #[test]
    fn modulator_quiet_phase_dodges_the_terminable_verdict() {
        // Sprint-like modulation that goes fully quiet at its (correct) N*
        // guess: with fpr = 0 the quiet attacker is never flagged, so it
        // survives the whole horizon while still progressing pre-N*.
        let cfg = config(15);
        let mut strat = IntensityModulator::new(1.0, 0.2, 0.8, 15, 0.0);
        let out = run_adaptive(
            &cfg,
            &AdaptiveScenario::new(DetectorModel::new(0.9, 0.0).unwrap(), 80),
            &mut strat,
        );
        assert_eq!(out.terminated_at, None);
        assert!(out.progress > 0.0);
    }

    #[test]
    fn modulator_calibration_keeps_a_valid_hysteresis_band() {
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.25 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.3 },
        ] {
            let mut m = IntensityModulator::new(1.0, 0.3, 0.8, 30, 0.0);
            m.calibrate(&LawEstimate {
                law,
                residual: 0.0,
                responses: 3,
            });
            assert!(m.pause_below <= m.resume_above);
            assert!((0.0..=1.0).contains(&m.pause_below));
            assert!((0.0..=1.0).contains(&m.resume_above));
        }
    }

    #[test]
    fn mass_rider_below_the_throttle_rung_is_never_throttled_or_killed() {
        use crate::engine::FusionConfig;
        use crate::monitor::{EscalationLadder, EscalationLevel};
        let ladder = EscalationLadder::graduated();
        let cfg = EngineConfig::builder()
            .measurements_required(15)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .fusion(FusionConfig {
                ladder,
                ..FusionConfig::default()
            })
            .build()
            .unwrap();
        let detector = DetectorModel::new(0.9, 0.04).unwrap();
        let mut rider = MassRider::new(
            detector,
            ladder.ride_below(EscalationLevel::Throttle, 0.02),
            u64::MAX,
            0.0,
        );
        let out = run_adaptive_mass(&cfg, &AdaptiveScenario::new(detector, 100), &mut rider);
        // Expected confidence 0.58 with zero jitter: the ladder sits in its
        // observe band forever — full share, no kill, progress every epoch.
        assert_eq!(out.terminated_at, None);
        assert_eq!(out.active_epochs, 100);
        assert!(
            (out.progress - out.unimpeded).abs() < 1e-9,
            "rider was throttled: {} vs {}",
            out.progress,
            out.unimpeded
        );
        assert!(out.progress > 0.5 * 100.0 * rider.effort_for(rider.target_mass) - 1.0);
    }

    #[test]
    fn mass_rider_effort_inverts_the_detector_response() {
        let d = DetectorModel::new(0.9, 0.04).unwrap();
        let rider = MassRider::new(d, 0.5, u64::MAX, 0.0);
        assert_eq!(rider.effort_for(0.9), 1.0);
        assert_eq!(rider.effort_for(0.04), 0.0);
        let e = rider.effort_for(0.47);
        assert!((d.detection_probability(e) - 0.47).abs() < 1e-12);
        // A flat detector leaves no dial: full effort dominates.
        let flat = MassRider::new(DetectorModel::new(0.3, 0.3).unwrap(), 0.5, u64::MAX, 0.0);
        assert_eq!(flat.effort_for(0.5), 1.0);
    }

    #[test]
    fn fit_rejects_degenerate_observation_sets() {
        assert!(fit_throttle_law(&[]).is_none());
        let one = ShareResponse {
            before: 1.0,
            after: 0.9,
            delta: 1.0,
        };
        assert!(fit_throttle_law(&[one]).is_none());
        // Rising, NaN-tainted and zero-share observations are filtered out.
        let junk = [
            ShareResponse {
                before: 0.5,
                after: 0.9,
                delta: 1.0,
            },
            ShareResponse {
                before: f64::NAN,
                after: 0.5,
                delta: 2.0,
            },
            ShareResponse {
                before: 0.0,
                after: -0.1,
                delta: 3.0,
            },
        ];
        assert!(fit_throttle_law(&junk).is_none());
    }

    // ---- edge cases: detector extremes, zero floors, boundary thresholds,
    //      short horizons ----

    #[test]
    fn blind_detector_tpr_zero_never_terminates_and_stays_finite() {
        let cfg = config(10);
        let out = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::AlwaysActive,
                DetectorModel::new(0.0, 0.0).unwrap(),
                50,
            ),
        );
        assert_eq!(out.terminated_at, None);
        assert_eq!(out.progress, 50.0);
        assert!(out.slowdown_percent().is_finite());
        assert_eq!(out.slowdown_percent(), 0.0);
    }

    #[test]
    fn paranoid_detector_fpr_one_kills_even_a_fully_dormant_attacker() {
        // fpr = 1: every dormant epoch is (wrongly) flagged malicious, so
        // the dormant process is terminated right after N* with zero
        // attacker progress — the wrongful-termination worst case.
        let cfg = config(10);
        let out = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::Sprint { active_epochs: 0 },
                DetectorModel::new(1.0, 1.0).unwrap(),
                50,
            ),
        );
        assert_eq!(out.terminated_at, Some(11));
        assert_eq!(out.progress, 0.0);
        assert_eq!(out.unimpeded, 0.0);
        assert!(out.slowdown_percent().is_finite());
    }

    #[test]
    fn inverted_detector_rewards_full_effort() {
        // tpr = 0, fpr = 1: attacking is the *safe* action. The graded path
        // must stay finite and unterminated at constant full effort.
        let cfg = config(10);
        let out = run_adaptive(
            &cfg,
            &AdaptiveScenario::new(DetectorModel::new(0.0, 1.0).unwrap(), 40),
            &mut ConstantIntensity(1.0),
        );
        assert_eq!(out.terminated_at, None);
        assert_eq!(out.progress, 40.0);
    }

    #[test]
    fn zero_floor_percent_point_recovers_from_an_exact_zero_share() {
        let cfg = EngineConfig::builder()
            .measurements_required(60)
            .actuator(ShareActuator::cpu_percent_point(0.25, 0.0))
            .build()
            .unwrap();
        let out = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::ThreatAdaptive { resume_above: 0.95 },
                DetectorModel::perfect(),
                50,
            ),
        );
        assert!(out.progress.is_finite());
        assert!(out.progress >= 0.0);
        assert!(out.progress <= out.unimpeded + 1e-9);
    }

    #[test]
    fn zero_floor_scheduler_weight_can_hit_exact_zero_without_poisoning() {
        // With a zero floor the multiplicative Eq. 8 law reaches share 0.0
        // exactly once γ·ΔT ≥ 1 (the clamp), after which multiplicative
        // recovery cannot lift it — the attacker is starved, not NaN'd.
        let cfg = EngineConfig::builder()
            .measurements_required(40)
            .actuator(ShareActuator::scheduler_weight(0.1, 0.0))
            .build()
            .unwrap();
        let out = run_evasion(
            &cfg,
            &EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 35),
        );
        assert!(out.progress.is_finite());
        assert!(out.progress > 0.0);
        assert_eq!(out.terminated_at, None); // horizon < N*
        assert!(out.slowdown_percent().is_finite());
    }

    #[test]
    fn threat_adaptive_resume_at_zero_is_exactly_always_active() {
        let cfg = config(20);
        let detector = DetectorModel::new(0.9, 0.04).unwrap();
        for seed in [0u64, 7, 99] {
            let zero = run_evasion(
                &cfg,
                &EvasionScenario::new(
                    AttackerStrategy::ThreatAdaptive { resume_above: 0.0 },
                    detector,
                    80,
                )
                .with_seed(seed),
            );
            let always = run_evasion(
                &cfg,
                &EvasionScenario::new(AttackerStrategy::AlwaysActive, detector, 80).with_seed(seed),
            );
            assert_eq!(zero, always);
        }
    }

    #[test]
    fn threat_adaptive_resume_at_one_only_works_at_full_share() {
        let cfg = config(20);
        let out = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::ThreatAdaptive { resume_above: 1.0 },
                DetectorModel::perfect(),
                80,
            ),
        );
        // Every active epoch happened at share 1.0 (before the response
        // lands), so progress counts full-share epochs…
        assert!(out.progress.is_finite());
        assert!(out.progress <= out.unimpeded + 1e-9);
        // … and the sawtooth still cannot postpone the terminable state.
        assert!(out.active_epochs < 80);
    }

    #[test]
    fn horizon_shorter_than_n_star_never_terminates() {
        let cfg = config(30);
        let fixed = run_evasion(
            &cfg,
            &EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 10),
        );
        assert_eq!(fixed.terminated_at, None);
        assert!(fixed.progress > 0.0);
        let mut strat = IntensityModulator::new(1.0, 0.2, 0.8, 30, 0.0);
        let graded = run_adaptive(
            &cfg,
            &AdaptiveScenario::new(DetectorModel::perfect(), 10),
            &mut strat,
        );
        assert_eq!(graded.terminated_at, None);
        assert!(graded.progress.is_finite());
    }

    #[test]
    fn nan_intensity_from_a_strategy_is_sanitised_to_dormant() {
        #[derive(Debug)]
        struct Broken;
        impl AdaptiveStrategy for Broken {
            fn intensity(&mut self, _view: &AttackerView) -> f64 {
                f64::NAN
            }
        }
        let cfg = config(10);
        let out = run_adaptive(
            &cfg,
            &AdaptiveScenario::new(DetectorModel::perfect(), 30),
            &mut Broken,
        );
        assert_eq!(out.progress, 0.0);
        assert_eq!(out.unimpeded, 0.0);
        assert_eq!(out.active_epochs, 0);
        assert_eq!(out.terminated_at, None);
    }
}
