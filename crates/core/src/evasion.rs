//! Adaptive attackers that try to *game* the response framework.
//!
//! The paper's discussion (Section VII) scopes adversarial attacks on the
//! **detector** out; this module studies the complementary question the
//! response layer itself raises: can an attacker exploit Valkyrie's
//! *compensation* mechanism — behave maliciously, pause until the threat
//! index decays, and resume — to make progress indefinitely without being
//! terminated?
//!
//! The answer, quantified by [`run_evasion`] and the `evasion` experiment
//! binary, is that duty-cycling is a losing trade under Valkyrie:
//!
//! * every dormant epoch costs the attacker wall-clock time but still counts
//!   toward `N*`, so the terminable verdict arrives on schedule;
//! * in the terminable state each active epoch is a Bernoulli trial against
//!   the detector's true-positive rate, bounding the expected remaining
//!   progress by [`expected_terminable_progress`];
//! * pre-`N*` progress is throttled as soon as the penalty outpaces the
//!   compensation, and steeper penalty functions (`F_p`) shrink the viable
//!   duty-cycle window — the hardening knob the ablation sweep exercises.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::evasion::{AttackerStrategy, DetectorModel, EvasionScenario, run_evasion};
//! use valkyrie_core::{EngineConfig, ShareActuator};
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(15)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()?;
//! let scenario = EvasionScenario::new(
//!     AttackerStrategy::DutyCycle { active: 2, dormant: 3 },
//!     DetectorModel::perfect(),
//!     60,
//! );
//! let outcome = run_evasion(&config, &scenario);
//! // The duty-cycling attacker is still terminated and makes far less
//! // progress than it would unimpeded.
//! assert!(outcome.terminated_at.is_some());
//! assert!(outcome.progress < outcome.unimpeded);
//! # Ok::<(), valkyrie_core::ValkyrieError>(())
//! ```

use crate::actuator::Actuator;
use crate::engine::{Action, EngineConfig, ValkyrieEngine};
use crate::resource::ProcessId;
use crate::threat::Classification;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the attacker can observe about its own situation when deciding
/// whether to attack in the next epoch.
///
/// The fields model a *strong* adversary: a real attack cannot read its
/// threat index, but it can estimate `cpu_share` from its own progress rate
/// (self-timing), which is why [`AttackerStrategy::ThreatAdaptive`] keys off
/// the share rather than the index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerView {
    /// Epoch index about to start (1-based).
    pub epoch: u64,
    /// CPU share granted in the previous epoch (1.0 = unthrottled).
    pub cpu_share: f64,
    /// Measurements the detector has accumulated so far.
    pub measurements: u64,
}

/// An evasion strategy: when does the attacker do malicious work?
///
/// Dormant epochs make no attack progress and (up to the detector's
/// false-positive rate) are classified benign, letting the compensation
/// mechanism decay the threat index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerStrategy {
    /// Attack every epoch (the paper's case-study attacks).
    AlwaysActive,
    /// Attack for `active` epochs, sleep for `dormant`, repeat.
    DutyCycle {
        /// Consecutive attacking epochs per period.
        active: u32,
        /// Consecutive dormant epochs per period.
        dormant: u32,
    },
    /// Attack flat-out for the first `active_epochs` epochs, then go dormant
    /// forever (hit-and-run inside one measurement cycle).
    Sprint {
        /// Number of leading attack epochs.
        active_epochs: u64,
    },
    /// Self-timing sawtooth: pause while the observed CPU share is below
    /// `resume_above`, attack once recovery has raised it back.
    ThreatAdaptive {
        /// Attack only when the previous epoch's CPU share is at least this.
        resume_above: f64,
    },
}

impl AttackerStrategy {
    /// Decides whether the attacker works this epoch.
    pub fn is_active(&self, view: &AttackerView) -> bool {
        match *self {
            AttackerStrategy::AlwaysActive => true,
            AttackerStrategy::DutyCycle { active, dormant } => {
                let period = u64::from(active) + u64::from(dormant);
                if period == 0 {
                    return false;
                }
                (view.epoch - 1) % period < u64::from(active)
            }
            AttackerStrategy::Sprint { active_epochs } => view.epoch <= active_epochs,
            AttackerStrategy::ThreatAdaptive { resume_above } => view.cpu_share >= resume_above,
        }
    }
}

/// A stochastic model of the augmented detector, reduced to the two rates
/// that matter to the response layer.
///
/// # Examples
///
/// ```
/// use valkyrie_core::evasion::DetectorModel;
/// let d = DetectorModel::new(0.95, 0.04).unwrap();
/// assert_eq!(d.tpr(), 0.95);
/// assert!(DetectorModel::new(1.5, 0.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorModel {
    tpr: f64,
    fpr: f64,
}

impl DetectorModel {
    /// A detector with true-positive rate `tpr` (malicious verdict while the
    /// attacker works) and false-positive rate `fpr` (malicious verdict
    /// while it sleeps).
    ///
    /// # Errors
    ///
    /// Returns [`crate::ValkyrieError::InvalidConfig`] when either rate is
    /// outside `[0, 1]` or not finite.
    pub fn new(tpr: f64, fpr: f64) -> Result<Self, crate::ValkyrieError> {
        for (name, v) in [("tpr", tpr), ("fpr", fpr)] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(crate::ValkyrieError::InvalidConfig(format!(
                    "{name} must lie in [0, 1], got {v}"
                )));
            }
        }
        Ok(Self { tpr, fpr })
    }

    /// The ideal detector: always right (`tpr = 1`, `fpr = 0`).
    pub fn perfect() -> Self {
        Self { tpr: 1.0, fpr: 0.0 }
    }

    /// True-positive rate.
    pub fn tpr(&self) -> f64 {
        self.tpr
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        self.fpr
    }

    /// Samples one epoch's inference given the attacker's behaviour.
    pub fn classify<R: Rng>(&self, active: bool, rng: &mut R) -> Classification {
        let p = if active { self.tpr } else { self.fpr };
        if rng.gen::<f64>() < p {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

/// One evasion experiment: a strategy, a detector model and a horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionScenario {
    strategy: AttackerStrategy,
    detector: DetectorModel,
    horizon: u64,
    seed: u64,
}

impl EvasionScenario {
    /// A scenario observed for `horizon` epochs with the default seed.
    pub fn new(strategy: AttackerStrategy, detector: DetectorModel, horizon: u64) -> Self {
        Self {
            strategy,
            detector,
            horizon,
            seed: 0x56414C4B, // "VALK"
        }
    }

    /// Replaces the RNG seed (the replay is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The attacker strategy under test.
    pub fn strategy(&self) -> AttackerStrategy {
        self.strategy
    }

    /// The detector model in use.
    pub fn detector(&self) -> DetectorModel {
        self.detector
    }

    /// Number of epochs the replay covers.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }
}

/// The result of replaying an evasion scenario with and without Valkyrie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionOutcome {
    /// Attack progress achieved under Valkyrie (1.0 = one unthrottled
    /// active epoch).
    pub progress: f64,
    /// Progress the same strategy achieves with no response framework.
    pub unimpeded: f64,
    /// Epoch at which the attacker was terminated, if it was.
    pub terminated_at: Option<u64>,
    /// Number of epochs in which the attacker actually worked (pre-
    /// termination, under Valkyrie).
    pub active_epochs: u64,
}

impl EvasionOutcome {
    /// Slowdown relative to the unimpeded run, in percent (Eq. 4 semantics).
    ///
    /// 100 % means the attack made no progress at all; 0 % means Valkyrie
    /// did not slow it down.
    pub fn slowdown_percent(&self) -> f64 {
        if self.unimpeded <= 0.0 {
            0.0
        } else {
            (1.0 - self.progress / self.unimpeded) * 100.0
        }
    }
}

/// Replays an [`EvasionScenario`] through a [`ValkyrieEngine`] built from
/// `config` and returns the attacker's progress with and without Valkyrie.
///
/// Each epoch the strategy decides whether to work; the detector model
/// samples an inference; the engine updates the threat index and resource
/// shares. An active epoch contributes the granted CPU share to `progress`
/// (attack work rate is CPU-bound, as in every case study of Section VI);
/// dormant epochs contribute nothing. Termination stops the attack for good.
///
/// The unimpeded counterfactual runs the *same* activity sequence at full
/// share with no termination, so the comparison isolates the response
/// framework's effect.
pub fn run_evasion<A: Actuator + Clone>(
    config: &EngineConfig<A>,
    scenario: &EvasionScenario,
) -> EvasionOutcome {
    let mut engine = ValkyrieEngine::new(config.clone());
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let pid = ProcessId(1);

    let mut progress = 0.0;
    let mut unimpeded = 0.0;
    let mut active_epochs = 0;
    let mut terminated_at = None;
    let mut cpu_share = 1.0;
    let mut measurements = 0;

    for epoch in 1..=scenario.horizon {
        let view = AttackerView {
            epoch,
            cpu_share,
            measurements,
        };
        let active = scenario.strategy.is_active(&view);
        if active {
            // The counterfactual attacker follows the same duty cycle but is
            // never throttled or terminated.
            unimpeded += 1.0;
        }
        if terminated_at.is_some() {
            continue;
        }

        let inference = scenario.detector.classify(active, &mut rng);
        let response = engine.observe(pid, inference);
        measurements += 1;
        if response.action == Action::Terminate {
            terminated_at = Some(epoch);
            continue;
        }
        cpu_share = response.resources.cpu;
        if active {
            progress += cpu_share;
            active_epochs += 1;
        }
    }

    EvasionOutcome {
        progress,
        unimpeded,
        terminated_at,
        active_epochs,
    }
}

/// Expected progress (in unthrottled-epoch units) an always-active attacker
/// gains *after* reaching the terminable state, for a detector with
/// true-positive rate `tpr`.
///
/// In the terminable state every active epoch is an independent chance of
/// termination; the termination epoch itself yields no progress, so the
/// expectation is the mean of a geometric distribution minus the killing
/// trial: `(1 − tpr) / tpr`. A detector that is always right leaves zero
/// post-efficacy progress; a coin-flip detector leaves one epoch on average.
///
/// # Examples
///
/// ```
/// use valkyrie_core::evasion::expected_terminable_progress;
/// assert_eq!(expected_terminable_progress(1.0), 0.0);
/// assert_eq!(expected_terminable_progress(0.5), 1.0);
/// assert!(expected_terminable_progress(0.0).is_infinite());
/// ```
pub fn expected_terminable_progress(tpr: f64) -> f64 {
    let tpr = tpr.clamp(0.0, 1.0);
    if tpr == 0.0 {
        f64::INFINITY
    } else {
        (1.0 - tpr) / tpr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::EngineConfig;
    use crate::state::ProcessState;

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    #[test]
    fn always_active_attacker_is_terminated_right_after_n_star() {
        let scenario =
            EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 40);
        let out = run_evasion(&config(15), &scenario);
        assert_eq!(out.terminated_at, Some(16));
        assert!(out.progress < out.unimpeded);
        assert!(out.slowdown_percent() > 70.0, "{}", out.slowdown_percent());
    }

    #[test]
    fn dormant_attacker_makes_no_progress_and_survives() {
        let scenario = EvasionScenario::new(
            AttackerStrategy::Sprint { active_epochs: 0 },
            DetectorModel::perfect(),
            50,
        );
        let out = run_evasion(&config(10), &scenario);
        assert_eq!(out.progress, 0.0);
        assert_eq!(out.unimpeded, 0.0);
        assert_eq!(out.terminated_at, None);
        assert_eq!(out.slowdown_percent(), 0.0);
    }

    #[test]
    fn duty_cycle_is_terminated_at_first_active_terminable_epoch() {
        // 1 active, 4 dormant; N* = 10. Epochs 1, 6, 11, ... are active.
        // The terminable state is reached at measurement 10; the next
        // *active* epoch (11) draws a malicious verdict and dies.
        let scenario = EvasionScenario::new(
            AttackerStrategy::DutyCycle {
                active: 1,
                dormant: 4,
            },
            DetectorModel::perfect(),
            60,
        );
        let out = run_evasion(&config(10), &scenario);
        assert_eq!(out.terminated_at, Some(11));
        // Two active epochs survived (1 and 6), both heavily compensated in
        // between, so progress stays below 2 full epochs.
        assert_eq!(out.active_epochs, 2);
        assert!(out.progress <= 2.0);
    }

    #[test]
    fn sprint_inside_one_cycle_is_throttled_not_free() {
        // Attack hard for 5 epochs, then hide. The sprint is throttled from
        // epoch 2 on, and the attacker still faces the terminable verdict.
        let scenario = EvasionScenario::new(
            AttackerStrategy::Sprint { active_epochs: 5 },
            DetectorModel::perfect(),
            30,
        );
        let out = run_evasion(&config(15), &scenario);
        assert_eq!(out.unimpeded, 5.0);
        assert!(
            out.progress < 5.0 * 0.8,
            "sprint was barely throttled: {}",
            out.progress
        );
        // All-dormant afterwards: classified benign, never terminated.
        assert_eq!(out.terminated_at, None);
    }

    #[test]
    fn threat_adaptive_sawtooth_is_bounded_by_duty_cycle() {
        let cfg = config(20);
        let sawtooth = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::ThreatAdaptive { resume_above: 0.95 },
                DetectorModel::perfect(),
                100,
            ),
        );
        let always = run_evasion(
            &cfg,
            &EvasionScenario::new(
                AttackerStrategy::AlwaysActive,
                DetectorModel::perfect(),
                100,
            ),
        );
        // Dormant epochs still count toward N*, so the sawtooth cannot
        // postpone the terminable verdict …
        assert_eq!(sawtooth.terminated_at, always.terminated_at);
        // … and it pays for the evasion with a halved duty cycle.
        assert!(sawtooth.active_epochs < 15);
        assert!(sawtooth.progress < 0.35 * 100.0);
    }

    #[test]
    fn imperfect_detector_leaves_geometric_tail() {
        // With tpr < 1 the attacker survives some terminable epochs; the
        // empirical mean should approach (1-p)/p across seeds.
        let cfg = config(5);
        let tpr = 0.5;
        let mut total = 0.0;
        let trials = 400;
        for seed in 0..trials {
            let scenario = EvasionScenario::new(
                AttackerStrategy::AlwaysActive,
                DetectorModel::new(tpr, 0.0).unwrap(),
                400,
            )
            .with_seed(seed);
            let out = run_evasion(&cfg, &scenario);
            // Progress after the restore at N* is at full share; subtract
            // the (throttled) pre-N* part by measuring terminable survival.
            let t = out.terminated_at.expect("tpr>0 should terminate");
            total += (t - 1 - 5) as f64; // epochs survived past N*
        }
        let mean = total / trials as f64;
        let expect = expected_terminable_progress(tpr);
        assert!(
            (mean - expect).abs() < 0.25,
            "mean {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn steeper_penalty_reduces_duty_cycle_progress() {
        // Hardening: exponential penalty throttles the sawtooth harder than
        // the incremental one for the same compensation.
        let inc = EngineConfig::builder()
            .measurements_required(30)
            .penalty(crate::AssessmentFn::incremental())
            .compensation(crate::AssessmentFn::incremental())
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let exp = EngineConfig::builder()
            .measurements_required(30)
            .penalty(crate::AssessmentFn::exponential(2.0))
            .compensation(crate::AssessmentFn::incremental())
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let scenario = EvasionScenario::new(
            AttackerStrategy::DutyCycle {
                active: 3,
                dormant: 3,
            },
            DetectorModel::perfect(),
            30,
        );
        let p_inc = run_evasion(&inc, &scenario).progress;
        let p_exp = run_evasion(&exp, &scenario).progress;
        assert!(p_exp < p_inc, "exp {p_exp} !< inc {p_inc}");
    }

    #[test]
    fn termination_state_is_reflected_in_engine() {
        let cfg = config(3);
        let mut engine = ValkyrieEngine::new(cfg.clone());
        let pid = ProcessId(1);
        for _ in 0..4 {
            engine.observe(pid, Classification::Malicious);
        }
        assert_eq!(engine.state(pid), Some(ProcessState::Terminated));
    }

    #[test]
    fn zero_period_duty_cycle_is_never_active() {
        let s = AttackerStrategy::DutyCycle {
            active: 0,
            dormant: 0,
        };
        let view = AttackerView {
            epoch: 1,
            cpu_share: 1.0,
            measurements: 0,
        };
        assert!(!s.is_active(&view));
    }

    #[test]
    fn scenario_accessors_round_trip() {
        let s = EvasionScenario::new(AttackerStrategy::AlwaysActive, DetectorModel::perfect(), 7)
            .with_seed(9);
        assert_eq!(s.horizon(), 7);
        assert_eq!(s.detector().tpr(), 1.0);
        assert_eq!(s.strategy(), AttackerStrategy::AlwaysActive);
    }
}
