//! # Valkyrie — a post-detection response framework
//!
//! This crate implements the primary contribution of *"Valkyrie: A Response
//! Framework to Augment Runtime Detection of Time-Progressive Attacks"*
//! (DSN 2025): a response layer that sits **behind** any runtime detector and
//! decides, epoch by epoch, how to react to its inferences.
//!
//! Instead of terminating a process the moment a detector flags it (which
//! destroys falsely-accused benign programs), Valkyrie:
//!
//! 1. tracks a bounded **threat index** per process driven by configurable
//!    penalty/compensation assessment functions ([`threat`], Algorithm 1);
//! 2. walks each process through the `normal → suspicious → terminable →
//!    terminated` state machine of the paper's Fig. 3 ([`state`]);
//! 3. throttles the system resources the process depends on via **actuator
//!    functions** ([`actuator`], Eq. 8) while the detector accumulates the
//!    `N*` measurements required to meet a user-specified **detection
//!    efficacy** ([`efficacy`], Section IV-A);
//! 4. terminates the process only in the *terminable* state, and fully
//!    restores resources if the final classification is benign.
//!
//! The expected impact on attacks and on falsely-classified benign programs
//! is quantified by the **slowdown model** ([`slowdown`], Eqs. 2–4).
//!
//! Beyond the paper, the crate grows a **scaling tier**: the per-process
//! logic lives in an [`EngineShard`], and a [`ShardedEngine`] ([`sharded`])
//! partitions thousands of processes across shards behind a batched,
//! thread-parallel `observe_batch` / `tick` API with identical Algorithm 1
//! semantics. Two [`ExecutionMode`]s drive the fan-out: per-tick scoped
//! threads (the default) or a persistent actor-style worker pool
//! ([`pool`]) that owns the shards on long-lived threads and amortises the
//! spawns across the engine's lifetime. The [`ingest`] tier decouples the
//! two halves of Fig. 2 in time: detector threads publish classifications
//! into bounded per-shard queues ([`IngestPublisher`], with explicit
//! [`OverflowPolicy`] semantics) and the epoch driver drains whatever has
//! arrived with [`ShardedEngine::drain_tick`], so a slow or wedged
//! detector can no longer stall the response tick.
//!
//! # Quick start
//!
//! ```
//! use valkyrie_core::prelude::*;
//!
//! // Detector needs 15 measurements to reach the required efficacy.
//! let config = EngineConfig::builder()
//!     .measurements_required(15)
//!     .penalty(AssessmentFn::incremental())
//!     .compensation(AssessmentFn::incremental())
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .expect("valid config");
//! let mut engine = ValkyrieEngine::new(config);
//!
//! let pid = ProcessId(1);
//! // An attack that is flagged every epoch is throttled, then terminated.
//! for _ in 0..15 {
//!     engine.observe(pid, Classification::Malicious);
//! }
//! let resp = engine.observe(pid, Classification::Malicious);
//! assert_eq!(resp.state, ProcessState::Terminated);
//! ```

pub mod actuator;
pub mod baselines;
pub mod efficacy;
pub mod engine;
pub mod error;
pub mod evasion;
pub mod fleet;
pub mod hash;
pub mod ingest;
pub mod migration;
pub mod monitor;
pub mod pool;
pub mod resource;
pub mod sharded;
pub mod slowdown;
pub mod state;
pub mod telemetry;
pub mod threat;

pub use actuator::{Actuator, CompositeActuator, LawFamily, ShareActuator, ThrottleLaw};
pub use baselines::{ConsecutiveTermination, DramRefresh, PriorityReduction, WarningOnly};
pub use efficacy::{EfficacyCurve, EfficacyPoint, EfficacySpec};
pub use engine::{
    Action, EngineConfig, EngineConfigBuilder, EngineResponse, EngineShard, FusionConfig,
    ValkyrieEngine,
};
pub use error::ValkyrieError;
pub use evasion::{
    fit_throttle_law, run_adaptive, run_adaptive_mass, run_evasion, AdaptiveScenario,
    AdaptiveStrategy, AttackerStrategy, ConstantIntensity, DetectorModel, EvasionOutcome,
    EvasionScenario, IntensityModulator, LawEstimate, LawProbe, MassRider, PeriodicIntensity,
    StepDown,
};
pub use fleet::{FleetEngine, FleetPublisher};
pub use ingest::{
    CoalesceKey, IngestDefense, IngestPublisher, IngestQueues, OverflowPolicy, ThreatHints,
};
pub use migration::{migration_progress, MigrationPolicy};
pub use monitor::{Directive, EscalationLadder, EscalationLevel, Monitor, StepReport};
pub use pool::ShardPool;
pub use resource::{ProcessId, ResourceKind, ResourceVector};
pub use sharded::{host_parallelism, ExecutionMode, ShardedEngine};
pub use slowdown::{simulate_response, slowdown_percent, ResponseTrace};
pub use state::ProcessState;
pub use telemetry::{FusionStats, IngestStats, LogEntry, ProcessSummary, ResponseLog};
pub use threat::{stale_weight, AssessmentFn, Classification, Evidence, ThreatIndex, Verdict};

/// Convenient glob import of the crate's primary types.
pub mod prelude {
    pub use crate::actuator::{Actuator, CompositeActuator, LawFamily, ShareActuator, ThrottleLaw};
    pub use crate::efficacy::{EfficacyCurve, EfficacyPoint, EfficacySpec};
    pub use crate::engine::{
        Action, EngineConfig, EngineConfigBuilder, EngineResponse, EngineShard, FusionConfig,
        ValkyrieEngine,
    };
    pub use crate::error::ValkyrieError;
    pub use crate::fleet::{FleetEngine, FleetPublisher};
    pub use crate::ingest::{IngestDefense, IngestPublisher, OverflowPolicy, ThreatHints};
    pub use crate::monitor::{Directive, EscalationLadder, EscalationLevel, Monitor, StepReport};
    pub use crate::pool::ShardPool;
    pub use crate::resource::{ProcessId, ResourceKind, ResourceVector};
    pub use crate::sharded::{ExecutionMode, ShardedEngine};
    pub use crate::slowdown::{simulate_response, slowdown_percent};
    pub use crate::state::ProcessState;
    pub use crate::telemetry::{FusionStats, IngestStats};
    pub use crate::threat::{AssessmentFn, Classification, Evidence, ThreatIndex, Verdict};
}
