//! Non-throttling post-detection baselines from the paper's Table I /
//! Section III, for head-to-head comparison with Valkyrie.
//!
//! * [`ConsecutiveTermination`] — Mushtaq et al. \[48\] terminate a process
//!   once it is classified malicious `k` times *consecutively* (the paper
//!   discusses `k = 3`, which reduced wrongly-terminated benign processes
//!   "from 5 % to under 3 %"). Satisfies R1, fails R2: benign processes are
//!   still killed, just less often, and the choice of `k` "is arbitrary and
//!   can not be generalized across detectors".
//! * [`WarningOnly`] — Kulah et al. \[38\] merely alert the user. Fails R1
//!   (the attack keeps running at full speed) and leaves R2 to the human.
//! * [`PriorityReduction`] — Payer \[53\] offers a reduction of the execution
//!   priority instead of termination. Satisfies R2 but "may not satisfy R1
//!   as it can allow attacks to execute endlessly".
//! * [`DramRefresh`] — Aweke et al. \[14\] / Yağlıkçı et al. \[65\] respond to a
//!   detected rowhammer by refreshing the victim rows. Satisfies R1 *and*
//!   R2 — but only for rowhammer ("the response specifically targets
//!   rowhammer and is not applicable to other attacks").

use crate::threat::Classification;

/// Terminate after `k` consecutive malicious classifications.
///
/// # Examples
///
/// ```
/// use valkyrie_core::baselines::ConsecutiveTermination;
/// use valkyrie_core::Classification::{self, *};
/// let outcome = ConsecutiveTermination::new(3)
///     .run(&[Malicious, Malicious, Benign, Malicious, Malicious, Malicious, Benign]);
/// assert_eq!(outcome.terminated_at, Some(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsecutiveTermination {
    k: u32,
}

/// The result of replaying an inference trace through a baseline policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Per-epoch progress (1.0 per epoch until termination, 0.0 after).
    pub progress: Vec<f64>,
    /// Epoch index at which the process was terminated, if it was.
    pub terminated_at: Option<usize>,
}

impl BaselineOutcome {
    /// Total progress achieved.
    pub fn total_progress(&self) -> f64 {
        self.progress.iter().sum()
    }

    /// Whether the process survived the whole trace.
    pub fn survived(&self) -> bool {
        self.terminated_at.is_none()
    }
}

impl ConsecutiveTermination {
    /// A policy requiring `k ≥ 1` consecutive malicious classifications.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "need at least one classification to terminate");
        Self { k }
    }

    /// The configured streak length.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Replays an inference trace; the process runs at full speed until the
    /// k-th consecutive malicious inference terminates it.
    pub fn run(&self, inferences: &[Classification]) -> BaselineOutcome {
        let mut streak = 0u32;
        let mut progress = Vec::with_capacity(inferences.len());
        let mut terminated_at = None;
        for (i, c) in inferences.iter().enumerate() {
            if terminated_at.is_some() {
                progress.push(0.0);
                continue;
            }
            streak = if c.is_malicious() { streak + 1 } else { 0 };
            if streak >= self.k {
                terminated_at = Some(i);
                progress.push(0.0);
            } else {
                progress.push(1.0);
            }
        }
        BaselineOutcome {
            progress,
            terminated_at,
        }
    }

    /// Probability that a benign process with per-epoch false-positive rate
    /// `p` survives `n` epochs (no k-streak occurs), computed by dynamic
    /// programming over streak lengths.
    pub fn benign_survival_probability(&self, p: f64, n: usize) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let k = self.k as usize;
        // state[s] = probability of being alive with current streak s.
        let mut state = vec![0.0_f64; k];
        state[0] = 1.0;
        for _ in 0..n {
            let mut next = vec![0.0_f64; k];
            for (s, &prob) in state.iter().enumerate() {
                if prob == 0.0 {
                    continue;
                }
                // Benign epoch resets the streak.
                next[0] += prob * (1.0 - p);
                // Malicious epoch extends it; reaching k kills the process.
                if s + 1 < k {
                    next[s + 1] += prob * p;
                }
            }
            state = next;
        }
        state.iter().sum()
    }
}

/// The warning-only response: nothing is ever throttled or terminated.
///
/// # Examples
///
/// ```
/// use valkyrie_core::baselines::WarningOnly;
/// use valkyrie_core::Classification::{self, *};
/// let outcome = WarningOnly.run(&[Malicious, Benign, Malicious]);
/// assert!(outcome.survived());
/// assert_eq!(outcome.total_progress(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarningOnly;

impl WarningOnly {
    /// Replays a trace: full progress, never terminated.
    pub fn run(&self, inferences: &[Classification]) -> BaselineOutcome {
        BaselineOutcome {
            progress: vec![1.0; inferences.len()],
            terminated_at: None,
        }
    }

    /// Number of alerts a vigilant user would have to triage.
    pub fn alerts(&self, inferences: &[Classification]) -> usize {
        inferences.iter().filter(|c| c.is_malicious()).count()
    }
}

/// The priority-reduction response of Payer \[53\]: on the first malicious
/// classification, the process's execution priority is lowered — once — and
/// it then runs at a reduced rate forever. It is never terminated.
///
/// This is the permanent-nice-level counterpart to Valkyrie's *graduated*
/// throttling: benign false positives are punished for the rest of their
/// run (partial R2), and an attack still executes endlessly at the reduced
/// rate (R1 fails for any attack whose objective has no deadline).
///
/// # Examples
///
/// ```
/// use valkyrie_core::baselines::PriorityReduction;
/// use valkyrie_core::Classification::{self, *};
/// let outcome = PriorityReduction::new(0.25).run(&[Benign, Malicious, Benign, Benign]);
/// assert!(outcome.survived());
/// assert_eq!(outcome.total_progress(), 1.0 + 0.25 * 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityReduction {
    reduced_share: f64,
}

impl PriorityReduction {
    /// A policy that pins the process at `reduced_share` of its normal
    /// progress rate after the first detection (clamped into `[0, 1]`).
    pub fn new(reduced_share: f64) -> Self {
        Self {
            reduced_share: reduced_share.clamp(0.0, 1.0),
        }
    }

    /// The post-detection progress rate.
    pub fn reduced_share(&self) -> f64 {
        self.reduced_share
    }

    /// Replays an inference trace: full speed until the first malicious
    /// classification, `reduced_share` per epoch from then on, no recovery
    /// and no termination.
    pub fn run(&self, inferences: &[Classification]) -> BaselineOutcome {
        let mut reduced = false;
        let progress = inferences
            .iter()
            .map(|c| {
                let p = if reduced { self.reduced_share } else { 1.0 };
                if c.is_malicious() {
                    reduced = true;
                    // The detection epoch itself already runs de-prioritised.
                    return self.reduced_share;
                }
                p
            })
            .collect();
        BaselineOutcome {
            progress,
            terminated_at: None,
        }
    }
}

/// The DRAM-refresh response (ANVIL \[14\] / BlockHammer \[65\] style): every
/// malicious classification triggers a targeted refresh of the victim rows,
/// wiping the attacker's *accumulated* disturbance. The attack only lands a
/// bit flip if it can hammer for `flip_threshold` consecutive undetected
/// epochs.
///
/// This response satisfies both R1 and R2 — benign processes pay only the
/// (negligible) refresh cost — but it is meaningless for any attack other
/// than rowhammer, which is exactly the paper's Table I argument for a
/// general-purpose response framework.
///
/// # Examples
///
/// ```
/// use valkyrie_core::baselines::DramRefresh;
/// use valkyrie_core::Classification::{self, *};
/// let policy = DramRefresh::new(3);
/// // 2 undetected epochs, refresh, 3 undetected epochs → exactly one flip.
/// let out = policy.run(&[Benign, Benign, Malicious, Benign, Benign, Benign]);
/// assert_eq!(out.flips, 1);
/// assert_eq!(out.refreshes, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRefresh {
    flip_threshold: u32,
}

/// Outcome of replaying a hammer-epoch trace through [`DramRefresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshOutcome {
    /// Bit flips the attack landed despite the response.
    pub flips: u64,
    /// Targeted refreshes issued (one per malicious classification).
    pub refreshes: u64,
}

impl DramRefresh {
    /// A policy for a DRAM whose rows flip after `flip_threshold ≥ 1`
    /// consecutive un-refreshed hammer epochs.
    ///
    /// # Panics
    ///
    /// Panics if `flip_threshold` is zero (a row that flips with no
    /// hammering is a broken DIMM, not a policy question).
    pub fn new(flip_threshold: u32) -> Self {
        assert!(flip_threshold >= 1, "flip threshold must be at least one");
        Self { flip_threshold }
    }

    /// Consecutive undetected epochs needed per flip.
    pub fn flip_threshold(&self) -> u32 {
        self.flip_threshold
    }

    /// Replays a trace in which the attacker hammers every epoch; each
    /// malicious classification refreshes the victim rows and resets the
    /// disturbance accumulator.
    pub fn run(&self, inferences: &[Classification]) -> RefreshOutcome {
        let mut out = RefreshOutcome::default();
        let mut accumulated = 0u32;
        for c in inferences {
            if c.is_malicious() {
                out.refreshes += 1;
                accumulated = 0;
            } else {
                accumulated += 1;
                if accumulated == self.flip_threshold {
                    out.flips += 1;
                    accumulated = 0;
                }
            }
        }
        out
    }

    /// The maximum per-epoch detection gap (as a recall floor) that still
    /// prevents every flip: the detector must flag the attack at least once
    /// every `flip_threshold` epochs.
    pub fn required_detection_period(&self) -> u32 {
        self.flip_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    #[test]
    fn streak_must_be_consecutive() {
        let p = ConsecutiveTermination::new(3);
        let out = p.run(&[Malicious, Malicious, Benign, Malicious, Malicious, Benign]);
        assert!(out.survived());
        assert_eq!(out.total_progress(), 6.0);
    }

    #[test]
    fn attack_is_terminated_at_kth_epoch() {
        let p = ConsecutiveTermination::new(3);
        let out = p.run(&[Malicious; 10]);
        assert_eq!(out.terminated_at, Some(2));
        assert_eq!(out.total_progress(), 2.0);
    }

    #[test]
    fn k_equals_one_is_immediate_termination() {
        let p = ConsecutiveTermination::new(1);
        let out = p.run(&[Benign, Malicious, Benign]);
        assert_eq!(out.terminated_at, Some(1));
    }

    #[test]
    fn survival_probability_matches_simulation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let policy = ConsecutiveTermination::new(3);
        let (p, n) = (0.3, 50);
        let analytic = policy.benign_survival_probability(p, n);
        let mut rng = StdRng::seed_from_u64(123);
        let trials = 20_000;
        let mut survived = 0;
        for _ in 0..trials {
            let trace: Vec<Classification> = (0..n)
                .map(|_| {
                    if rng.gen::<f64>() < p {
                        Classification::Malicious
                    } else {
                        Classification::Benign
                    }
                })
                .collect();
            if policy.run(&trace).survived() {
                survived += 1;
            }
        }
        let empirical = survived as f64 / trials as f64;
        assert!(
            (analytic - empirical).abs() < 0.02,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn paper_narrative_blender_r_survival() {
        // Section VI-A: with a termination response, blender_r (30% FP
        // epochs) "would have been terminated with a probability of 0.3"
        // per verdict; over a long run with the 3-consecutive rule the
        // survival probability collapses too.
        let policy = ConsecutiveTermination::new(3);
        let survival = policy.benign_survival_probability(0.30, 300);
        assert!(
            survival < 0.01,
            "blender_r survives 300 epochs with p = {survival}"
        );
        // Valkyrie's answer: 0 wrongful terminations (tests/end_to_end.rs).
    }

    #[test]
    fn survival_probability_edge_cases() {
        let p = ConsecutiveTermination::new(3);
        assert_eq!(p.benign_survival_probability(0.0, 100), 1.0);
        assert!(p.benign_survival_probability(1.0, 3) < 1e-12);
        assert_eq!(p.benign_survival_probability(0.5, 0), 1.0);
    }

    #[test]
    fn warning_only_counts_alerts() {
        let out = WarningOnly.run(&[Malicious, Malicious, Benign]);
        assert!(out.survived());
        assert_eq!(WarningOnly.alerts(&[Malicious, Malicious, Benign]), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_panics() {
        let _ = ConsecutiveTermination::new(0);
    }

    #[test]
    fn priority_reduction_is_permanent() {
        let p = PriorityReduction::new(0.5);
        let out = p.run(&[Benign, Malicious, Benign, Benign, Benign]);
        assert!(out.survived());
        assert_eq!(out.progress, vec![1.0, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn priority_reduction_never_terminates_an_attack() {
        // R1 failure: the attack executes endlessly at the reduced rate.
        let p = PriorityReduction::new(0.1);
        let out = p.run(&[Malicious; 100]);
        assert!(out.survived());
        assert!((out.total_progress() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn priority_reduction_clamps_share() {
        assert_eq!(PriorityReduction::new(2.0).reduced_share(), 1.0);
        assert_eq!(PriorityReduction::new(-1.0).reduced_share(), 0.0);
    }

    #[test]
    fn dram_refresh_prevents_flips_when_detection_is_frequent() {
        // Detected every other epoch; threshold 3 → the accumulator never
        // reaches 3.
        let policy = DramRefresh::new(3);
        let trace: Vec<Classification> = (0..40)
            .map(|i| if i % 2 == 0 { Malicious } else { Benign })
            .collect();
        let out = policy.run(&trace);
        assert_eq!(out.flips, 0);
        assert_eq!(out.refreshes, 20);
    }

    #[test]
    fn dram_refresh_misses_flips_when_detection_gaps_exceed_threshold() {
        let policy = DramRefresh::new(2);
        let out = policy.run(&[Benign, Benign, Benign, Benign, Malicious]);
        assert_eq!(out.flips, 2);
        assert_eq!(out.refreshes, 1);
    }

    #[test]
    fn dram_refresh_undetected_attack_flips_freely() {
        let policy = DramRefresh::new(29);
        let out = policy.run(&[Benign; 290]);
        assert_eq!(out.flips, 10);
    }

    #[test]
    fn dram_refresh_detection_period_bound() {
        assert_eq!(DramRefresh::new(29).required_detection_period(), 29);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_flip_threshold_panics() {
        let _ = DramRefresh::new(0);
    }
}
