//! The scaling tier: a sharded, batch-oriented Valkyrie engine.
//!
//! The paper's engine answers one detector inference at a time; a
//! production deployment watches **thousands of processes per tick**. A
//! [`ShardedEngine`] partitions processes by [`ProcessId`] hash across `N`
//! independent [`EngineShard`]s and exposes a batch API:
//! [`ShardedEngine::observe_batch`] feeds one epoch's inferences for the
//! whole fleet and returns the responses in input order.
//!
//! # Execution modes
//!
//! How the per-shard work reaches the shards is a deployment choice, not a
//! code change — [`ExecutionMode`] selects it and the batch API is
//! identical either way:
//!
//! * [`ExecutionMode::ScopedSpawn`] (the default) fans each large batch
//!   out with [`std::thread::scope`], spawning fresh threads per tick.
//!   Small batches — and single-core hosts, where a spawn is pure loss —
//!   stay on the caller's thread and skip the partition/scatter passes
//!   entirely. Best when ticks are sporadic or batches are usually small:
//!   no threads exist between ticks.
//! * [`ExecutionMode::Pool`] owns the shards actor-style in a persistent
//!   [`ShardPool`]: `min(shards, cores)` long-lived
//!   workers are spawned once and fed per-tick work over channels, so the
//!   steady state pays two message exchanges per worker instead of a fresh
//!   set of thread spawns every tick. Best for fleet-scale drivers that
//!   tick continuously at 10k+ observations — exactly where the per-tick
//!   spawns of scoped mode dominate.
//!
//! Modes can be switched at runtime with
//! [`ShardedEngine::set_execution_mode`]; the conversion is lossless (the
//! pool hands its shards back on shutdown).
//!
//! Algorithm 1 semantics are **bit-for-bit identical** to a single
//! [`ValkyrieEngine`](crate::ValkyrieEngine) in both modes: the monitor
//! state is strictly per process, shard placement is a pure deterministic
//! function of the pid ([`crate::hash::mix64`]), and observations of the
//! same pid within a batch are applied in batch order by whichever shard
//! owns it. The property tests in `tests/sharding.rs` pin this equivalence
//! for arbitrary interleavings, shard counts and both execution modes.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::prelude::*;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(5)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut engine = ShardedEngine::with_capacity(config, 4, 10_000);
//! let batch: Vec<(ProcessId, Classification)> = (0..10_000)
//!     .map(|pid| (ProcessId(pid), Classification::Benign))
//!     .collect();
//! let responses = engine.tick(&batch);
//! assert_eq!(responses.len(), 10_000);
//! assert_eq!(engine.tracked_live(), 10_000);
//! assert_eq!(engine.epoch(), 1);
//! ```
//!
//! The same deployment through the persistent pool:
//!
//! ```
//! use valkyrie_core::prelude::*;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(5)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut engine = ShardedEngine::with_mode(config, 4, 10_000, ExecutionMode::Pool);
//! let batch = vec![(ProcessId(1), Classification::Malicious)];
//! let responses = engine.tick(&batch);
//! assert_eq!(responses.len(), 1);
//! assert_eq!(engine.execution_mode(), ExecutionMode::Pool);
//! ```

use crate::actuator::{Actuator, CompositeActuator};
use crate::engine::{EngineConfig, EngineResponse, EngineShard};
use crate::error::ValkyrieError;
use crate::hash::shard_of;
use crate::ingest::{
    merge_by_seq, IngestDefense, IngestPublisher, IngestQueues, OverflowPolicy, ThreatHints,
};
use crate::pool::ShardPool;
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::telemetry::{FusionStats, IngestStats};
use crate::threat::{Classification, ThreatIndex, Verdict};
use std::sync::{Arc, OnceLock};

/// Cached [`std::thread::available_parallelism`] (1 on error).
///
/// The underlying call re-reads cgroup limits from the kernel every time —
/// ~10 µs on Linux — which adds up for drivers that construct many
/// short-lived engines (e.g. a sweep building one per grid point). The host
/// core count cannot change under us in any deployment we care about, so
/// one probe per process is enough.
pub fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Batches smaller than this per call run on the caller's thread even with
/// multiple shards: a few hundred observations finish faster than the
/// spawns they would amortise. Tunable via
/// [`ShardedEngine::set_parallel_threshold`]; scoped-spawn mode only.
const DEFAULT_PARALLEL_THRESHOLD: usize = 512;

/// A partition-scratch slot whose capacity exceeds this multiple of what
/// the last batch actually needed is shrunk back, so one giant batch does
/// not pin its peak allocation for the rest of the engine's life.
const SCRATCH_SHRINK_FACTOR: usize = 8;

/// Scratch capacity below this is never shrunk — churning tiny
/// reallocations to save a few hundred bytes per shard is a net loss.
const SCRATCH_MIN_CAPACITY: usize = 64;

/// How a [`ShardedEngine`] distributes per-tick work across its shards.
/// See the [module docs](self) for when each mode wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Fan each batch out with [`std::thread::scope`], spawning fresh
    /// threads per tick (small batches stay inline). The default.
    #[default]
    ScopedSpawn,
    /// Persistent worker pool: long-lived threads own the shards
    /// actor-style and are fed work over channels, amortising the spawns
    /// across the engine's whole lifetime.
    Pool,
}

/// Where the shards currently live: inline (scoped mode) or moved into the
/// persistent workers (pool mode).
#[derive(Debug)]
enum Backend<A: Actuator + Clone> {
    Scoped(Vec<EngineShard<A>>),
    Pool(ShardPool<A>),
}

/// A fleet-scale engine: `N` independent [`EngineShard`]s behind a batch
/// API plus an epoch-tick driver, executed by either per-tick scoped
/// threads or a persistent worker pool ([`ExecutionMode`]).
///
/// See the [module docs](self) for the equivalence guarantees.
#[derive(Debug)]
pub struct ShardedEngine<A: Actuator + Clone = CompositeActuator> {
    backend: Backend<A>,
    config: EngineConfig<A>,
    nshards: usize,
    epoch: u64,
    purged_total: u64,
    parallel_threshold: usize,
    /// `min(shards, host cores)`, resolved once at construction so the
    /// per-tick hot path never pays the affinity syscall. Doubles as the
    /// default pool worker count.
    host_workers: usize,
    /// Per-shard partition scratch, reused across batches so the steady
    /// state allocates nothing on the partition side (and shrunk back
    /// after outlier batches, see [`SCRATCH_SHRINK_FACTOR`]).
    parts: Vec<Vec<(ProcessId, Classification)>>,
    origins: Vec<Vec<usize>>,
    /// The async ingest rings, once [`ShardedEngine::enable_ingest`] has
    /// built them; `Arc`-shared with every publisher handle and (in pool
    /// mode) the workers.
    ingest: Option<Arc<IngestQueues>>,
    /// Per-shard sequence-stamp scratch for [`ShardedEngine::drain_batch`]
    /// (empty until ingest is enabled; same shrink policy as `parts`).
    seqs: Vec<Vec<u64>>,
    /// The fusion tier's verdict rings, once
    /// [`ShardedEngine::enable_verdict_ingest`] has built them. A separate
    /// queue set from `ingest`: binary classifications and per-detector
    /// verdicts can flow side by side and are drained by the same
    /// [`ShardedEngine::drain_tick`].
    verdicts: Option<Arc<IngestQueues<Verdict>>>,
    /// Per-shard partition/drain scratch for the verdict path (empty until
    /// verdict ingest or a verdict batch is used; same shrink policy).
    vparts: Vec<Vec<(ProcessId, Verdict)>>,
    vseqs: Vec<Vec<u64>>,
    /// The suspicious-pid feedback channel for defended queue sets
    /// ([`crate::ingest::ThreatHints`]): shared with every queue set built
    /// by the `*_defended` enable variants and refreshed from this
    /// engine's own responses each tick/drain.
    hints: Arc<ThreatHints>,
    /// Whether any live queue set routes on the hints (skips the feedback
    /// pass entirely for undefended engines).
    hints_active: bool,
}

/// The owning shard for `pid` among `nshards`: a pure function of the pid,
/// stable across runs, platforms and execution modes (the workspace-wide
/// routing rule, [`crate::hash::shard_of`]).
#[inline]
pub(crate) fn shard_index(pid: ProcessId, nshards: usize) -> usize {
    shard_of(pid.0, nshards)
}

/// Splits `batch` into per-partition work lists under an arbitrary routing
/// function, remembering each observation's position in the input batch.
/// Free-standing so an engine can split-borrow its scratch next to its
/// backend; the fleet tier reuses it with machine-id routing.
pub(crate) fn partition_by_into<T: Copy>(
    batch: &[(ProcessId, T)],
    route: impl Fn(ProcessId) -> usize,
    parts: &mut [Vec<(ProcessId, T)>],
    origins: &mut [Vec<usize>],
) {
    for (part, origin) in parts.iter_mut().zip(origins.iter_mut()) {
        part.clear();
        origin.clear();
    }
    for (i, &(pid, payload)) in batch.iter().enumerate() {
        let part = route(pid);
        parts[part].push((pid, payload));
        origins[part].push(i);
    }
}

/// Splits `batch` into per-shard work lists under the pid routing rule.
fn partition_into(
    batch: &[(ProcessId, Classification)],
    nshards: usize,
    parts: &mut [Vec<(ProcessId, Classification)>],
    origins: &mut [Vec<usize>],
) {
    partition_by_into(batch, |pid| shard_index(pid, nshards), parts, origins);
}

/// The single scratch-shrink policy: a slot keeps at most
/// [`SCRATCH_SHRINK_FACTOR`]× what it currently holds (`used` elements),
/// never dropping below [`SCRATCH_MIN_CAPACITY`].
pub(crate) fn shrink_slot<T>(slot: &mut Vec<T>, used: usize) {
    let need = used.max(SCRATCH_MIN_CAPACITY);
    if slot.capacity() > need * SCRATCH_SHRINK_FACTOR {
        slot.shrink_to(need);
    }
}

/// Minimal either-iterator so [`ShardedEngine::iter`] can stay lazy and
/// allocation-free in scoped mode (the shards are right there to walk)
/// while pool mode iterates a snapshot fetched from the workers.
enum EitherIter<L, R> {
    Scoped(L),
    Pool(R),
}

impl<L, R> Iterator for EitherIter<L, R>
where
    L: Iterator,
    R: Iterator<Item = L::Item>,
{
    type Item = L::Item;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EitherIter::Scoped(it) => it.next(),
            EitherIter::Pool(it) => it.next(),
        }
    }
}

/// Applies per-shard work lists to the shards on the caller's side of the
/// backend, returning one response list per shard (in shard order). With
/// more than one worker the shards are chunked onto `workers` scoped
/// threads (an 8-shard engine on a 4-core host costs 4 spawns, not 8);
/// with one worker everything runs inline. Shared by the batch and drain
/// paths — per-shard application order is identical either way.
fn observe_parts_scoped<A: Actuator + Clone + Send>(
    shards: &mut [EngineShard<A>],
    parts: &[Vec<(ProcessId, Classification)>],
    workers: usize,
) -> Vec<Vec<EngineResponse>> {
    if workers <= 1 {
        return shards
            .iter_mut()
            .zip(parts)
            .map(|(shard, part)| shard.observe_batch(part))
            .collect();
    }
    let chunk = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .chunks_mut(chunk)
            .zip(parts.chunks(chunk))
            .map(|(shard_chunk, part_chunk)| {
                scope.spawn(move || {
                    shard_chunk
                        .iter_mut()
                        .zip(part_chunk)
                        .map(|(shard, part)| shard.observe_batch(part))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("engine shard panicked"))
            .collect()
    })
}

/// Scatters per-shard response lists back to input order. Every slot is
/// overwritten: the partition covers each input index exactly once.
pub(crate) fn scatter_to_input_order(
    origins: &[Vec<usize>],
    results: Vec<Vec<EngineResponse>>,
    len: usize,
) -> Vec<EngineResponse> {
    let placeholder = EngineResponse {
        pid: ProcessId(u64::MAX),
        state: ProcessState::Normal,
        threat: ThreatIndex::zero(),
        resources: ResourceVector::FULL,
        action: crate::engine::Action::None,
    };
    let mut out = vec![placeholder; len];
    for (indices, responses) in origins.iter().zip(results) {
        for (&i, response) in indices.iter().zip(responses) {
            out[i] = response;
        }
    }
    out
}

impl<A: Actuator + Clone + Send> ShardedEngine<A> {
    /// Creates an engine with `shards` partitions in the default
    /// [`ExecutionMode::ScopedSpawn`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: EngineConfig<A>, shards: usize) -> Self {
        Self::with_capacity(config, shards, 0)
    }

    /// Creates an engine with `shards` partitions, each pre-sized for its
    /// share of `expected_procs` processes (see
    /// [`EngineShard::with_capacity`]), in the default
    /// [`ExecutionMode::ScopedSpawn`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_capacity(config: EngineConfig<A>, shards: usize, expected_procs: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let per_shard = expected_procs.div_ceil(shards);
        Self {
            backend: Backend::Scoped(
                (0..shards)
                    .map(|_| EngineShard::with_capacity(config.clone(), per_shard))
                    .collect(),
            ),
            config,
            nshards: shards,
            epoch: 0,
            purged_total: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            host_workers: host_parallelism().min(shards),
            parts: vec![Vec::new(); shards],
            origins: vec![Vec::new(); shards],
            ingest: None,
            seqs: Vec::new(),
            verdicts: None,
            vparts: Vec::new(),
            vseqs: Vec::new(),
            hints: ThreatHints::new(),
            hints_active: false,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    /// The shared configuration (every shard holds a clone of it).
    pub fn config(&self) -> &EngineConfig<A> {
        &self.config
    }

    /// The current execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        match self.backend {
            Backend::Scoped(_) => ExecutionMode::ScopedSpawn,
            Backend::Pool(_) => ExecutionMode::Pool,
        }
    }

    /// Number of persistent worker threads when running in
    /// [`ExecutionMode::Pool`]; `None` in scoped mode, where threads only
    /// exist for the duration of a batch.
    pub fn pool_workers(&self) -> Option<usize> {
        match &self.backend {
            Backend::Scoped(_) => None,
            Backend::Pool(pool) => Some(pool.workers()),
        }
    }

    /// Epochs driven so far via [`Self::tick`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Terminated processes evicted so far, whether by [`Self::tick`]'s
    /// end-of-epoch purge or by direct [`Self::purge_terminated`] calls —
    /// both paths feed the same counter.
    pub fn purged_total(&self) -> u64 {
        self.purged_total
    }

    /// Overrides the batch size below which [`Self::observe_batch`] stays
    /// on the caller's thread in [`ExecutionMode::ScopedSpawn`]. Shard
    /// placement and results are unaffected — this only moves the
    /// sequential/parallel crossover. A threshold of `0` forces the spawn
    /// path even on a single-core host (useful for equivalence tests; pure
    /// overhead otherwise). A one-shard engine always runs inline
    /// regardless: there is nothing to fan out. Pool mode ignores the
    /// threshold entirely — the shards live on the workers, so every batch
    /// travels over the channels.
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// The shard that owns `pid`: a pure function of the pid, stable across
    /// runs and platforms for a fixed shard count.
    pub fn shard_of(&self, pid: ProcessId) -> usize {
        shard_index(pid, self.nshards)
    }

    /// Total capacity (in elements) currently retained by the per-shard
    /// partition scratch, summed over work lists and origin maps. Exposed
    /// so tests can pin the shrink policy: after an outlier batch the
    /// capacity must return to steady state instead of staying at its
    /// peak.
    pub fn scratch_capacity(&self) -> usize {
        self.parts.iter().map(Vec::capacity).sum::<usize>()
            + self.origins.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Number of processes currently tracked across all shards,
    /// **terminated ones included** (they stay queryable until purged).
    pub fn tracked(&self) -> usize {
        match &self.backend {
            Backend::Scoped(shards) => shards.iter().map(EngineShard::tracked).sum(),
            Backend::Pool(pool) => pool.tracked(),
        }
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        match &self.backend {
            Backend::Scoped(shards) => shards.iter().map(EngineShard::tracked_live).sum(),
            Backend::Pool(pool) => pool.tracked_live(),
        }
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        let shard = self.shard_of(pid);
        match &self.backend {
            Backend::Scoped(shards) => shards[shard].state(pid),
            Backend::Pool(pool) => pool.state(shard, pid),
        }
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        let shard = self.shard_of(pid);
        match &self.backend {
            Backend::Scoped(shards) => shards[shard].threat(pid),
            Backend::Pool(pool) => pool.threat(shard, pid),
        }
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        let shard = self.shard_of(pid);
        match &self.backend {
            Backend::Scoped(shards) => shards[shard].resources(pid),
            Backend::Pool(pool) => pool.resources(shard, pid),
        }
    }

    /// Feeds one inference for one process (the compatibility path; batch
    /// embedders should use [`Self::observe_batch`]).
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        let shard = shard_index(pid, self.nshards);
        match &mut self.backend {
            Backend::Scoped(shards) => shards[shard].observe(pid, inference),
            Backend::Pool(pool) => pool.observe_one(shard, pid, inference),
        }
    }

    /// Feeds one per-detector [`Verdict`] for one process through the
    /// fusion tier of its owning shard (see
    /// [`EngineShard::observe_verdict`]).
    pub fn observe_verdict(&mut self, pid: ProcessId, verdict: Verdict) -> EngineResponse {
        let shard = shard_index(pid, self.nshards);
        match &mut self.backend {
            Backend::Scoped(shards) => shards[shard].observe_verdict(pid, verdict),
            Backend::Pool(pool) => pool.observe_verdict_one(shard, pid, verdict),
        }
    }

    /// Feeds one tick's per-detector verdicts for the whole fleet. Each
    /// shard absorbs its verdicts in batch order, then fuses every touched
    /// process **once** — so a process with three members reporting this
    /// tick takes one monitor step, not three. Returns one response per
    /// *process* with fresh evidence, grouped shard by shard (within a
    /// shard: first-arrival order). Deterministic for a fixed batch and
    /// shard count in both execution modes.
    pub fn observe_verdict_batch(&mut self, batch: &[(ProcessId, Verdict)]) -> Vec<EngineResponse> {
        let nshards = self.nshards;
        if self.vparts.len() != nshards {
            self.vparts = vec![Vec::new(); nshards];
        }
        let out = match self.backend {
            Backend::Scoped(ref mut shards) => {
                if nshards == 1 {
                    return shards[0].observe_verdict_batch(batch);
                }
                partition_by_into(
                    batch,
                    |pid| shard_index(pid, nshards),
                    &mut self.vparts,
                    &mut self.origins,
                );
                let mut out = Vec::new();
                for (shard, part) in shards.iter_mut().zip(&self.vparts) {
                    shard.observe_verdict_batch_into(part, &mut out);
                }
                out
            }
            Backend::Pool(ref mut pool) => {
                partition_by_into(
                    batch,
                    |pid| shard_index(pid, nshards),
                    &mut self.vparts,
                    &mut self.origins,
                );
                let mut out = Vec::new();
                for responses in pool.observe_verdict_parts(&mut self.vparts) {
                    out.extend(responses);
                }
                out
            }
        };
        for part in &mut self.vparts {
            let used = part.len();
            shrink_slot(part, used);
        }
        out
    }

    /// The fusion counters merged across every shard (see
    /// [`FusionStats`]): verdicts absorbed per detector, stale verdicts
    /// decayed, escalation transitions enacted.
    pub fn fusion_stats(&self) -> FusionStats {
        match &self.backend {
            Backend::Scoped(shards) => {
                let mut stats = FusionStats::default();
                for shard in shards {
                    stats.merge(shard.fusion_stats());
                }
                stats
            }
            Backend::Pool(pool) => pool.fusion_stats(),
        }
    }

    /// Feeds one epoch's detector inferences for the whole fleet and
    /// returns one response per observation, **in input order**.
    ///
    /// Observations are partitioned by owning shard; each shard applies its
    /// observations in batch order. In [`ExecutionMode::ScopedSpawn`],
    /// batches worth parallelising run the shards across the host's
    /// available cores with [`std::thread::scope`] (shards are chunked onto
    /// `min(shards, cores)` worker threads); small batches — and
    /// single-core hosts, where a spawn is pure loss — stay on the caller's
    /// thread and skip the partition/scatter passes entirely. In
    /// [`ExecutionMode::Pool`], every batch is partitioned and fed to the
    /// persistent workers over channels — no threads are spawned. Results
    /// are identical in all paths because shards share no per-process
    /// state.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let nshards = self.nshards;
        let out = match self.backend {
            Backend::Scoped(ref mut shards) => {
                if nshards == 1 {
                    return shards[0].observe_batch(batch);
                }
                let force_spawns = self.parallel_threshold == 0;
                let workers = if force_spawns {
                    nshards
                } else {
                    self.host_workers
                };
                if !force_spawns && (workers <= 1 || batch.len() < self.parallel_threshold) {
                    // No parallelism to win (single-core host, or a batch
                    // too small to amortise the spawns): route each
                    // observation straight to its shard. This skips the
                    // partition and scatter passes entirely — measured on
                    // the 10k bench they cost more than the observe work
                    // they reorganise.
                    let mut out = Vec::with_capacity(batch.len());
                    for &(pid, inference) in batch {
                        let shard = shard_index(pid, nshards);
                        out.push(shards[shard].observe(pid, inference));
                    }
                    // The scratch was bypassed, so anything an earlier
                    // partitioned outlier batch left in it is dead weight;
                    // shrink it here too or the inline steady state would
                    // pin the peak forever.
                    self.shrink_idle_scratch();
                    return out;
                }

                partition_into(batch, nshards, &mut self.parts, &mut self.origins);
                let results = observe_parts_scoped(shards, &self.parts, workers);
                scatter_to_input_order(&self.origins, results, batch.len())
            }
            Backend::Pool(ref mut pool) => {
                partition_into(batch, nshards, &mut self.parts, &mut self.origins);
                let results = pool.observe_parts(&mut self.parts);
                scatter_to_input_order(&self.origins, results, batch.len())
            }
        };
        self.shrink_scratch();
        out
    }

    /// Batch variant of [`Self::observe_batch`] writing into a caller-owned
    /// buffer (cleared first). The single-shard path runs allocation-free,
    /// so per-epoch embedders (the scenario driver) reuse one response
    /// buffer across steps; multi-shard configurations fall back to
    /// [`Self::observe_batch`], whose scatter pass allocates per call
    /// anyway. Responses are identical on every path.
    pub fn observe_batch_into(
        &mut self,
        batch: &[(ProcessId, Classification)],
        out: &mut Vec<EngineResponse>,
    ) {
        out.clear();
        if self.nshards == 1 {
            if let Backend::Scoped(ref mut shards) = self.backend {
                shards[0].observe_batch_into(batch, out);
                return;
            }
        }
        out.extend(self.observe_batch(batch));
    }

    /// Shrinks scratch the inline fast path left unused: its contents are
    /// stale (the last *partitioned* batch, not the one just served), so
    /// any slot holding more than the floor's slack goes straight back to
    /// [`SCRATCH_MIN_CAPACITY`].
    fn shrink_idle_scratch(&mut self) {
        for part in &mut self.parts {
            part.clear();
            shrink_slot(part, 0);
        }
        for origin in &mut self.origins {
            origin.clear();
            shrink_slot(origin, 0);
        }
    }

    /// Returns outlier allocations in the partition scratch to steady
    /// state: a slot keeps at most [`SCRATCH_SHRINK_FACTOR`]× the capacity
    /// the batch it just held needed (never shrinking below
    /// [`SCRATCH_MIN_CAPACITY`]). Without this, one giant batch pins its
    /// peak capacity for the rest of the engine's life.
    fn shrink_scratch(&mut self) {
        for part in &mut self.parts {
            let used = part.len();
            shrink_slot(part, used);
        }
        for origin in &mut self.origins {
            let used = origin.len();
            shrink_slot(origin, used);
        }
    }

    /// The epoch driver: feeds one tick's batch, advances the epoch
    /// counter, and evicts terminated processes so the fleet map cannot
    /// grow without bound.
    ///
    /// Responses still report the terminal observation (the embedder must
    /// enact [`Action::Terminate`](crate::Action::Terminate)); the
    /// bookkeeping is dropped immediately afterwards, so re-observing a
    /// terminated pid on a later tick registers a *fresh* process.
    /// Embedders that need post-mortem queries should use
    /// [`Self::observe_batch`] and purge on their own schedule.
    pub fn tick(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let responses = self.observe_batch(batch);
        self.update_hints(&responses);
        self.epoch += 1;
        self.purge_terminated();
        responses
    }

    /// Builds the async ingest tier — one bounded ring per shard, holding
    /// up to `capacity` observations each — and returns a publisher handle
    /// for the detector threads (clone it freely; see
    /// [`crate::ingest`] for the architecture and
    /// [`OverflowPolicy`] for what a full ring does). The engine's side of
    /// the pair is [`Self::drain_batch`] / [`Self::drain_tick`].
    ///
    /// Works in both execution modes: in [`ExecutionMode::Pool`] the rings
    /// are handed to the persistent workers, which drain their own shards
    /// in place — no cross-thread batch scatter. Mode switches carry the
    /// rings along (queued observations included).
    ///
    /// Calling this again replaces the rings: the old ones are closed
    /// (their blocked publishers wake and their handles start returning
    /// `false`), and any still-queued observations in them are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_ingest(&mut self, capacity: usize, policy: OverflowPolicy) -> IngestPublisher {
        self.enable_ingest_defended(capacity, policy, IngestDefense::default())
    }

    /// [`Self::enable_ingest`] with the overload defense: priority lanes
    /// routed on this engine's [`ThreatHints`] (refreshed from its own
    /// responses every tick/drain) and/or per-publisher fair queueing.
    /// With both mechanisms off this is exactly [`Self::enable_ingest`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_ingest_defended(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
        defense: IngestDefense,
    ) -> IngestPublisher {
        if let Some(old) = self.ingest.take() {
            old.close();
        }
        let queues = IngestQueues::with_defense(
            self.nshards,
            capacity,
            policy,
            defense,
            Arc::clone(&self.hints),
        );
        if let Backend::Pool(pool) = &self.backend {
            pool.install_ingest(&queues);
        }
        self.seqs = vec![Vec::new(); self.nshards];
        self.ingest = Some(Arc::clone(&queues));
        self.refresh_hints_active();
        IngestPublisher::new(queues)
    }

    /// Whether any live queue set routes on the threat hints, recomputed
    /// after a queue set is (re)built.
    fn refresh_hints_active(&mut self) {
        self.hints_active = self
            .ingest
            .as_ref()
            .is_some_and(|q| q.defense().priority_lane)
            || self
                .verdicts
                .as_ref()
                .is_some_and(|q| q.defense().priority_lane);
    }

    /// The suspicious-pid feedback set shared with defended queue sets.
    /// Mostly for tests and telemetry — the engine maintains it by itself.
    pub fn threat_hints(&self) -> Arc<ThreatHints> {
        Arc::clone(&self.hints)
    }

    /// Refreshes the threat hints from a tick's responses: pids the
    /// escalation ladder holds at Suspicious/Terminable are marked for
    /// the priority lane, pids back at Normal (or gone) are cleared.
    fn update_hints(&self, responses: &[EngineResponse]) {
        if !self.hints_active || responses.is_empty() {
            return;
        }
        self.hints.update(responses.iter().map(|r| {
            (
                r.pid,
                matches!(r.state, ProcessState::Suspicious | ProcessState::Terminable),
            )
        }));
    }

    /// Whether [`Self::enable_ingest`] has built the ingest tier.
    pub fn ingest_enabled(&self) -> bool {
        self.ingest.is_some()
    }

    /// A fresh publisher handle for the current ingest rings (`None`
    /// before [`Self::enable_ingest`]).
    pub fn publisher(&self) -> Option<IngestPublisher> {
        self.ingest
            .as_ref()
            .map(|queues| IngestPublisher::new(Arc::clone(queues)))
    }

    /// Publishes one classification into the ingest rings from the driver
    /// side (detector threads should use their [`IngestPublisher`]).
    /// Returns `false` only when the rings have been replaced or closed.
    ///
    /// With [`OverflowPolicy::Block`] and a full ring this **waits for a
    /// drain** — a driver that both publishes and drains must size the
    /// rings for a full tick's observations.
    ///
    /// # Panics
    ///
    /// Panics if ingest was never enabled.
    pub fn ingest(&self, pid: ProcessId, inference: Classification) -> bool {
        let queues = self
            .ingest
            .as_ref()
            .expect("call enable_ingest before ShardedEngine::ingest");
        queues.push(0, shard_index(pid, self.nshards), pid, inference)
    }

    /// The ingest tier's counters (`None` before [`Self::enable_ingest`]);
    /// see [`IngestStats`] for what each field means.
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.ingest.as_ref().map(|queues| queues.stats())
    }

    /// Builds the fusion tier's async verdict rings — the per-detector
    /// twin of [`Self::enable_ingest`] — and returns a publisher handle.
    /// Each ensemble member clones the publisher and publishes
    /// [`Verdict`]s at its own cadence; the next [`Self::drain_tick`]
    /// absorbs whatever has arrived and fuses each touched process once.
    ///
    /// A separate queue set from the binary rings: both can be enabled at
    /// once (e.g. legacy detectors publishing classifications next to
    /// fusion members publishing verdicts) and one drain serves both.
    /// Calling this again replaces — and closes — the previous verdict
    /// rings, exactly like [`Self::enable_ingest`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_verdict_ingest(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> IngestPublisher<Verdict> {
        self.enable_verdict_ingest_defended(capacity, policy, IngestDefense::default())
    }

    /// [`Self::enable_verdict_ingest`] with the overload defense — the
    /// verdict-ring twin of [`Self::enable_ingest_defended`], sharing the
    /// same [`ThreatHints`] set. Under `Coalesce`, verdict entries merge
    /// by (pid, detector), so the defense also cannot conflate members.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_verdict_ingest_defended(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
        defense: IngestDefense,
    ) -> IngestPublisher<Verdict> {
        if let Some(old) = self.verdicts.take() {
            old.close();
        }
        let queues = IngestQueues::with_defense(
            self.nshards,
            capacity,
            policy,
            defense,
            Arc::clone(&self.hints),
        );
        if let Backend::Pool(pool) = &self.backend {
            pool.install_verdict_ingest(&queues);
        }
        self.vparts = vec![Vec::new(); self.nshards];
        self.vseqs = vec![Vec::new(); self.nshards];
        self.verdicts = Some(Arc::clone(&queues));
        self.refresh_hints_active();
        IngestPublisher::new(queues)
    }

    /// Whether [`Self::enable_verdict_ingest`] has built the verdict rings.
    pub fn verdict_ingest_enabled(&self) -> bool {
        self.verdicts.is_some()
    }

    /// A fresh publisher handle for the current verdict rings (`None`
    /// before [`Self::enable_verdict_ingest`]).
    pub fn verdict_publisher(&self) -> Option<IngestPublisher<Verdict>> {
        self.verdicts
            .as_ref()
            .map(|queues| IngestPublisher::new(Arc::clone(queues)))
    }

    /// Publishes one per-detector verdict into the verdict rings from the
    /// driver side. Returns `false` only when the rings have been replaced
    /// or closed.
    ///
    /// # Panics
    ///
    /// Panics if verdict ingest was never enabled.
    pub fn ingest_verdict(&self, pid: ProcessId, verdict: Verdict) -> bool {
        let queues = self
            .verdicts
            .as_ref()
            .expect("call enable_verdict_ingest before ShardedEngine::ingest_verdict");
        queues.push(0, shard_index(pid, self.nshards), pid, verdict)
    }

    /// The verdict rings' counters (`None` before
    /// [`Self::enable_verdict_ingest`]).
    pub fn verdict_ingest_stats(&self) -> Option<IngestStats> {
        self.verdicts.as_ref().map(|queues| queues.stats())
    }

    /// Drains every ingest ring and answers the drained observations, in
    /// **publish order** (per publisher; concurrent publishers are merged
    /// in sequence-stamp order, one valid global serialization). The
    /// non-epoch half of the [`Self::ingest`]/[`Self::drain_tick`] pair —
    /// it is to [`Self::drain_tick`] what [`Self::observe_batch`] is to
    /// [`Self::tick`]: no epoch advance, no purge.
    ///
    /// Never waits on publishers: a stalled detector simply contributes
    /// nothing to this drain, and its processes keep their current state
    /// (cyclic monitoring treats a missing observation as "no measurement
    /// this epoch"). Rings are emptied — and their blocked publishers
    /// released — before any observe work runs.
    ///
    /// With [`OverflowPolicy::Block`] and rings that never overflowed,
    /// publish-then-drain is bit-for-bit equivalent to handing the same
    /// observations to [`Self::observe_batch`] (pinned by
    /// `tests/ingest.rs`).
    ///
    /// When verdict ingest is enabled too (or instead — see
    /// [`Self::enable_verdict_ingest`]), the verdict rings are drained
    /// after the binary rings and each touched process's evidence is fused
    /// once; those per-process responses are appended after the
    /// per-observation binary responses.
    ///
    /// # Panics
    ///
    /// Panics if neither ingest tier was ever enabled.
    pub fn drain_batch(&mut self) -> Vec<EngineResponse> {
        assert!(
            self.ingest.is_some() || self.verdicts.is_some(),
            "call enable_ingest or enable_verdict_ingest before ShardedEngine::drain_batch"
        );
        let mut out = if self.ingest.is_some() {
            self.drain_binary_batch()
        } else {
            Vec::new()
        };
        if self.verdicts.is_some() {
            self.drain_verdicts_into(&mut out);
        }
        self.update_hints(&out);
        out
    }

    /// The binary half of [`Self::drain_batch`] (the PR 5 path, verbatim).
    fn drain_binary_batch(&mut self) -> Vec<EngineResponse> {
        let queues = Arc::clone(
            self.ingest
                .as_ref()
                .expect("drain_binary_batch requires enabled ingest"),
        );
        let nshards = self.nshards;
        let out = match self.backend {
            Backend::Scoped(ref mut shards) => {
                // Empty every ring into the drain scratch first: publishers
                // blocked on a full ring are released before — not after —
                // the observe work runs.
                for shard in 0..nshards {
                    self.parts[shard].clear();
                    self.seqs[shard].clear();
                    queues.drain_shard_into(shard, &mut self.parts[shard], &mut self.seqs[shard]);
                }
                if nshards == 1 {
                    // One ring: application order is ring order, but the
                    // *returned* order must still be stamp order — under
                    // `Coalesce` a restamped entry keeps its ring slot, and
                    // skipping the merge here would make response order
                    // depend on the shard count.
                    let results = vec![shards[0].observe_batch(&self.parts[0])];
                    merge_by_seq(&self.seqs, results)
                } else {
                    let total: usize = self.parts.iter().map(Vec::len).sum();
                    let force_spawns = self.parallel_threshold == 0;
                    let workers = if force_spawns {
                        nshards
                    } else if total < self.parallel_threshold {
                        1
                    } else {
                        self.host_workers
                    };
                    let results = observe_parts_scoped(shards, &self.parts, workers);
                    merge_by_seq(&self.seqs, results)
                }
            }
            Backend::Pool(ref mut pool) => {
                // The workers drain their own shards in place — the rings
                // are shared, so no observation crosses a thread boundary
                // twice.
                let (seqs, results): (Vec<Vec<u64>>, Vec<Vec<EngineResponse>>) =
                    pool.drain_parts().into_iter().unzip();
                merge_by_seq(&seqs, results)
            }
        };
        self.shrink_drain_scratch();
        out
    }

    /// The verdict half of [`Self::drain_batch`]: empties every verdict
    /// ring, absorbs the verdicts and appends one fused response per
    /// touched process (shard by shard; within a shard, first-arrival
    /// order). Rings are emptied — and blocked publishers released —
    /// before any fuse work runs, mirroring the binary drain.
    fn drain_verdicts_into(&mut self, out: &mut Vec<EngineResponse>) {
        let queues = Arc::clone(
            self.verdicts
                .as_ref()
                .expect("drain_verdicts_into requires enabled verdict ingest"),
        );
        let nshards = self.nshards;
        match self.backend {
            Backend::Scoped(ref mut shards) => {
                for shard in 0..nshards {
                    self.vparts[shard].clear();
                    self.vseqs[shard].clear();
                    queues.drain_shard_into(shard, &mut self.vparts[shard], &mut self.vseqs[shard]);
                }
                for (shard, part) in shards.iter_mut().zip(&self.vparts) {
                    shard.observe_verdict_batch_into(part, out);
                }
            }
            Backend::Pool(ref mut pool) => {
                for responses in pool.drain_verdict_parts() {
                    out.extend(responses);
                }
            }
        }
        for part in &mut self.vparts {
            let used = part.len();
            shrink_slot(part, used);
        }
        for seqs in &mut self.vseqs {
            let used = seqs.len();
            shrink_slot(seqs, used);
        }
    }

    /// The async epoch driver: drains the ingest rings
    /// ([`Self::drain_batch`]), advances the epoch counter and evicts
    /// terminated processes — [`Self::tick`]'s contract, fed by the
    /// detector threads' queues instead of a caller-assembled batch. Ticks
    /// on schedule no matter how slow (or wedged) the detectors are.
    ///
    /// # Panics
    ///
    /// Panics if ingest was never enabled.
    pub fn drain_tick(&mut self) -> Vec<EngineResponse> {
        let responses = self.drain_batch();
        self.epoch += 1;
        self.purge_terminated();
        responses
    }

    /// Returns drain-scratch outliers to steady state (the policy of
    /// [`Self::shrink_scratch`], applied to the drain side's slots).
    fn shrink_drain_scratch(&mut self) {
        for part in &mut self.parts {
            let used = part.len();
            shrink_slot(part, used);
        }
        for seqs in &mut self.seqs {
            let used = seqs.len();
            shrink_slot(seqs, used);
        }
    }

    /// Evicts every terminated process across all shards, returning how
    /// many were dropped (see [`EngineShard::purge_terminated`]). The
    /// evictions are added to [`Self::purged_total`] whether this is
    /// called directly or by [`Self::tick`].
    pub fn purge_terminated(&mut self) -> usize {
        let purged = match &mut self.backend {
            Backend::Scoped(shards) => shards.iter_mut().map(EngineShard::purge_terminated).sum(),
            Backend::Pool(pool) => pool.purge_terminated(),
        };
        self.purged_total += purged as u64;
        purged
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let shard = self.shard_of(pid);
        match &mut self.backend {
            Backend::Scoped(shards) => shards[shard].complete(pid),
            Backend::Pool(pool) => pool.complete(shard, pid),
        }
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        let shard = self.shard_of(pid);
        match &mut self.backend {
            Backend::Scoped(shards) => shards[shard].forget(pid),
            Backend::Pool(pool) => pool.forget(shard, pid),
        }
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes, shard
    /// by shard (no global ordering). Lazy and allocation-free in scoped
    /// mode; pool mode materialises one snapshot from the workers.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        match &self.backend {
            Backend::Scoped(shards) => {
                EitherIter::Scoped(shards.iter().flat_map(EngineShard::iter))
            }
            Backend::Pool(pool) => EitherIter::Pool(pool.snapshot().into_iter()),
        }
    }
}

impl<A: Actuator + Clone + Send + 'static> ShardedEngine<A> {
    /// Creates an engine with `shards` partitions pre-sized for
    /// `expected_procs` processes, running in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_mode(
        config: EngineConfig<A>,
        shards: usize,
        expected_procs: usize,
        mode: ExecutionMode,
    ) -> Self {
        let mut engine = Self::with_capacity(config, shards, expected_procs);
        engine.set_execution_mode(mode);
        engine
    }

    /// Switches execution modes in place, preserving every process's
    /// monitor and actuator state. Promoting to [`ExecutionMode::Pool`]
    /// spawns `min(shards, cores)` persistent workers and moves the shards
    /// onto them; demoting shuts the workers down gracefully and takes the
    /// shards back. A no-op when already in the requested mode.
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) {
        if self.execution_mode() == mode {
            return;
        }
        // The placeholder is never observable: both arms below install the
        // real backend before returning.
        let backend = std::mem::replace(&mut self.backend, Backend::Scoped(Vec::new()));
        self.backend = match backend {
            Backend::Scoped(shards) => {
                let pool = ShardPool::new(shards, self.host_workers);
                if let Some(queues) = &self.ingest {
                    pool.install_ingest(queues);
                }
                if let Some(queues) = &self.verdicts {
                    pool.install_verdict_ingest(queues);
                }
                Backend::Pool(pool)
            }
            // Demotion needs no ingest hand-off: the scoped drain path
            // reads the same `Arc`-shared rings directly.
            Backend::Pool(pool) => Backend::Scoped(pool.shutdown()),
        };
    }

    /// (Re)builds the persistent pool with an explicit worker count
    /// (clamped to `[1, shards]`), entering [`ExecutionMode::Pool`] if not
    /// already there. State is preserved: the existing shards — wherever
    /// they live — are moved onto the new workers.
    pub fn set_pool_workers(&mut self, workers: usize) {
        let shards = match std::mem::replace(&mut self.backend, Backend::Scoped(Vec::new())) {
            Backend::Scoped(shards) => shards,
            Backend::Pool(pool) => pool.shutdown(),
        };
        let pool = ShardPool::new(shards, workers);
        if let Some(queues) = &self.ingest {
            pool.install_ingest(queues);
        }
        if let Some(queues) = &self.verdicts {
            pool.install_verdict_ingest(queues);
        }
        self.backend = Backend::Pool(pool);
    }
}

impl<A: Actuator + Clone> Drop for ShardedEngine<A> {
    /// Closes the ingest rings so detector threads blocked on a full ring
    /// (`OverflowPolicy::Block`) wake up instead of waiting forever for a
    /// drain that can no longer come; their publish calls return `false`
    /// from then on.
    fn drop(&mut self) {
        if let Some(queues) = &self.ingest {
            queues.close();
        }
        if let Some(queues) = &self.verdicts {
            queues.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::{Action, ValkyrieEngine};
    use Classification::{Benign, Malicious};

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    fn mixed_batch(procs: u64, epoch: u64) -> Vec<(ProcessId, Classification)> {
        (0..procs)
            .map(|pid| {
                let cls = if (pid + epoch).is_multiple_of(7) {
                    Malicious
                } else {
                    Benign
                };
                (ProcessId(pid), cls)
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedEngine::new(config(5), 0);
    }

    #[test]
    fn batch_responses_are_in_input_order() {
        let mut e = ShardedEngine::new(config(100), 4);
        let batch = mixed_batch(257, 1);
        let responses = e.observe_batch(&batch);
        assert_eq!(responses.len(), batch.len());
        for (resp, &(pid, _)) in responses.iter().zip(&batch) {
            assert_eq!(resp.pid, pid);
        }
    }

    #[test]
    fn sharded_matches_single_engine_sequential_and_parallel() {
        for threshold in [usize::MAX, 0] {
            let mut sharded = ShardedEngine::new(config(3), 5);
            sharded.set_parallel_threshold(threshold);
            let mut single = ValkyrieEngine::new(config(3));
            for epoch in 0..6 {
                let batch = mixed_batch(50, epoch);
                let got = sharded.observe_batch(&batch);
                let want: Vec<EngineResponse> = batch
                    .iter()
                    .map(|&(pid, cls)| single.observe(pid, cls))
                    .collect();
                assert_eq!(got, want, "epoch {epoch}, threshold {threshold}");
            }
        }
    }

    #[test]
    fn pool_mode_matches_single_engine() {
        let mut pooled = ShardedEngine::with_mode(config(3), 5, 0, ExecutionMode::Pool);
        let mut single = ValkyrieEngine::new(config(3));
        for epoch in 0..6 {
            let batch = mixed_batch(50, epoch);
            let got = pooled.observe_batch(&batch);
            let want: Vec<EngineResponse> = batch
                .iter()
                .map(|&(pid, cls)| single.observe(pid, cls))
                .collect();
            assert_eq!(got, want, "epoch {epoch}");
        }
    }

    #[test]
    fn repeated_pid_within_a_batch_is_applied_in_order() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut sharded = ShardedEngine::with_mode(config(100), 7, 0, mode);
            let mut single = ValkyrieEngine::new(config(100));
            let pid = ProcessId(11);
            let batch = vec![
                (pid, Malicious),
                (pid, Malicious),
                (pid, Benign),
                (pid, Malicious),
            ];
            let got = sharded.observe_batch(&batch);
            let want: Vec<EngineResponse> = batch
                .iter()
                .map(|&(pid, cls)| single.observe(pid, cls))
                .collect();
            assert_eq!(got, want, "{mode:?}");
        }
    }

    #[test]
    fn shard_placement_is_deterministic_and_total() {
        let e = ShardedEngine::new(config(5), 16);
        for pid in 0..1000 {
            let s = e.shard_of(ProcessId(pid));
            assert!(s < 16);
            assert_eq!(s, e.shard_of(ProcessId(pid)));
        }
    }

    #[test]
    fn tick_advances_epoch_and_purges_terminated() {
        let mut e = ShardedEngine::new(config(2), 4);
        // Pid 1 is attacked every epoch; terminated at its 3rd observation.
        let batch = vec![(ProcessId(1), Malicious), (ProcessId(2), Benign)];
        e.tick(&batch);
        e.tick(&batch);
        assert_eq!(e.tracked(), 2);
        let responses = e.tick(&batch);
        assert_eq!(responses[0].action, Action::Terminate);
        // The terminated process is evicted by the same tick...
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(ProcessId(1)), None);
        assert_eq!(e.epoch(), 3);
        assert_eq!(e.purged_total(), 1);
        // ...and re-observing it registers a fresh process.
        let responses = e.tick(&batch);
        assert_eq!(responses[0].state, ProcessState::Suspicious);
    }

    /// Regression: `purged_total` used to be incremented only by `tick`,
    /// so direct `purge_terminated()` calls silently went uncounted and
    /// the doc on the counter lied.
    #[test]
    fn direct_purge_calls_are_counted_too() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut e = ShardedEngine::with_mode(config(2), 4, 0, mode);
            let batch = vec![(ProcessId(1), Malicious), (ProcessId(2), Benign)];
            // Drive pid 1 to termination via observe_batch (no tick, so
            // nothing is purged yet).
            for _ in 0..3 {
                e.observe_batch(&batch);
            }
            assert_eq!(e.state(ProcessId(1)), Some(ProcessState::Terminated));
            assert_eq!(e.purged_total(), 0, "{mode:?}");
            assert_eq!(e.purge_terminated(), 1, "{mode:?}");
            assert_eq!(e.purged_total(), 1, "{mode:?}");
            // An empty purge adds nothing; a tick-driven purge still counts.
            assert_eq!(e.purge_terminated(), 0, "{mode:?}");
            assert_eq!(e.purged_total(), 1, "{mode:?}");
            for _ in 0..3 {
                e.tick(&batch);
            }
            assert_eq!(e.purged_total(), 2, "{mode:?}");
        }
    }

    /// Regression: the partition scratch used to retain the peak capacity
    /// of the largest batch ever seen for the engine's whole life.
    #[test]
    fn scratch_capacity_returns_to_steady_state_after_an_outlier_batch() {
        let mut e = ShardedEngine::new(config(1_000_000), 4);
        e.set_parallel_threshold(0); // force the partitioned path
        let steady = mixed_batch(64, 0);
        e.observe_batch(&steady);
        let steady_cap = e.scratch_capacity();

        let outlier = mixed_batch(100_000, 0);
        e.observe_batch(&outlier);
        assert!(
            e.scratch_capacity() >= 100_000,
            "outlier batch should grow the scratch ({})",
            e.scratch_capacity()
        );

        // The next steady-state batch shrinks the scratch back: well below
        // the outlier's footprint, within the shrink policy's slack of the
        // steady-state need.
        e.observe_batch(&steady);
        let after = e.scratch_capacity();
        assert!(
            after < 100_000 / 4,
            "scratch stayed near peak after the outlier: {after}"
        );
        assert!(
            after <= steady_cap.max(8 * SCRATCH_MIN_CAPACITY * SCRATCH_SHRINK_FACTOR),
            "scratch did not return to steady state: {after} vs {steady_cap}"
        );
    }

    /// Regression: the inline fast path used to return before any shrink
    /// ran, so in the default configuration (threshold 512, small steady
    /// batches) one forced outlier batch pinned the scratch at its peak
    /// for the engine's life.
    #[test]
    fn inline_fast_path_also_releases_outlier_scratch() {
        let mut e = ShardedEngine::new(config(1_000_000), 4);
        e.set_parallel_threshold(0); // force one partitioned outlier batch
        e.observe_batch(&mixed_batch(100_000, 0));
        assert!(e.scratch_capacity() >= 100_000);

        // Back to the default crossover: the next small batch takes the
        // inline path (it is below the threshold — and on a single-core
        // host would bypass partitioning regardless), which must still
        // release the outlier's scratch.
        e.set_parallel_threshold(DEFAULT_PARALLEL_THRESHOLD);
        e.observe_batch(&mixed_batch(64, 1));
        assert!(
            e.scratch_capacity() < 100_000 / 4,
            "inline path left the outlier scratch pinned: {}",
            e.scratch_capacity()
        );
    }

    #[test]
    fn aggregate_queries_route_to_the_owning_shard() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut e = ShardedEngine::with_mode(config(50), 8, 0, mode);
            e.observe(ProcessId(3), Malicious);
            e.observe(ProcessId(4), Benign);
            assert_eq!(e.state(ProcessId(3)), Some(ProcessState::Suspicious));
            assert!(e.resources(ProcessId(3)).unwrap().cpu < 1.0);
            assert!(e.threat(ProcessId(4)).unwrap().is_zero());
            assert_eq!(e.tracked(), 2);
            assert_eq!(e.tracked_live(), 2);
            let mut pids: Vec<u64> = e.iter().map(|(pid, _, _)| pid.0).collect();
            pids.sort_unstable();
            assert_eq!(pids, vec![3, 4]);
            e.complete(ProcessId(4)).unwrap();
            assert_eq!(e.tracked_live(), 1);
            e.forget(ProcessId(3));
            assert_eq!(e.tracked(), 1);
            assert!(e.complete(ProcessId(3)).is_err());
        }
    }

    #[test]
    fn with_capacity_pre_sizes_every_shard() {
        let mut e = ShardedEngine::with_capacity(config(1000), 4, 8_192);
        let batch = mixed_batch(8_192, 0);
        let responses = e.observe_batch(&batch);
        assert_eq!(responses.len(), 8_192);
        assert_eq!(e.tracked(), 8_192);
    }

    #[test]
    fn mode_round_trip_preserves_all_state() {
        let mut e = ShardedEngine::new(config(100), 7);
        e.observe_batch(&mixed_batch(50, 0));
        let before: Vec<_> = {
            let mut v: Vec<_> = e.iter().collect();
            v.sort_by_key(|(pid, _, _)| pid.0);
            v
        };

        e.set_execution_mode(ExecutionMode::Pool);
        assert_eq!(e.execution_mode(), ExecutionMode::Pool);
        assert!(e.pool_workers().unwrap() >= 1);
        let mut pooled: Vec<_> = e.iter().collect();
        pooled.sort_by_key(|(pid, _, _)| pid.0);
        assert_eq!(pooled, before);

        // Keep observing in pool mode, then demote and compare against an
        // engine that stayed scoped the whole time.
        e.observe_batch(&mixed_batch(50, 1));
        e.set_execution_mode(ExecutionMode::ScopedSpawn);
        assert_eq!(e.execution_mode(), ExecutionMode::ScopedSpawn);
        assert_eq!(e.pool_workers(), None);

        let mut reference = ShardedEngine::new(config(100), 7);
        reference.observe_batch(&mixed_batch(50, 0));
        reference.observe_batch(&mixed_batch(50, 1));
        let sorted = |engine: &ShardedEngine| {
            let mut v: Vec<_> = engine.iter().collect();
            v.sort_by_key(|(pid, _, _)| pid.0);
            v
        };
        assert_eq!(sorted(&e), sorted(&reference));
    }

    #[test]
    fn set_execution_mode_is_idempotent() {
        let mut e = ShardedEngine::new(config(5), 3);
        e.observe(ProcessId(1), Malicious);
        e.set_execution_mode(ExecutionMode::ScopedSpawn); // already scoped
        assert_eq!(e.tracked(), 1);
        e.set_execution_mode(ExecutionMode::Pool);
        e.set_execution_mode(ExecutionMode::Pool); // already pooled
        assert_eq!(e.tracked(), 1);
    }

    #[test]
    fn set_pool_workers_rebuilds_with_explicit_count() {
        let mut e = ShardedEngine::new(config(50), 8);
        e.observe(ProcessId(5), Malicious);
        e.set_pool_workers(3);
        assert_eq!(e.execution_mode(), ExecutionMode::Pool);
        assert_eq!(e.pool_workers(), Some(3));
        assert_eq!(e.state(ProcessId(5)), Some(ProcessState::Suspicious));
        // Rebuilding from pool mode also preserves state.
        e.set_pool_workers(8);
        assert_eq!(e.pool_workers(), Some(8));
        assert_eq!(e.state(ProcessId(5)), Some(ProcessState::Suspicious));
    }

    #[test]
    fn drain_tick_matches_tick_in_both_modes() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut sync = ShardedEngine::with_mode(config(3), 5, 0, mode);
            let mut async_ = ShardedEngine::with_mode(config(3), 5, 0, mode);
            let publisher = async_.enable_ingest(1024, OverflowPolicy::Block);
            for epoch in 0..6 {
                let batch = mixed_batch(50, epoch);
                assert_eq!(publisher.publish_batch(&batch), batch.len());
                let got = async_.drain_tick();
                let want = sync.tick(&batch);
                assert_eq!(got, want, "epoch {epoch}, {mode:?}");
            }
            assert_eq!(async_.epoch(), sync.epoch());
            assert_eq!(async_.purged_total(), sync.purged_total());
            let stats = async_.ingest_stats().unwrap();
            assert_eq!(stats.dropped, 0, "{mode:?}");
            assert_eq!(stats.published, stats.drained, "{mode:?}");
            assert_eq!(stats.queued, 0, "{mode:?}");
        }
    }

    #[test]
    fn drain_on_empty_rings_is_a_no_op_tick() {
        let mut e = ShardedEngine::new(config(3), 4);
        let _publisher = e.enable_ingest(16, OverflowPolicy::Block);
        let responses = e.drain_tick();
        assert!(responses.is_empty());
        assert_eq!(e.epoch(), 1, "the driver still ticks on schedule");
    }

    #[test]
    #[should_panic(expected = "enable_ingest")]
    fn drain_without_ingest_is_a_programming_error() {
        let mut e = ShardedEngine::new(config(3), 4);
        let _ = e.drain_tick();
    }

    /// Mode switches carry the ingest rings along: observations queued in
    /// one mode are drained in the other, publishers stay valid.
    #[test]
    fn mode_round_trip_preserves_queued_observations() {
        let mut e = ShardedEngine::new(config(100), 7);
        let publisher = e.enable_ingest(64, OverflowPolicy::Block);
        publisher.publish(ProcessId(1), Malicious);
        publisher.publish(ProcessId(2), Benign);
        e.set_execution_mode(ExecutionMode::Pool);
        publisher.publish(ProcessId(3), Malicious);
        let responses = e.drain_tick();
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].pid, ProcessId(1));
        assert_eq!(responses[2].pid, ProcessId(3));
        // And back: the scoped drain path reads the same rings.
        e.set_execution_mode(ExecutionMode::ScopedSpawn);
        publisher.publish(ProcessId(4), Malicious);
        assert_eq!(e.drain_tick().len(), 1);
        assert!(!publisher.is_closed());
    }

    /// Re-enabling ingest closes the old rings (their publishers go dead)
    /// without touching engine state; dropping the engine closes too, so
    /// blocked detector threads cannot outlive it.
    #[test]
    fn re_enabling_and_drop_close_the_old_rings() {
        let mut e = ShardedEngine::new(config(3), 4);
        let first = e.enable_ingest(16, OverflowPolicy::Block);
        assert!(first.publish(ProcessId(1), Malicious));
        let second = e.enable_ingest(16, OverflowPolicy::DropOldest);
        assert!(first.is_closed());
        assert!(!first.publish(ProcessId(2), Malicious));
        assert!(second.publish(ProcessId(3), Malicious));
        assert_eq!(e.drain_tick().len(), 1, "only the live rings drain");
        drop(e);
        assert!(second.is_closed());
        assert!(!second.publish(ProcessId(4), Malicious));
    }

    /// The sharded verdict path must agree with a single shard fed the
    /// same batch, in both execution modes: same fused responses (modulo
    /// shard grouping), same fusion counters.
    #[test]
    fn verdict_batch_matches_single_shard_in_both_modes() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut sharded = ShardedEngine::with_mode(config(3), 5, 0, mode);
            let mut single = crate::engine::EngineShard::new(config(3));
            for epoch in 0..5u64 {
                let batch: Vec<(ProcessId, Verdict)> = (0..40)
                    .flat_map(|pid| {
                        let fast = f64::from(u32::from((pid + epoch) % 3 == 0));
                        let slow = f64::from(u32::from(pid % 5 == 0));
                        [
                            (ProcessId(pid), Verdict::new(0, fast)),
                            (ProcessId(pid), Verdict::new(1, slow).with_cadence(2)),
                        ]
                    })
                    .collect();
                let mut got = sharded.observe_verdict_batch(&batch);
                let mut want = single.observe_verdict_batch(&batch);
                got.sort_by_key(|r| r.pid.0);
                want.sort_by_key(|r| r.pid.0);
                assert_eq!(got, want, "epoch {epoch}, {mode:?}");
            }
            assert_eq!(sharded.fusion_stats(), single.fusion_stats().clone());
            assert_eq!(sharded.fusion_stats().verdicts, 5 * 40 * 2);
        }
    }

    /// Verdicts published over their own rings and drained by the epoch
    /// driver match the synchronous verdict batch path.
    #[test]
    fn verdict_drain_tick_matches_verdict_batch_in_both_modes() {
        for mode in [ExecutionMode::ScopedSpawn, ExecutionMode::Pool] {
            let mut sync = ShardedEngine::with_mode(config(3), 5, 0, mode);
            let mut async_ = ShardedEngine::with_mode(config(3), 5, 0, mode);
            let publisher = async_.enable_verdict_ingest(1024, OverflowPolicy::Block);
            for epoch in 0..6u64 {
                let batch: Vec<(ProcessId, Verdict)> = (0..50)
                    .map(|pid| {
                        let conf = if (pid + epoch) % 7 == 0 { 1.0 } else { 0.25 };
                        (ProcessId(pid), Verdict::new(0, conf))
                    })
                    .collect();
                assert_eq!(publisher.publish_batch(&batch), batch.len());
                let mut got = async_.drain_tick();
                let mut want = sync.observe_verdict_batch(&batch);
                sync.epoch += 1;
                sync.purge_terminated();
                got.sort_by_key(|r| r.pid.0);
                want.sort_by_key(|r| r.pid.0);
                assert_eq!(got, want, "epoch {epoch}, {mode:?}");
            }
            assert_eq!(async_.epoch(), sync.epoch());
            let stats = async_.verdict_ingest_stats().unwrap();
            assert_eq!(stats.dropped, 0, "{mode:?}");
            assert_eq!(stats.published, stats.drained, "{mode:?}");
        }
    }

    /// Binary and verdict rings drain side by side: one drain serves both,
    /// binary responses first.
    #[test]
    fn dual_ingest_drains_binary_then_verdicts() {
        let mut e = ShardedEngine::new(config(10), 4);
        let binary = e.enable_ingest(64, OverflowPolicy::Block);
        let fused = e.enable_verdict_ingest(64, OverflowPolicy::Block);
        binary.publish(ProcessId(1), Malicious);
        fused.publish(ProcessId(2), Verdict::new(0, 1.0));
        let responses = e.drain_tick();
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].pid, ProcessId(1));
        assert_eq!(responses[1].pid, ProcessId(2));
        assert_eq!(e.fusion_stats().verdicts, 1);
        // Verdict-only ingest also drains (no binary rings required).
        let mut e = ShardedEngine::new(config(10), 4);
        let fused = e.enable_verdict_ingest(64, OverflowPolicy::Block);
        fused.publish(ProcessId(3), Verdict::new(0, 1.0));
        assert_eq!(e.drain_tick().len(), 1);
    }

    /// Mode switches carry the verdict rings along, like the binary rings.
    #[test]
    fn mode_round_trip_preserves_queued_verdicts() {
        let mut e = ShardedEngine::new(config(100), 7);
        let publisher = e.enable_verdict_ingest(64, OverflowPolicy::Block);
        publisher.publish(ProcessId(1), Verdict::new(0, 1.0));
        e.set_execution_mode(ExecutionMode::Pool);
        publisher.publish(ProcessId(2), Verdict::new(1, 0.0));
        assert_eq!(e.drain_tick().len(), 2);
        e.set_execution_mode(ExecutionMode::ScopedSpawn);
        publisher.publish(ProcessId(3), Verdict::new(0, 1.0));
        assert_eq!(e.drain_tick().len(), 1);
        assert!(!publisher.is_closed());
        drop(e);
        assert!(publisher.is_closed());
    }

    #[test]
    fn single_shard_pool_works() {
        let mut e = ShardedEngine::with_mode(config(2), 1, 0, ExecutionMode::Pool);
        let batch = vec![(ProcessId(1), Malicious), (ProcessId(2), Benign)];
        e.tick(&batch);
        e.tick(&batch);
        let responses = e.tick(&batch);
        assert_eq!(responses[0].action, Action::Terminate);
        assert_eq!(e.purged_total(), 1);
        assert_eq!(e.pool_workers(), Some(1));
    }
}
