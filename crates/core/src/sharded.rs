//! The scaling tier: a sharded, batch-oriented Valkyrie engine.
//!
//! The paper's engine answers one detector inference at a time; a
//! production deployment watches **thousands of processes per tick**. A
//! [`ShardedEngine`] partitions processes by [`ProcessId`] hash across `N`
//! independent [`EngineShard`]s and exposes a batch API:
//! [`ShardedEngine::observe_batch`] feeds one epoch's inferences for the
//! whole fleet and returns the responses in input order, fanning the work
//! out across shards with [`std::thread::scope`] when the batch is large
//! enough to amortise the thread spawns.
//!
//! Algorithm 1 semantics are **bit-for-bit identical** to a single
//! [`ValkyrieEngine`](crate::ValkyrieEngine): the monitor state is strictly
//! per process, shard placement is a pure deterministic function of the
//! pid ([`crate::hash::mix64`]), and observations of the same pid within a
//! batch are applied in batch order by whichever shard owns it. The
//! property tests in `tests/sharding.rs` pin this equivalence for
//! arbitrary interleavings and shard counts.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::prelude::*;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(5)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut engine = ShardedEngine::with_capacity(config, 4, 10_000);
//! let batch: Vec<(ProcessId, Classification)> = (0..10_000)
//!     .map(|pid| (ProcessId(pid), Classification::Benign))
//!     .collect();
//! let responses = engine.tick(&batch);
//! assert_eq!(responses.len(), 10_000);
//! assert_eq!(engine.tracked_live(), 10_000);
//! assert_eq!(engine.epoch(), 1);
//! ```

use crate::actuator::{Actuator, CompositeActuator};
use crate::engine::{EngineConfig, EngineResponse, EngineShard};
use crate::error::ValkyrieError;
use crate::hash::mix64;
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::threat::{Classification, ThreatIndex};

/// Batches smaller than this per call run on the caller's thread even with
/// multiple shards: a few hundred observations finish faster than the
/// spawns they would amortise. Tunable via
/// [`ShardedEngine::set_parallel_threshold`].
const DEFAULT_PARALLEL_THRESHOLD: usize = 512;

/// A fleet-scale engine: `N` independent [`EngineShard`]s behind a batch
/// API plus an epoch-tick driver.
///
/// See the [module docs](self) for the equivalence guarantees.
#[derive(Debug)]
pub struct ShardedEngine<A: Actuator + Clone = CompositeActuator> {
    shards: Vec<EngineShard<A>>,
    epoch: u64,
    purged_total: u64,
    parallel_threshold: usize,
    /// `min(shards, host cores)`, resolved once at construction so the
    /// per-tick hot path never pays the affinity syscall.
    host_workers: usize,
    /// Per-shard partition scratch, reused across batches so the steady
    /// state allocates nothing on the partition side.
    parts: Vec<Vec<(ProcessId, Classification)>>,
    origins: Vec<Vec<usize>>,
}

impl<A: Actuator + Clone + Send> ShardedEngine<A> {
    /// Creates an engine with `shards` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: EngineConfig<A>, shards: usize) -> Self {
        Self::with_capacity(config, shards, 0)
    }

    /// Creates an engine with `shards` partitions, each pre-sized for its
    /// share of `expected_procs` processes (see
    /// [`EngineShard::with_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_capacity(config: EngineConfig<A>, shards: usize, expected_procs: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let per_shard = expected_procs.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| EngineShard::with_capacity(config.clone(), per_shard))
                .collect(),
            epoch: 0,
            purged_total: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            host_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(shards),
            parts: vec![Vec::new(); shards],
            origins: vec![Vec::new(); shards],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared configuration (every shard holds a clone of it).
    pub fn config(&self) -> &EngineConfig<A> {
        self.shards[0].config()
    }

    /// Epochs driven so far via [`Self::tick`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Terminated processes evicted so far by [`Self::tick`] /
    /// [`Self::purge_terminated`].
    pub fn purged_total(&self) -> u64 {
        self.purged_total
    }

    /// Overrides the batch size below which [`Self::observe_batch`] stays
    /// on the caller's thread. Shard placement and results are unaffected —
    /// this only moves the sequential/parallel crossover. A threshold of
    /// `0` forces the spawn path even on a single-core host (useful for
    /// equivalence tests; pure overhead otherwise). A one-shard engine
    /// always runs inline regardless: there is nothing to fan out.
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// The shard that owns `pid`: a pure function of the pid, stable across
    /// runs and platforms for a fixed shard count.
    pub fn shard_of(&self, pid: ProcessId) -> usize {
        (mix64(pid.0) % self.shards.len() as u64) as usize
    }

    /// Number of processes currently tracked across all shards,
    /// **terminated ones included** (they stay queryable until purged).
    pub fn tracked(&self) -> usize {
        self.shards.iter().map(EngineShard::tracked).sum()
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        self.shards.iter().map(EngineShard::tracked_live).sum()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.shards[self.shard_of(pid)].state(pid)
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.shards[self.shard_of(pid)].threat(pid)
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.shards[self.shard_of(pid)].resources(pid)
    }

    /// Feeds one inference for one process (the compatibility path; batch
    /// embedders should use [`Self::observe_batch`]).
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        let shard = self.shard_of(pid);
        self.shards[shard].observe(pid, inference)
    }

    /// Feeds one epoch's detector inferences for the whole fleet and
    /// returns one response per observation, **in input order**.
    ///
    /// Observations are partitioned by owning shard; each shard applies its
    /// observations in batch order. Batches worth parallelising run the
    /// shards across the host's available cores with
    /// [`std::thread::scope`] (shards are chunked onto `min(shards, cores)`
    /// worker threads); small batches — and single-core hosts, where a
    /// spawn is pure loss — stay on the caller's thread and skip the
    /// partition/scatter passes entirely. Results are identical either way
    /// because shards share no per-process state.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        if self.shards.len() == 1 {
            return self.shards[0].observe_batch(batch);
        }

        let nshards = self.shards.len();
        let force_spawns = self.parallel_threshold == 0;
        let workers = if force_spawns {
            nshards
        } else {
            self.host_workers
        };
        if !force_spawns && (workers <= 1 || batch.len() < self.parallel_threshold) {
            // No parallelism to win (single-core host, or a batch too
            // small to amortise the spawns): route each observation
            // straight to its shard. This skips the partition and scatter
            // passes entirely — measured on the 10k bench they cost more
            // than the observe work they reorganise.
            let mut out = Vec::with_capacity(batch.len());
            for &(pid, inference) in batch {
                let shard = (mix64(pid.0) % nshards as u64) as usize;
                out.push(self.shards[shard].observe(pid, inference));
            }
            return out;
        }

        // Partition into per-shard work lists (reused scratch), remembering
        // each observation's position in the input batch.
        for (part, origin) in self.parts.iter_mut().zip(&mut self.origins) {
            part.clear();
            origin.clear();
        }
        for (i, &(pid, inference)) in batch.iter().enumerate() {
            let shard = (mix64(pid.0) % nshards as u64) as usize;
            self.parts[shard].push((pid, inference));
            self.origins[shard].push(i);
        }

        // Chunk the shards onto the workers so an 8-shard engine on a
        // 4-core host costs 4 spawns, not 8.
        let chunk = nshards.div_ceil(workers);
        let results: Vec<Vec<EngineResponse>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(chunk)
                .zip(self.parts.chunks(chunk))
                .map(|(shard_chunk, part_chunk)| {
                    scope.spawn(move || {
                        shard_chunk
                            .iter_mut()
                            .zip(part_chunk)
                            .map(|(shard, part)| shard.observe_batch(part))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("engine shard panicked"))
                .collect()
        });

        // Scatter back to input order. Every slot is overwritten: the
        // partition covers each input index exactly once.
        let placeholder = EngineResponse {
            pid: ProcessId(u64::MAX),
            state: ProcessState::Normal,
            threat: ThreatIndex::zero(),
            resources: ResourceVector::FULL,
            action: crate::engine::Action::None,
        };
        let mut out = vec![placeholder; batch.len()];
        for (indices, responses) in self.origins.iter().zip(results) {
            for (&i, response) in indices.iter().zip(responses) {
                out[i] = response;
            }
        }
        out
    }

    /// The epoch driver: feeds one tick's batch, advances the epoch
    /// counter, and evicts terminated processes so the fleet map cannot
    /// grow without bound.
    ///
    /// Responses still report the terminal observation (the embedder must
    /// enact [`Action::Terminate`](crate::Action::Terminate)); the
    /// bookkeeping is dropped immediately afterwards, so re-observing a
    /// terminated pid on a later tick registers a *fresh* process.
    /// Embedders that need post-mortem queries should use
    /// [`Self::observe_batch`] and purge on their own schedule.
    pub fn tick(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let responses = self.observe_batch(batch);
        self.epoch += 1;
        self.purged_total += self.purge_terminated() as u64;
        responses
    }

    /// Evicts every terminated process across all shards, returning how
    /// many were dropped (see [`EngineShard::purge_terminated`]).
    pub fn purge_terminated(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(EngineShard::purge_terminated)
            .sum()
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let shard = self.shard_of(pid);
        self.shards[shard].complete(pid)
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        let shard = self.shard_of(pid);
        self.shards[shard].forget(pid);
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes, shard
    /// by shard (no global ordering).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.shards.iter().flat_map(EngineShard::iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::{Action, ValkyrieEngine};
    use Classification::{Benign, Malicious};

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    fn mixed_batch(procs: u64, epoch: u64) -> Vec<(ProcessId, Classification)> {
        (0..procs)
            .map(|pid| {
                let cls = if (pid + epoch).is_multiple_of(7) {
                    Malicious
                } else {
                    Benign
                };
                (ProcessId(pid), cls)
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedEngine::new(config(5), 0);
    }

    #[test]
    fn batch_responses_are_in_input_order() {
        let mut e = ShardedEngine::new(config(100), 4);
        let batch = mixed_batch(257, 1);
        let responses = e.observe_batch(&batch);
        assert_eq!(responses.len(), batch.len());
        for (resp, &(pid, _)) in responses.iter().zip(&batch) {
            assert_eq!(resp.pid, pid);
        }
    }

    #[test]
    fn sharded_matches_single_engine_sequential_and_parallel() {
        for threshold in [usize::MAX, 0] {
            let mut sharded = ShardedEngine::new(config(3), 5);
            sharded.set_parallel_threshold(threshold);
            let mut single = ValkyrieEngine::new(config(3));
            for epoch in 0..6 {
                let batch = mixed_batch(50, epoch);
                let got = sharded.observe_batch(&batch);
                let want: Vec<EngineResponse> = batch
                    .iter()
                    .map(|&(pid, cls)| single.observe(pid, cls))
                    .collect();
                assert_eq!(got, want, "epoch {epoch}, threshold {threshold}");
            }
        }
    }

    #[test]
    fn repeated_pid_within_a_batch_is_applied_in_order() {
        let mut sharded = ShardedEngine::new(config(100), 7);
        let mut single = ValkyrieEngine::new(config(100));
        let pid = ProcessId(11);
        let batch = vec![
            (pid, Malicious),
            (pid, Malicious),
            (pid, Benign),
            (pid, Malicious),
        ];
        let got = sharded.observe_batch(&batch);
        let want: Vec<EngineResponse> = batch
            .iter()
            .map(|&(pid, cls)| single.observe(pid, cls))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_placement_is_deterministic_and_total() {
        let e = ShardedEngine::new(config(5), 16);
        for pid in 0..1000 {
            let s = e.shard_of(ProcessId(pid));
            assert!(s < 16);
            assert_eq!(s, e.shard_of(ProcessId(pid)));
        }
    }

    #[test]
    fn tick_advances_epoch_and_purges_terminated() {
        let mut e = ShardedEngine::new(config(2), 4);
        // Pid 1 is attacked every epoch; terminated at its 3rd observation.
        let batch = vec![(ProcessId(1), Malicious), (ProcessId(2), Benign)];
        e.tick(&batch);
        e.tick(&batch);
        assert_eq!(e.tracked(), 2);
        let responses = e.tick(&batch);
        assert_eq!(responses[0].action, Action::Terminate);
        // The terminated process is evicted by the same tick...
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(ProcessId(1)), None);
        assert_eq!(e.epoch(), 3);
        assert_eq!(e.purged_total(), 1);
        // ...and re-observing it registers a fresh process.
        let responses = e.tick(&batch);
        assert_eq!(responses[0].state, ProcessState::Suspicious);
    }

    #[test]
    fn aggregate_queries_route_to_the_owning_shard() {
        let mut e = ShardedEngine::new(config(50), 8);
        e.observe(ProcessId(3), Malicious);
        e.observe(ProcessId(4), Benign);
        assert_eq!(e.state(ProcessId(3)), Some(ProcessState::Suspicious));
        assert!(e.resources(ProcessId(3)).unwrap().cpu < 1.0);
        assert!(e.threat(ProcessId(4)).unwrap().is_zero());
        assert_eq!(e.tracked(), 2);
        assert_eq!(e.tracked_live(), 2);
        let mut pids: Vec<u64> = e.iter().map(|(pid, _, _)| pid.0).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![3, 4]);
        e.complete(ProcessId(4)).unwrap();
        assert_eq!(e.tracked_live(), 1);
        e.forget(ProcessId(3));
        assert_eq!(e.tracked(), 1);
        assert!(e.complete(ProcessId(3)).is_err());
    }

    #[test]
    fn with_capacity_pre_sizes_every_shard() {
        let mut e = ShardedEngine::with_capacity(config(1000), 4, 8_192);
        let batch = mixed_batch(8_192, 0);
        let responses = e.observe_batch(&batch);
        assert_eq!(responses.len(), 8_192);
        assert_eq!(e.tracked(), 8_192);
    }
}
