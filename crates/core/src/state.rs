//! The per-process execution states of Fig. 3.

use std::fmt;

/// Execution state of a monitored process (paper Fig. 3).
///
/// Every process starts in [`ProcessState::Normal`]. A malicious inference
/// raises the threat index and moves it to [`ProcessState::Suspicious`]. The
/// process returns to *normal* if the threat index decays back to zero. Once
/// the detector has accumulated the `N*` measurements required to reach the
/// user-specified efficacy, the process becomes [`ProcessState::Terminable`]:
/// the next malicious classification (or completion) moves it to
/// [`ProcessState::Terminated`], while benign classifications restore its
/// resources and let it run.
///
/// # Examples
///
/// ```
/// use valkyrie_core::ProcessState;
/// assert!(ProcessState::Suspicious.is_throttleable());
/// assert!(!ProcessState::Terminated.is_live());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessState {
    /// Threat index is zero and fewer than `N*` measurements were captured.
    #[default]
    Normal,
    /// Threat index is positive; resources are being regulated.
    Suspicious,
    /// `N*` measurements captured: the detector has reached the required
    /// efficacy and may now terminate the process.
    Terminable,
    /// The process was terminated (or completed execution).
    Terminated,
}

impl ProcessState {
    /// True while the process has not been terminated.
    pub fn is_live(self) -> bool {
        self != ProcessState::Terminated
    }

    /// True in the state where Valkyrie regulates resources per epoch.
    pub fn is_throttleable(self) -> bool {
        self == ProcessState::Suspicious
    }

    /// Valid successor states according to Fig. 3 (self-loops included).
    pub fn successors(self) -> &'static [ProcessState] {
        use ProcessState::*;
        match self {
            Normal => &[Normal, Suspicious, Terminable, Terminated],
            Suspicious => &[Suspicious, Normal, Terminable, Terminated],
            Terminable => &[Terminable, Terminated],
            Terminated => &[Terminated],
        }
    }

    /// True if `next` is a legal transition from `self` per Fig. 3.
    pub fn can_transition_to(self, next: ProcessState) -> bool {
        self.successors().contains(&next)
    }
}

impl fmt::Display for ProcessState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessState::Normal => "normal",
            ProcessState::Suspicious => "suspicious",
            ProcessState::Terminable => "terminable",
            ProcessState::Terminated => "terminated",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProcessState::*;

    #[test]
    fn default_is_normal() {
        assert_eq!(ProcessState::default(), Normal);
    }

    #[test]
    fn terminated_is_absorbing() {
        for s in [Normal, Suspicious, Terminable] {
            assert!(!Terminated.can_transition_to(s), "terminated -> {s}");
        }
        assert!(Terminated.can_transition_to(Terminated));
    }

    #[test]
    fn terminable_cannot_return() {
        assert!(!Terminable.can_transition_to(Normal));
        assert!(!Terminable.can_transition_to(Suspicious));
        assert!(Terminable.can_transition_to(Terminated));
    }

    #[test]
    fn suspicious_recovers_to_normal() {
        assert!(Suspicious.can_transition_to(Normal));
        assert!(Normal.can_transition_to(Suspicious));
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Suspicious.to_string(), "suspicious");
    }
}
