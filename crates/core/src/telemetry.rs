//! Response telemetry: an audit log over engine responses.
//!
//! A deployment of Valkyrie needs to answer two operator questions after the
//! fact: *what did the response layer do to each process* (for incident
//! forensics), and *how much benign work did false positives cost* (the R2
//! accounting of Section V-C). [`ResponseLog`] records every
//! [`EngineResponse`] and maintains per-process summaries so both questions
//! have cheap answers without replaying the detector.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::prelude::*;
//! use valkyrie_core::telemetry::ResponseLog;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(3)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()?;
//! let mut engine = ValkyrieEngine::new(config);
//! let mut log = ResponseLog::new();
//!
//! let pid = ProcessId(9);
//! for epoch in 1..=4 {
//!     let resp = engine.observe(pid, Classification::Malicious);
//!     log.record(epoch, &resp);
//! }
//! let s = log.summary(pid).expect("recorded");
//! assert!(s.terminated);
//! assert!(s.throttled_epochs >= 2);
//! assert_eq!(log.terminations(), 1);
//! # Ok::<(), valkyrie_core::ValkyrieError>(())
//! ```

use crate::engine::{Action, EngineResponse};
use crate::resource::ProcessId;
use crate::state::ProcessState;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Counters of the async ingest tier (see [`crate::ingest`]): how many
/// observations the detector threads published, how many the drains
/// consumed, and — the operator question that matters under overload —
/// how many were lost or merged by the overflow policy.
///
/// Snapshot via
/// [`ShardedEngine::ingest_stats`](crate::ShardedEngine::ingest_stats) or
/// [`IngestPublisher::stats`](crate::ingest::IngestPublisher::stats).
/// Dropped observations are never silent: a non-zero `dropped` (or a
/// growing `coalesced`) is the signal to resize the rings or slow the
/// detector tier down.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Observations accepted by the rings (coalesced ones included).
    pub published: u64,
    /// Observations handed to the engine by drains.
    pub drained: u64,
    /// Observations evicted by `DropOldest` (or `Coalesce`'s fallback).
    pub dropped: u64,
    /// Observations merged into an existing same-(pid, key) entry by
    /// `Coalesce`.
    pub coalesced: u64,
    /// Observations currently waiting in the rings (both lanes).
    pub queued: usize,
    /// Observations routed through the priority lane because the engine's
    /// threat hints marked their pid suspicious (defended rings only).
    pub priority_queued: u64,
    /// Overflow evictions that fair queueing redirected away from the
    /// publisher the naive policy would have victimised — each one is an
    /// observation a flooding publisher failed to destroy.
    pub evictions_deflected: u64,
    /// Evictions charged to each publisher handle (index = publisher id;
    /// id 0 is the engine's driver-side handle, detector handles take
    /// 1..). Empty until something is dropped.
    pub dropped_by_publisher: Vec<u64>,
}

impl IngestStats {
    /// Observations that never reached the engine (evictions; coalesced
    /// observations *did* reach it, merged into their successor).
    pub fn lost(&self) -> u64 {
        self.dropped
    }

    /// Folds another queue set's counters into this one (per-publisher
    /// tallies are summed index-aligned, as the fleet tier hands every
    /// group the same publisher-id assignment order).
    pub fn merge(&mut self, other: &IngestStats) {
        self.published += other.published;
        self.drained += other.drained;
        self.dropped += other.dropped;
        self.coalesced += other.coalesced;
        self.queued += other.queued;
        self.priority_queued += other.priority_queued;
        self.evictions_deflected += other.evictions_deflected;
        if self.dropped_by_publisher.len() < other.dropped_by_publisher.len() {
            self.dropped_by_publisher
                .resize(other.dropped_by_publisher.len(), 0);
        }
        for (acc, n) in self
            .dropped_by_publisher
            .iter_mut()
            .zip(&other.dropped_by_publisher)
        {
            *acc += n;
        }
    }
}

/// Counters of the verdict-fusion tier: how much per-detector evidence the
/// engine absorbed, how often slow members went stale, and how often the
/// escalation ladder was climbed.
///
/// Escalation transitions are counted on *both* observation paths — a
/// binary `observe` that moves a process from no action to throttling (or
/// to termination) climbs the ladder just like a fused mass does — so the
/// counter is meaningful for legacy deployments too.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FusionStats {
    /// Per-detector verdicts absorbed by the fusion table.
    pub verdicts: u64,
    /// Member contributions down-weighted because their verdict outlived
    /// its cadence (one count per stale member per fused epoch).
    pub stale_decayed: u64,
    /// Upward escalation-ladder transitions into `Throttle` or `Kill`.
    pub escalations: u64,
    /// Verdicts absorbed per detector id (index = detector id).
    pub per_detector: Vec<u64>,
}

impl FusionStats {
    /// Records one absorbed verdict from `detector`.
    pub fn saw(&mut self, detector: u32) {
        self.verdicts += 1;
        let idx = detector as usize;
        if self.per_detector.len() <= idx {
            self.per_detector.resize(idx + 1, 0);
        }
        self.per_detector[idx] += 1;
    }

    /// Folds another shard's counters into this one.
    pub fn merge(&mut self, other: &FusionStats) {
        self.verdicts += other.verdicts;
        self.stale_decayed += other.stale_decayed;
        self.escalations += other.escalations;
        if self.per_detector.len() < other.per_detector.len() {
            self.per_detector.resize(other.per_detector.len(), 0);
        }
        for (mine, theirs) in self.per_detector.iter_mut().zip(&other.per_detector) {
            *mine += theirs;
        }
    }
}

/// One recorded `(epoch, process)` response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogEntry {
    /// Epoch at which the response was recorded (caller-supplied).
    pub epoch: u64,
    /// The process concerned.
    pub pid: ProcessId,
    /// Fig. 3 state after the epoch.
    pub state: ProcessState,
    /// Threat index after the epoch.
    pub threat: f64,
    /// CPU share enforced for the next epoch.
    pub cpu_share: f64,
    /// The action the engine requested.
    pub action: Action,
}

/// Running per-process aggregate maintained by [`ResponseLog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessSummary {
    /// Epochs recorded for this process.
    pub epochs_observed: u64,
    /// Epochs spent with a CPU share below 1 (the throttled time).
    pub throttled_epochs: u64,
    /// Full restorations (`A_reset` or return-to-normal).
    pub restores: u64,
    /// Whether the process was terminated.
    pub terminated: bool,
    /// Lowest CPU share ever enforced.
    pub min_cpu_share: f64,
    /// Sum of enforced CPU shares (for the mean).
    cpu_share_sum: f64,
    /// Highest threat index reached.
    pub peak_threat: f64,
}

impl ProcessSummary {
    fn new() -> Self {
        Self {
            epochs_observed: 0,
            throttled_epochs: 0,
            restores: 0,
            terminated: false,
            min_cpu_share: 1.0,
            cpu_share_sum: 0.0,
            peak_threat: 0.0,
        }
    }

    /// Mean CPU share over the observed epochs (1.0 if none recorded).
    pub fn mean_cpu_share(&self) -> f64 {
        if self.epochs_observed == 0 {
            1.0
        } else {
            self.cpu_share_sum / self.epochs_observed as f64
        }
    }

    /// The Eq. 4 slowdown estimate implied by the recorded shares, assuming
    /// CPU-share-proportional progress.
    pub fn slowdown_percent(&self) -> f64 {
        (1.0 - self.mean_cpu_share()) * 100.0
    }
}

/// An append-only audit log of engine responses with per-process summaries.
#[derive(Debug, Clone, Default)]
pub struct ResponseLog {
    entries: Vec<LogEntry>,
    summaries: HashMap<ProcessId, ProcessSummary>,
}

impl ResponseLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one engine response observed at `epoch`.
    pub fn record(&mut self, epoch: u64, response: &EngineResponse) {
        let entry = LogEntry {
            epoch,
            pid: response.pid,
            state: response.state,
            threat: response.threat.value(),
            cpu_share: response.resources.cpu,
            action: response.action,
        };
        let s = self
            .summaries
            .entry(response.pid)
            .or_insert_with(ProcessSummary::new);
        s.epochs_observed += 1;
        s.cpu_share_sum += entry.cpu_share;
        if entry.cpu_share < 1.0 {
            s.throttled_epochs += 1;
        }
        if entry.cpu_share < s.min_cpu_share {
            s.min_cpu_share = entry.cpu_share;
        }
        if entry.threat > s.peak_threat {
            s.peak_threat = entry.threat;
        }
        match entry.action {
            Action::Restore | Action::RestoreAndRecycle => s.restores += 1,
            Action::Terminate => s.terminated = true,
            Action::None | Action::Throttle | Action::Recover => {}
        }
        self.entries.push(entry);
    }

    /// All recorded entries, in insertion order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries concerning one process, in insertion order.
    pub fn entries_for(&self, pid: ProcessId) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.iter().filter(move |e| e.pid == pid)
    }

    /// The running summary of a process, if any epoch was recorded.
    pub fn summary(&self, pid: ProcessId) -> Option<&ProcessSummary> {
        self.summaries.get(&pid)
    }

    /// Number of processes that were terminated.
    pub fn terminations(&self) -> usize {
        self.summaries.values().filter(|s| s.terminated).count()
    }

    /// Number of processes ever observed.
    pub fn processes(&self) -> usize {
        self.summaries.len()
    }

    /// Total entries recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders a per-process summary table (one line per process, sorted by
    /// process id) for operator consumption.
    pub fn render_summary(&self) -> String {
        let mut pids: Vec<ProcessId> = self.summaries.keys().copied().collect();
        pids.sort_by_key(|p| p.0);
        let mut out = String::from(
            "pid  epochs  throttled  restores  min-share  mean-share  peak-threat  terminated\n",
        );
        for pid in pids {
            let s = &self.summaries[&pid];
            let _ = writeln!(
                out,
                "{:<4} {:<7} {:<10} {:<9} {:<10.2} {:<11.2} {:<12.1} {}",
                pid.0,
                s.epochs_observed,
                s.throttled_epochs,
                s.restores,
                s.min_cpu_share,
                s.mean_cpu_share(),
                s.peak_threat,
                s.terminated,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use crate::engine::{EngineConfig, ValkyrieEngine};
    use crate::threat::Classification;
    use Classification::{Benign, Malicious};

    fn engine(n_star: u64) -> ValkyrieEngine {
        ValkyrieEngine::new(
            EngineConfig::builder()
                .measurements_required(n_star)
                .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
                .build()
                .unwrap(),
        )
    }

    fn drive(log: &mut ResponseLog, e: &mut ValkyrieEngine, pid: ProcessId, cs: &[Classification]) {
        for (i, &c) in cs.iter().enumerate() {
            let resp = e.observe(pid, c);
            log.record(i as u64 + 1, &resp);
        }
    }

    #[test]
    fn empty_log_has_no_processes() {
        let log = ResponseLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.processes(), 0);
        assert_eq!(log.terminations(), 0);
        assert!(log.summary(ProcessId(1)).is_none());
    }

    #[test]
    fn attack_summary_shows_throttle_and_termination() {
        let mut e = engine(3);
        let mut log = ResponseLog::new();
        drive(&mut log, &mut e, ProcessId(1), &[Malicious; 5]);
        let s = log.summary(ProcessId(1)).unwrap();
        assert!(s.terminated);
        assert!(s.throttled_epochs >= 2);
        assert!(s.min_cpu_share < 0.5);
        assert!(s.peak_threat >= 6.0);
        assert_eq!(log.terminations(), 1);
    }

    #[test]
    fn benign_summary_shows_recovery_without_termination() {
        let mut e = engine(100);
        let mut log = ResponseLog::new();
        drive(
            &mut log,
            &mut e,
            ProcessId(2),
            &[Malicious, Malicious, Benign, Benign, Benign, Benign],
        );
        let s = log.summary(ProcessId(2)).unwrap();
        assert!(!s.terminated);
        assert!(s.restores >= 1, "return-to-normal must count as a restore");
        assert!(s.mean_cpu_share() > 0.5);
        assert_eq!(log.terminations(), 0);
    }

    #[test]
    fn mean_share_and_slowdown_are_consistent() {
        let mut e = engine(100);
        let mut log = ResponseLog::new();
        drive(&mut log, &mut e, ProcessId(3), &[Benign; 10]);
        let s = log.summary(ProcessId(3)).unwrap();
        assert_eq!(s.mean_cpu_share(), 1.0);
        assert_eq!(s.slowdown_percent(), 0.0);
        assert_eq!(s.throttled_epochs, 0);
    }

    #[test]
    fn entries_for_filters_by_process() {
        let mut e = engine(50);
        let mut log = ResponseLog::new();
        drive(&mut log, &mut e, ProcessId(1), &[Malicious, Benign]);
        drive(&mut log, &mut e, ProcessId(2), &[Benign; 3]);
        assert_eq!(log.entries_for(ProcessId(1)).count(), 2);
        assert_eq!(log.entries_for(ProcessId(2)).count(), 3);
        assert_eq!(log.len(), 5);
        assert_eq!(log.processes(), 2);
    }

    #[test]
    fn summary_table_renders_every_process() {
        let mut e = engine(50);
        let mut log = ResponseLog::new();
        drive(&mut log, &mut e, ProcessId(7), &[Malicious; 3]);
        drive(&mut log, &mut e, ProcessId(8), &[Benign; 3]);
        let table = log.render_summary();
        assert!(table.contains('7') && table.contains('8'));
        assert!(table.contains("terminated"));
    }

    #[test]
    fn fresh_summary_mean_share_defaults_to_full() {
        let s = ProcessSummary::new();
        assert_eq!(s.mean_cpu_share(), 1.0);
    }

    #[test]
    fn fusion_stats_count_per_detector_and_merge() {
        let mut a = FusionStats::default();
        a.saw(0);
        a.saw(2);
        a.saw(2);
        assert_eq!(a.verdicts, 3);
        assert_eq!(a.per_detector, vec![1, 0, 2]);
        let mut b = FusionStats::default();
        b.saw(1);
        b.escalations = 4;
        b.stale_decayed = 2;
        a.merge(&b);
        assert_eq!(a.verdicts, 4);
        assert_eq!(a.per_detector, vec![1, 1, 2]);
        assert_eq!(a.escalations, 4);
        assert_eq!(a.stale_decayed, 2);
    }
}
