//! Resource shares (`R_i^t`, Eq. 1) and process identifiers.

use std::fmt;

/// Identifier of a monitored process.
///
/// A thin newtype so engine call sites cannot confuse process ids with other
/// integers.
///
/// # Fleet packing
///
/// At fleet scale a process is named by a `(machine, local pid)` pair. The
/// pair packs into the one `u64` — machine id in the high
/// [`MACHINE_BITS`](ProcessId::MACHINE_BITS) bits, local pid in the low
/// [`LOCAL_BITS`](ProcessId::LOCAL_BITS) — so the whole engine tier
/// (sharding, ingest rings, per-process maps) handles cluster-wide names
/// without a second key type. Machine `0` packs to the bare local pid,
/// making the single-machine embedding a strict special case of the fleet:
/// `ProcessId::from_parts(0, p) == ProcessId(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessId(pub u64);

impl ProcessId {
    /// High bits naming the machine: a 24-bit id space (16.7 M machine
    /// boots before wrap), chosen so the low bits still hold any realistic
    /// per-machine pid sequence.
    pub const MACHINE_BITS: u32 = 24;
    /// Low bits naming the process on its machine (2^40 spawns per machine).
    pub const LOCAL_BITS: u32 = 40;

    /// Packs a cluster-wide process name from its machine id and
    /// machine-local pid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `machine` or `local` overflow their bit
    /// fields (a release build would silently alias another process).
    #[inline]
    pub fn from_parts(machine: u32, local: u64) -> Self {
        debug_assert!(
            u64::from(machine) < (1 << Self::MACHINE_BITS),
            "machine id {machine} overflows {} bits",
            Self::MACHINE_BITS
        );
        debug_assert!(
            local < (1 << Self::LOCAL_BITS),
            "local pid {local} overflows {} bits",
            Self::LOCAL_BITS
        );
        ProcessId((u64::from(machine) << Self::LOCAL_BITS) | local)
    }

    /// The machine component of a fleet-packed id (`0` for bare
    /// single-machine pids).
    #[inline]
    pub fn machine(self) -> u32 {
        (self.0 >> Self::LOCAL_BITS) as u32
    }

    /// The machine-local pid component of a fleet-packed id.
    #[inline]
    pub fn local(self) -> u64 {
        self.0 & ((1 << Self::LOCAL_BITS) - 1)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// One of the four throttleable system resources (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU time share (`r_CPU`).
    Cpu,
    /// Memory share relative to the working set (`r_mem`).
    Memory,
    /// Network bandwidth share (`r_nw`).
    Network,
    /// Filesystem access-rate share (`r_fs`).
    Filesystem,
}

impl ResourceKind {
    /// All resource kinds, in `R_i^t` order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Network,
        ResourceKind::Filesystem,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Network => "network",
            ResourceKind::Filesystem => "filesystem",
        };
        f.write_str(s)
    }
}

/// The share of each system resource available to a process
/// (`R_i^t = {r_CPU, r_mem, r_nw, r_fs}`, Eq. 1).
///
/// Every component is a fraction in `[0, 1]` of the process's *default*
/// (unrestricted) allocation; `1.0` everywhere means no restrictions.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{ResourceKind, ResourceVector};
/// let mut r = ResourceVector::full();
/// r.set(ResourceKind::Cpu, 0.25);
/// assert_eq!(r.get(ResourceKind::Cpu), 0.25);
/// assert!(!r.is_full());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    /// CPU time share.
    pub cpu: f64,
    /// Memory share.
    pub mem: f64,
    /// Network bandwidth share.
    pub net: f64,
    /// Filesystem access-rate share.
    pub fs: f64,
}

impl ResourceVector {
    /// All resources unrestricted.
    pub const FULL: ResourceVector = ResourceVector {
        cpu: 1.0,
        mem: 1.0,
        net: 1.0,
        fs: 1.0,
    };

    /// All resources unrestricted (same as [`ResourceVector::FULL`]).
    pub fn full() -> Self {
        Self::FULL
    }

    /// Builds a vector with each share clamped into `[0, 1]`.
    pub fn new(cpu: f64, mem: f64, net: f64, fs: f64) -> Self {
        Self {
            cpu: cpu.clamp(0.0, 1.0),
            mem: mem.clamp(0.0, 1.0),
            net: net.clamp(0.0, 1.0),
            fs: fs.clamp(0.0, 1.0),
        }
    }

    /// Share of one resource kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Memory => self.mem,
            ResourceKind::Network => self.net,
            ResourceKind::Filesystem => self.fs,
        }
    }

    /// Sets the share of one resource kind (clamped into `[0, 1]`).
    pub fn set(&mut self, kind: ResourceKind, share: f64) {
        let share = share.clamp(0.0, 1.0);
        match kind {
            ResourceKind::Cpu => self.cpu = share,
            ResourceKind::Memory => self.mem = share,
            ResourceKind::Network => self.net = share,
            ResourceKind::Filesystem => self.fs = share,
        }
    }

    /// True when every share equals `1.0`.
    pub fn is_full(&self) -> bool {
        *self == Self::FULL
    }

    /// Element-wise lower-bounding against `floor` (the paper's configurable
    /// minimum share that bounds worst-case slowdowns).
    #[must_use]
    pub fn floored(&self, floor: &ResourceVector) -> Self {
        Self {
            cpu: self.cpu.max(floor.cpu),
            mem: self.mem.max(floor.mem),
            net: self.net.max(floor.net),
            fs: self.fs.max(floor.fs),
        }
    }

    /// True if every share is within `[0, 1]` and finite.
    pub fn is_valid(&self) -> bool {
        [self.cpu, self.mem, self.net, self.fs]
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s))
    }
}

impl Default for ResourceVector {
    fn default() -> Self {
        Self::FULL
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R{{cpu:{:.2}, mem:{:.2}, net:{:.2}, fs:{:.2}}}",
            self.cpu, self.mem, self.net, self.fs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_components() {
        let r = ResourceVector::new(2.0, -1.0, 0.5, 1.0);
        assert_eq!(r.cpu, 1.0);
        assert_eq!(r.mem, 0.0);
        assert_eq!(r.net, 0.5);
        assert!(r.is_valid());
    }

    #[test]
    fn get_set_round_trip() {
        let mut r = ResourceVector::full();
        for kind in ResourceKind::ALL {
            r.set(kind, 0.25);
            assert_eq!(r.get(kind), 0.25);
        }
    }

    #[test]
    fn floored_respects_minimums() {
        let r = ResourceVector::new(0.001, 1.0, 1.0, 0.0);
        let floor = ResourceVector::new(0.01, 0.0, 0.0, 0.05);
        let f = r.floored(&floor);
        assert_eq!(f.cpu, 0.01);
        assert_eq!(f.fs, 0.05);
        assert_eq!(f.mem, 1.0);
    }

    #[test]
    fn full_is_full() {
        assert!(ResourceVector::full().is_full());
        assert!(!ResourceVector::new(0.9, 1.0, 1.0, 1.0).is_full());
    }

    #[test]
    fn display_contains_all_fields() {
        let s = ResourceVector::full().to_string();
        for key in ["cpu", "mem", "net", "fs"] {
            assert!(s.contains(key));
        }
    }

    #[test]
    fn fleet_packing_round_trips() {
        for (machine, local) in [
            (0u32, 0u64),
            (0, 1),
            (1, 1),
            (3, 7),
            (123_456, 42),
            (
                (1 << ProcessId::MACHINE_BITS) - 1,
                (1 << ProcessId::LOCAL_BITS) - 1,
            ),
        ] {
            let pid = ProcessId::from_parts(machine, local);
            assert_eq!(pid.machine(), machine);
            assert_eq!(pid.local(), local);
        }
    }

    #[test]
    fn machine_zero_packs_to_bare_pid() {
        // The single-machine embedding: an un-packed pid IS machine 0.
        for p in [0u64, 1, 2, 41, 1_000_000] {
            assert_eq!(ProcessId::from_parts(0, p), ProcessId(p));
            assert_eq!(ProcessId(p).machine(), 0);
            assert_eq!(ProcessId(p).local(), p);
        }
    }
}
