//! Resource shares (`R_i^t`, Eq. 1) and process identifiers.

use std::fmt;

/// Identifier of a monitored process.
///
/// A thin newtype so engine call sites cannot confuse process ids with other
/// integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessId(pub u64);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// One of the four throttleable system resources (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU time share (`r_CPU`).
    Cpu,
    /// Memory share relative to the working set (`r_mem`).
    Memory,
    /// Network bandwidth share (`r_nw`).
    Network,
    /// Filesystem access-rate share (`r_fs`).
    Filesystem,
}

impl ResourceKind {
    /// All resource kinds, in `R_i^t` order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::Network,
        ResourceKind::Filesystem,
    ];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::Network => "network",
            ResourceKind::Filesystem => "filesystem",
        };
        f.write_str(s)
    }
}

/// The share of each system resource available to a process
/// (`R_i^t = {r_CPU, r_mem, r_nw, r_fs}`, Eq. 1).
///
/// Every component is a fraction in `[0, 1]` of the process's *default*
/// (unrestricted) allocation; `1.0` everywhere means no restrictions.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{ResourceKind, ResourceVector};
/// let mut r = ResourceVector::full();
/// r.set(ResourceKind::Cpu, 0.25);
/// assert_eq!(r.get(ResourceKind::Cpu), 0.25);
/// assert!(!r.is_full());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    /// CPU time share.
    pub cpu: f64,
    /// Memory share.
    pub mem: f64,
    /// Network bandwidth share.
    pub net: f64,
    /// Filesystem access-rate share.
    pub fs: f64,
}

impl ResourceVector {
    /// All resources unrestricted.
    pub const FULL: ResourceVector = ResourceVector {
        cpu: 1.0,
        mem: 1.0,
        net: 1.0,
        fs: 1.0,
    };

    /// All resources unrestricted (same as [`ResourceVector::FULL`]).
    pub fn full() -> Self {
        Self::FULL
    }

    /// Builds a vector with each share clamped into `[0, 1]`.
    pub fn new(cpu: f64, mem: f64, net: f64, fs: f64) -> Self {
        Self {
            cpu: cpu.clamp(0.0, 1.0),
            mem: mem.clamp(0.0, 1.0),
            net: net.clamp(0.0, 1.0),
            fs: fs.clamp(0.0, 1.0),
        }
    }

    /// Share of one resource kind.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Memory => self.mem,
            ResourceKind::Network => self.net,
            ResourceKind::Filesystem => self.fs,
        }
    }

    /// Sets the share of one resource kind (clamped into `[0, 1]`).
    pub fn set(&mut self, kind: ResourceKind, share: f64) {
        let share = share.clamp(0.0, 1.0);
        match kind {
            ResourceKind::Cpu => self.cpu = share,
            ResourceKind::Memory => self.mem = share,
            ResourceKind::Network => self.net = share,
            ResourceKind::Filesystem => self.fs = share,
        }
    }

    /// True when every share equals `1.0`.
    pub fn is_full(&self) -> bool {
        *self == Self::FULL
    }

    /// Element-wise lower-bounding against `floor` (the paper's configurable
    /// minimum share that bounds worst-case slowdowns).
    #[must_use]
    pub fn floored(&self, floor: &ResourceVector) -> Self {
        Self {
            cpu: self.cpu.max(floor.cpu),
            mem: self.mem.max(floor.mem),
            net: self.net.max(floor.net),
            fs: self.fs.max(floor.fs),
        }
    }

    /// True if every share is within `[0, 1]` and finite.
    pub fn is_valid(&self) -> bool {
        [self.cpu, self.mem, self.net, self.fs]
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s))
    }
}

impl Default for ResourceVector {
    fn default() -> Self {
        Self::FULL
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R{{cpu:{:.2}, mem:{:.2}, net:{:.2}, fs:{:.2}}}",
            self.cpu, self.mem, self.net, self.fs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_components() {
        let r = ResourceVector::new(2.0, -1.0, 0.5, 1.0);
        assert_eq!(r.cpu, 1.0);
        assert_eq!(r.mem, 0.0);
        assert_eq!(r.net, 0.5);
        assert!(r.is_valid());
    }

    #[test]
    fn get_set_round_trip() {
        let mut r = ResourceVector::full();
        for kind in ResourceKind::ALL {
            r.set(kind, 0.25);
            assert_eq!(r.get(kind), 0.25);
        }
    }

    #[test]
    fn floored_respects_minimums() {
        let r = ResourceVector::new(0.001, 1.0, 1.0, 0.0);
        let floor = ResourceVector::new(0.01, 0.0, 0.0, 0.05);
        let f = r.floored(&floor);
        assert_eq!(f.cpu, 0.01);
        assert_eq!(f.fs, 0.05);
        assert_eq!(f.mem, 1.0);
    }

    #[test]
    fn full_is_full() {
        assert!(ResourceVector::full().is_full());
        assert!(!ResourceVector::new(0.9, 1.0, 1.0, 1.0).is_full());
    }

    #[test]
    fn display_contains_all_fields() {
        let s = ResourceVector::full().to_string();
        for key in ["cpu", "mem", "net", "fs"] {
            assert!(s.contains(key));
        }
    }
}
