//! Per-process threat monitor — a faithful implementation of Algorithm 1.
//!
//! A [`Monitor`] consumes the detector's per-epoch inference stream for one
//! process and maintains the penalty (`P_i^t`), compensation (`C_i^t`) and
//! threat index (`T_i^t`) metrics, the measurement count (`N_i^t`) and the
//! Fig. 3 process state. Each step yields a [`Directive`] telling the caller
//! what response to enact (adjust resources, restore, or terminate).

use crate::state::ProcessState;
use crate::threat::{AssessmentFn, Classification, ThreatIndex};

/// Response directive emitted by one monitor step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Directive {
    /// No action required (normal state, nothing changed).
    Continue,
    /// Regulate resources by the embedded threat-index change
    /// (`R_i = A(R_{i-1}, ΔT)`, Algorithm 1 line 20). Negative `ΔT` means
    /// resources should be (partially) restored.
    Adjust {
        /// Change in threat index this epoch (`ΔT_{i,1}^t`).
        delta_threat: f64,
    },
    /// The process returned to the normal state: remove all restrictions.
    ResetToNormal,
    /// Terminable state + benign classification: `A_reset`, restore defaults.
    Restore,
    /// Terminable state + malicious classification: terminate the process.
    Terminate,
}

/// The outcome of feeding one epoch's inference into a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Epoch index of this step (1-based, the `i` of Algorithm 1).
    pub epoch: u64,
    /// State after the step.
    pub state: ProcessState,
    /// Threat index after the step.
    pub threat: ThreatIndex,
    /// Threat-index change produced by the step.
    pub delta_threat: f64,
    /// What the response layer should do.
    pub directive: Directive,
}

/// Per-process implementation of Algorithm 1.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{AssessmentFn, Classification, Directive, Monitor, ProcessState};
///
/// let mut m = Monitor::new(3, AssessmentFn::incremental(), AssessmentFn::incremental());
/// let r = m.observe(Classification::Malicious);
/// assert_eq!(r.state, ProcessState::Suspicious);
/// assert_eq!(r.delta_threat, 1.0);
/// // After N* = 3 measurements the process becomes terminable …
/// m.observe(Classification::Malicious);
/// m.observe(Classification::Malicious);
/// assert_eq!(m.state(), ProcessState::Terminable);
/// // … and the next malicious classification terminates it.
/// let r = m.observe(Classification::Malicious);
/// assert_eq!(r.directive, Directive::Terminate);
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    state: ProcessState,
    threat: ThreatIndex,
    penalty: f64,
    compensation: f64,
    measurements: u64,
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    epoch: u64,
    restored: bool,
    cyclic: bool,
}

impl Monitor {
    /// Creates a monitor that needs `n_star` measurements before the process
    /// becomes terminable, with penalty assessment `fp` and compensation
    /// assessment `fc`.
    ///
    /// # Panics
    ///
    /// Panics if `n_star` is zero; a detector that needs zero measurements
    /// would terminate processes without ever observing them.
    pub fn new(n_star: u64, fp: AssessmentFn, fc: AssessmentFn) -> Self {
        assert!(n_star > 0, "N* must be at least one measurement");
        Self {
            state: ProcessState::Normal,
            threat: ThreatIndex::zero(),
            penalty: 0.0,
            compensation: 0.0,
            measurements: 0,
            n_star,
            fp,
            fc,
            epoch: 0,
            restored: false,
            cyclic: false,
        }
    }

    /// Like [`Monitor::new`], but monitoring is *cyclic*: Algorithm 1's
    /// outer `while t is executing` loop. After a benign verdict in the
    /// terminable state the resources are restored (`A_reset`) **and a new
    /// measurement cycle begins** — the process returns to the normal state
    /// with fresh penalty/compensation metrics and measurement counter.
    /// Long-running processes thus stay under watch for their whole life,
    /// while attacks are still terminated at the end of their first cycle.
    ///
    /// # Panics
    ///
    /// Panics if `n_star` is zero.
    pub fn new_cyclic(n_star: u64, fp: AssessmentFn, fc: AssessmentFn) -> Self {
        let mut m = Self::new(n_star, fp, fc);
        m.cyclic = true;
        m
    }

    /// Current Fig. 3 state.
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// Current threat index `T_i^t`.
    pub fn threat(&self) -> ThreatIndex {
        self.threat
    }

    /// Current penalty metric `P_i^t`.
    pub fn penalty(&self) -> f64 {
        self.penalty
    }

    /// Current compensation metric `C_i^t`.
    pub fn compensation(&self) -> f64 {
        self.compensation
    }

    /// Measurements captured so far (`N_i^t`).
    pub fn measurements(&self) -> u64 {
        self.measurements
    }

    /// The configured measurement requirement `N*`.
    pub fn measurements_required(&self) -> u64 {
        self.n_star
    }

    /// Feeds one epoch's inference `D(t, i)` and advances Algorithm 1.
    ///
    /// Calling this after the process has terminated keeps returning
    /// [`Directive::Terminate`] without further state changes.
    pub fn observe(&mut self, inference: Classification) -> StepReport {
        if self.state == ProcessState::Terminated {
            return self.report(0.0, Directive::Terminate);
        }
        self.epoch += 1;

        if self.measurements < self.n_star {
            let mut report = self.observe_pre_efficacy(inference);
            if self.measurements >= self.n_star && self.state != ProcessState::Terminated {
                // Algorithm 1 line 21: once N* measurements are captured the
                // process switches to the terminable state.
                self.state = ProcessState::Terminable;
                report.state = self.state;
            }
            report
        } else {
            self.observe_terminable(inference)
        }
    }

    /// Marks the process as finished (Fig. 3: completion also moves the
    /// process to *terminated*).
    pub fn complete(&mut self) {
        self.state = ProcessState::Terminated;
    }

    fn observe_pre_efficacy(&mut self, inference: Classification) -> StepReport {
        self.measurements += 1;
        let prev_threat = self.threat;
        match inference {
            Classification::Malicious => {
                // Lines 8-11.
                self.state = ProcessState::Suspicious;
                self.penalty = self.fp.next(self.penalty, self.epoch);
                self.threat = self.threat.penalized(self.penalty);
            }
            Classification::Benign => {
                // Lines 12-15: compensation only applies in the suspicious
                // state.
                if self.state == ProcessState::Suspicious {
                    self.compensation = self.fc.next(self.compensation, self.epoch);
                    self.threat = self.threat.compensated(self.compensation);
                }
            }
        }
        let delta = self.threat.value() - prev_threat.value();
        // Lines 17-18: full recovery returns the process to normal.
        if self.threat.is_zero() && self.state == ProcessState::Suspicious {
            self.state = ProcessState::Normal;
            return self.report(delta, Directive::ResetToNormal);
        }
        let directive = if self.state == ProcessState::Suspicious {
            Directive::Adjust {
                delta_threat: delta,
            }
        } else {
            Directive::Continue
        };
        self.report(delta, directive)
    }

    fn observe_terminable(&mut self, inference: Classification) -> StepReport {
        match inference {
            Classification::Benign => {
                if self.cyclic {
                    // A_reset plus the outer while-loop of Algorithm 1:
                    // restore resources and begin a new measurement cycle.
                    self.state = ProcessState::Normal;
                    self.threat = ThreatIndex::zero();
                    self.penalty = 0.0;
                    self.compensation = 0.0;
                    self.measurements = 0;
                    self.restored = false;
                    return self.report(0.0, Directive::Restore);
                }
                // Line 24: A_reset — restore default resources, once.
                if self.restored {
                    self.report(0.0, Directive::Continue)
                } else {
                    self.restored = true;
                    self.report(0.0, Directive::Restore)
                }
            }
            Classification::Malicious => {
                // Line 26: terminate.
                self.state = ProcessState::Terminated;
                self.report(0.0, Directive::Terminate)
            }
        }
    }

    fn report(&self, delta: f64, directive: Directive) -> StepReport {
        StepReport {
            epoch: self.epoch,
            state: self.state,
            threat: self.threat,
            delta_threat: delta,
            directive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn monitor(n_star: u64) -> Monitor {
        Monitor::new(
            n_star,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
        )
    }

    #[test]
    fn benign_stream_stays_normal() {
        let mut m = monitor(10);
        for _ in 0..9 {
            let r = m.observe(Benign);
            assert_eq!(r.state, ProcessState::Normal);
            assert_eq!(r.directive, Directive::Continue);
            assert!(r.threat.is_zero());
        }
        // The 10th measurement satisfies N*: the process becomes terminable.
        let r = m.observe(Benign);
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn incremental_penalty_growth_matches_paper_example() {
        // Section V-C: penalty increases by 1 on each malicious epoch and the
        // threat index increases by the penalty: T = 1, 3, 6, 10, 15, …
        let mut m = monitor(100);
        let expected = [1.0, 3.0, 6.0, 10.0, 15.0, 21.0, 28.0];
        for want in expected {
            let r = m.observe(Malicious);
            assert_eq!(r.threat.value(), want);
        }
    }

    #[test]
    fn compensation_recovers_and_returns_to_normal() {
        let mut m = monitor(100);
        for _ in 0..5 {
            m.observe(Malicious);
        }
        assert_eq!(m.threat().value(), 15.0);
        // Compensation: 1, 2, 3, 4, 5 → threat 14, 12, 9, 5, 0.
        let expected = [14.0, 12.0, 9.0, 5.0, 0.0];
        for (i, want) in expected.iter().enumerate() {
            let r = m.observe(Benign);
            assert_eq!(r.threat.value(), *want, "step {i}");
        }
        assert_eq!(m.state(), ProcessState::Normal);
    }

    #[test]
    fn reset_to_normal_directive_emitted_once() {
        let mut m = monitor(100);
        m.observe(Malicious);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::ResetToNormal);
        assert_eq!(r.state, ProcessState::Normal);
        // Further benign epochs in the normal state are plain continues.
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Continue);
    }

    #[test]
    fn benign_epochs_in_normal_state_do_not_compensate() {
        let mut m = monitor(100);
        m.observe(Benign);
        assert_eq!(m.compensation(), 0.0);
        m.observe(Malicious);
        m.observe(Benign);
        assert_eq!(m.compensation(), 1.0);
    }

    #[test]
    fn threat_is_clamped_at_100() {
        let mut m = monitor(1000);
        for _ in 0..30 {
            m.observe(Malicious);
        }
        assert_eq!(m.threat().value(), 100.0);
    }

    #[test]
    fn terminable_then_terminate_on_malicious() {
        let mut m = monitor(3);
        m.observe(Benign);
        m.observe(Benign);
        m.observe(Benign);
        assert_eq!(m.state(), ProcessState::Terminable);
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn terminable_then_restore_on_benign() {
        let mut m = monitor(2);
        m.observe(Malicious);
        m.observe(Malicious);
        assert_eq!(m.state(), ProcessState::Terminable);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Restore);
        // Restoration is reported once; afterwards the process just runs.
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Continue);
        // It can still be terminated later.
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
    }

    #[test]
    fn observe_after_termination_is_stable() {
        let mut m = monitor(1);
        m.observe(Malicious);
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Terminate);
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn complete_marks_terminated() {
        let mut m = monitor(10);
        m.observe(Benign);
        m.complete();
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn penalty_is_retained_while_benign() {
        // Algorithm 1 line 15: P_i = P_{i-1} on benign epochs, so a repeat
        // offender resumes from the old penalty level.
        let mut m = monitor(100);
        for _ in 0..3 {
            m.observe(Malicious);
        }
        assert_eq!(m.penalty(), 3.0);
        m.observe(Benign);
        assert_eq!(m.penalty(), 3.0);
        m.observe(Malicious);
        assert_eq!(m.penalty(), 4.0);
    }

    #[test]
    #[should_panic(expected = "N*")]
    fn zero_n_star_panics() {
        let _ = monitor(0);
    }

    #[test]
    fn all_transitions_are_legal_per_fig3() {
        // Drive a monitor through a noisy inference stream and check that
        // every transition it takes is allowed by Fig. 3.
        let mut m = monitor(8);
        let stream = [
            Benign, Malicious, Benign, Benign, Malicious, Malicious, Benign, Benign, Benign,
            Malicious,
        ];
        let mut prev = m.state();
        for c in stream {
            let r = m.observe(c);
            assert!(
                prev.can_transition_to(r.state),
                "illegal transition {prev} -> {}",
                r.state
            );
            prev = r.state;
        }
    }
}
