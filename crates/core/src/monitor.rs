//! Per-process threat monitor — a faithful implementation of Algorithm 1.
//!
//! A [`Monitor`] consumes the detector's per-epoch inference stream for one
//! process and maintains the penalty (`P_i^t`), compensation (`C_i^t`) and
//! threat index (`T_i^t`) metrics, the measurement count (`N_i^t`) and the
//! Fig. 3 process state. Each step yields a [`Directive`] telling the caller
//! what response to enact (adjust resources, restore, or terminate).

use crate::state::ProcessState;
use crate::threat::{AssessmentFn, Classification, ThreatIndex};

/// Response directive emitted by one monitor step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Directive {
    /// No action required (normal state, nothing changed).
    Continue,
    /// Regulate resources by the embedded threat-index change
    /// (`R_i = A(R_{i-1}, ΔT)`, Algorithm 1 line 20). Negative `ΔT` means
    /// resources should be (partially) restored.
    Adjust {
        /// Change in threat index this epoch (`ΔT_{i,1}^t`).
        delta_threat: f64,
    },
    /// The process returned to the normal state: remove all restrictions.
    ResetToNormal,
    /// Terminable state + benign classification: `A_reset`, restore defaults.
    Restore,
    /// Terminable state + malicious classification: terminate the process.
    Terminate,
}

/// Rung of the graduated escalation ladder: how hard the response layer
/// leans on a process this epoch.
///
/// The binary path maps onto the ladder's extremes (a malicious epoch is a
/// `Throttle`/`Kill`, a benign one a `Compensate`); the weighted-evidence
/// path ([`Monitor::observe_mass`]) can also park a process at `Observe`
/// when the fused evidence is inconclusive. Ordering follows response
/// intensity, so `a > b` means `a` is the harder response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EscalationLevel {
    /// Evidence inconclusive: hold every metric, take no action.
    Observe,
    /// Evidence low: run the compensation arm (recover resources).
    Compensate,
    /// Evidence high: run the penalty arm (throttle resources).
    Throttle,
    /// Evidence overwhelming: terminate once `N*` is met.
    Kill,
}

impl EscalationLevel {
    /// The level the legacy binary path implies for a directive (used to
    /// stamp [`StepReport::level`] on [`Monitor::observe`] steps).
    pub fn from_directive(directive: Directive) -> Self {
        match directive {
            Directive::Terminate => EscalationLevel::Kill,
            Directive::Adjust { delta_threat } if delta_threat > 0.0 => EscalationLevel::Throttle,
            Directive::Adjust { delta_threat } if delta_threat < 0.0 => EscalationLevel::Compensate,
            Directive::Adjust { .. } | Directive::Continue => EscalationLevel::Observe,
            Directive::ResetToNormal | Directive::Restore => EscalationLevel::Compensate,
        }
    }
}

/// Maps fused evidence mass to an [`EscalationLevel`] — the graduated
/// observe → compensate → throttle → kill ladder of the fusion tier.
///
/// Thresholds partition `[0, 1]`: mass strictly above `kill_above` kills,
/// strictly above `throttle_above` throttles, strictly below
/// `compensate_below` compensates, and anything in between is observed.
/// Invariant: `compensate_below <= throttle_above <= kill_above`.
///
/// [`EscalationLadder::BINARY`] sets every threshold to 0.5, collapsing the
/// ladder to the paper's binary behaviour: mass 1.0 is a malicious epoch,
/// mass 0.0 a benign one, and the observe band is empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscalationLadder {
    /// Mass strictly above this terminates (once `N*` is met).
    pub kill_above: f64,
    /// Mass strictly above this runs the penalty arm.
    pub throttle_above: f64,
    /// Mass strictly below this runs the compensation arm.
    pub compensate_below: f64,
}

impl EscalationLadder {
    /// The degenerate binary ladder: every threshold 0.5, no observe band.
    /// Driving it with masses in `{0.0, 1.0}` reproduces the legacy binary
    /// path bit-for-bit.
    pub const BINARY: Self = Self {
        kill_above: 0.5,
        throttle_above: 0.5,
        compensate_below: 0.5,
    };

    /// A graduated ladder with a real observe band: kill above 0.85,
    /// throttle above 0.6, compensate below 0.35.
    pub fn graduated() -> Self {
        Self {
            kill_above: 0.85,
            throttle_above: 0.6,
            compensate_below: 0.35,
        }
    }

    /// The mass strictly above which `level` engages, if the level is
    /// entered from above ([`EscalationLevel::Kill`] and
    /// [`EscalationLevel::Throttle`]; the other rungs have no upper
    /// boundary an attacker could ride under).
    ///
    /// This is the boundary query the adaptive tier's attackers use: a
    /// mass-riding strategy holds its expected evidence just below the rung
    /// it wants to avoid (see `valkyrie_core::evasion::MassRider`).
    pub fn engages_above(&self, level: EscalationLevel) -> Option<f64> {
        match level {
            EscalationLevel::Kill => Some(self.kill_above),
            EscalationLevel::Throttle => Some(self.throttle_above),
            EscalationLevel::Compensate | EscalationLevel::Observe => None,
        }
    }

    /// The largest mass that stays `margin` below the boundary at which
    /// `level` engages, clamped into `[0, 1]`. Levels without an upper
    /// boundary ride at the compensation boundary instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use valkyrie_core::{EscalationLadder, EscalationLevel};
    /// let ladder = EscalationLadder::graduated();
    /// let mass = ladder.ride_below(EscalationLevel::Throttle, 0.02);
    /// assert!((mass - 0.58).abs() < 1e-12);
    /// // Riding there never escalates past the observe band.
    /// assert_eq!(ladder.level(mass), EscalationLevel::Observe);
    /// ```
    pub fn ride_below(&self, level: EscalationLevel, margin: f64) -> f64 {
        let margin = if margin.is_finite() {
            margin.max(0.0)
        } else {
            0.0
        };
        let boundary = self.engages_above(level).unwrap_or(self.compensate_below);
        (boundary - margin).clamp(0.0, 1.0)
    }

    /// The ladder rung for a fused evidence mass.
    pub fn level(&self, mass: f64) -> EscalationLevel {
        if mass > self.kill_above {
            EscalationLevel::Kill
        } else if mass > self.throttle_above {
            EscalationLevel::Throttle
        } else if mass < self.compensate_below {
            EscalationLevel::Compensate
        } else {
            EscalationLevel::Observe
        }
    }
}

impl Default for EscalationLadder {
    /// The graduated ladder (see [`EscalationLadder::graduated`]).
    fn default() -> Self {
        Self::graduated()
    }
}

/// The outcome of feeding one epoch's inference into a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Epoch index of this step (1-based, the `i` of Algorithm 1).
    pub epoch: u64,
    /// State after the step.
    pub state: ProcessState,
    /// Threat index after the step.
    pub threat: ThreatIndex,
    /// Threat-index change produced by the step.
    pub delta_threat: f64,
    /// What the response layer should do.
    pub directive: Directive,
    /// The escalation rung this step landed on (ladder-derived on the
    /// weighted-evidence path, directive-derived on the binary path).
    pub level: EscalationLevel,
}

/// Per-process implementation of Algorithm 1.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{AssessmentFn, Classification, Directive, Monitor, ProcessState};
///
/// let mut m = Monitor::new(3, AssessmentFn::incremental(), AssessmentFn::incremental());
/// let r = m.observe(Classification::Malicious);
/// assert_eq!(r.state, ProcessState::Suspicious);
/// assert_eq!(r.delta_threat, 1.0);
/// // After N* = 3 measurements the process becomes terminable …
/// m.observe(Classification::Malicious);
/// m.observe(Classification::Malicious);
/// assert_eq!(m.state(), ProcessState::Terminable);
/// // … and the next malicious classification terminates it.
/// let r = m.observe(Classification::Malicious);
/// assert_eq!(r.directive, Directive::Terminate);
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    state: ProcessState,
    threat: ThreatIndex,
    penalty: f64,
    compensation: f64,
    measurements: u64,
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    epoch: u64,
    restored: bool,
    cyclic: bool,
}

impl Monitor {
    /// Creates a monitor that needs `n_star` measurements before the process
    /// becomes terminable, with penalty assessment `fp` and compensation
    /// assessment `fc`.
    ///
    /// # Panics
    ///
    /// Panics if `n_star` is zero; a detector that needs zero measurements
    /// would terminate processes without ever observing them.
    pub fn new(n_star: u64, fp: AssessmentFn, fc: AssessmentFn) -> Self {
        assert!(n_star > 0, "N* must be at least one measurement");
        Self {
            state: ProcessState::Normal,
            threat: ThreatIndex::zero(),
            penalty: 0.0,
            compensation: 0.0,
            measurements: 0,
            n_star,
            fp,
            fc,
            epoch: 0,
            restored: false,
            cyclic: false,
        }
    }

    /// Like [`Monitor::new`], but monitoring is *cyclic*: Algorithm 1's
    /// outer `while t is executing` loop. After a benign verdict in the
    /// terminable state the resources are restored (`A_reset`) **and a new
    /// measurement cycle begins** — the process returns to the normal state
    /// with fresh penalty/compensation metrics and measurement counter.
    /// Long-running processes thus stay under watch for their whole life,
    /// while attacks are still terminated at the end of their first cycle.
    ///
    /// # Panics
    ///
    /// Panics if `n_star` is zero.
    pub fn new_cyclic(n_star: u64, fp: AssessmentFn, fc: AssessmentFn) -> Self {
        let mut m = Self::new(n_star, fp, fc);
        m.cyclic = true;
        m
    }

    /// Current Fig. 3 state.
    pub fn state(&self) -> ProcessState {
        self.state
    }

    /// Current threat index `T_i^t`.
    pub fn threat(&self) -> ThreatIndex {
        self.threat
    }

    /// Current penalty metric `P_i^t`.
    pub fn penalty(&self) -> f64 {
        self.penalty
    }

    /// Current compensation metric `C_i^t`.
    pub fn compensation(&self) -> f64 {
        self.compensation
    }

    /// Measurements captured so far (`N_i^t`).
    pub fn measurements(&self) -> u64 {
        self.measurements
    }

    /// The configured measurement requirement `N*`.
    pub fn measurements_required(&self) -> u64 {
        self.n_star
    }

    /// Feeds one epoch's inference `D(t, i)` and advances Algorithm 1.
    ///
    /// Calling this after the process has terminated keeps returning
    /// [`Directive::Terminate`] without further state changes.
    pub fn observe(&mut self, inference: Classification) -> StepReport {
        if self.state == ProcessState::Terminated {
            return self.report(0.0, Directive::Terminate);
        }
        self.epoch += 1;

        if self.measurements < self.n_star {
            let mut report = self.observe_pre_efficacy(inference);
            if self.measurements >= self.n_star && self.state != ProcessState::Terminated {
                // Algorithm 1 line 21: once N* measurements are captured the
                // process switches to the terminable state.
                self.state = ProcessState::Terminable;
                report.state = self.state;
            }
            report
        } else {
            self.observe_terminable(inference)
        }
    }

    /// Feeds one epoch's *fused evidence mass* (in `[0, 1]`) and advances
    /// Algorithm 1 under the default graduated [`EscalationLadder`].
    ///
    /// See [`Monitor::observe_mass_with`].
    pub fn observe_mass(&mut self, mass: f64) -> StepReport {
        self.observe_mass_with(EscalationLadder::default(), mass)
    }

    /// Feeds one epoch's fused evidence mass under an explicit ladder.
    ///
    /// The ladder picks the escalation rung; the rung picks the Algorithm 1
    /// arm. `Throttle`/`Kill` run the penalty arm with the assessment-step
    /// scaled by the mass, `Compensate` runs the compensation arm scaled by
    /// `1 - mass`, and `Observe` holds every metric. In the terminable
    /// state, `Kill` terminates, `Compensate` restores (recycling under
    /// cyclic monitoring) and the middle rungs hold the decision open.
    ///
    /// The extremes are degenerate by construction: mass exactly `1.0`
    /// executes the same arithmetic as a `Malicious` observation and mass
    /// exactly `0.0` the same as a `Benign` one, so a binary detector
    /// driven through this path (with [`EscalationLadder::BINARY`]) is
    /// bit-for-bit the legacy [`Monitor::observe`].
    pub fn observe_mass_with(&mut self, ladder: EscalationLadder, mass: f64) -> StepReport {
        let mass = mass.clamp(0.0, 1.0);
        if self.state == ProcessState::Terminated {
            return self.report_leveled(0.0, Directive::Terminate, EscalationLevel::Kill);
        }
        self.epoch += 1;
        let level = ladder.level(mass);

        if self.measurements < self.n_star {
            let mut report = self.observe_mass_pre_efficacy(mass, level);
            if self.measurements >= self.n_star && self.state != ProcessState::Terminated {
                self.state = ProcessState::Terminable;
                report.state = self.state;
            }
            report
        } else {
            self.observe_mass_terminable(level)
        }
    }

    fn observe_mass_pre_efficacy(&mut self, mass: f64, level: EscalationLevel) -> StepReport {
        self.measurements += 1;
        let prev_threat = self.threat;
        match level {
            EscalationLevel::Throttle | EscalationLevel::Kill => {
                self.state = ProcessState::Suspicious;
                if mass == 1.0 {
                    // Degenerate full-confidence evidence: the exact legacy
                    // Malicious arithmetic (scaling by 1.0 is not an IEEE754
                    // no-op, so the branch is load-bearing).
                    self.penalty = self.fp.next(self.penalty, self.epoch);
                    self.threat = self.threat.penalized(self.penalty);
                } else {
                    let next = self.fp.next(self.penalty, self.epoch);
                    self.penalty += (next - self.penalty) * mass;
                    self.threat = self.threat.penalized(self.penalty * mass);
                }
            }
            EscalationLevel::Compensate => {
                if self.state == ProcessState::Suspicious {
                    if mass == 0.0 {
                        // Degenerate zero-evidence: the exact legacy Benign
                        // arithmetic.
                        self.compensation = self.fc.next(self.compensation, self.epoch);
                        self.threat = self.threat.compensated(self.compensation);
                    } else {
                        let next = self.fc.next(self.compensation, self.epoch);
                        self.compensation += (next - self.compensation) * (1.0 - mass);
                        self.threat = self.threat.compensated(self.compensation * (1.0 - mass));
                    }
                }
            }
            EscalationLevel::Observe => {}
        }
        let delta = self.threat.value() - prev_threat.value();
        if self.threat.is_zero() && self.state == ProcessState::Suspicious {
            self.state = ProcessState::Normal;
            return self.report_leveled(delta, Directive::ResetToNormal, level);
        }
        let directive = if self.state == ProcessState::Suspicious {
            Directive::Adjust {
                delta_threat: delta,
            }
        } else {
            Directive::Continue
        };
        self.report_leveled(delta, directive, level)
    }

    fn observe_mass_terminable(&mut self, level: EscalationLevel) -> StepReport {
        match level {
            EscalationLevel::Kill => {
                self.state = ProcessState::Terminated;
                self.report_leveled(0.0, Directive::Terminate, level)
            }
            EscalationLevel::Compensate => {
                if self.cyclic {
                    self.state = ProcessState::Normal;
                    self.threat = ThreatIndex::zero();
                    self.penalty = 0.0;
                    self.compensation = 0.0;
                    self.measurements = 0;
                    self.restored = false;
                    return self.report_leveled(0.0, Directive::Restore, level);
                }
                if self.restored {
                    self.report_leveled(0.0, Directive::Continue, level)
                } else {
                    self.restored = true;
                    self.report_leveled(0.0, Directive::Restore, level)
                }
            }
            // The terminable decision stays open while the evidence sits in
            // the middle of the ladder.
            EscalationLevel::Observe | EscalationLevel::Throttle => {
                self.report_leveled(0.0, Directive::Continue, level)
            }
        }
    }

    /// Marks the process as finished (Fig. 3: completion also moves the
    /// process to *terminated*).
    pub fn complete(&mut self) {
        self.state = ProcessState::Terminated;
    }

    fn observe_pre_efficacy(&mut self, inference: Classification) -> StepReport {
        self.measurements += 1;
        let prev_threat = self.threat;
        match inference {
            Classification::Malicious => {
                // Lines 8-11.
                self.state = ProcessState::Suspicious;
                self.penalty = self.fp.next(self.penalty, self.epoch);
                self.threat = self.threat.penalized(self.penalty);
            }
            Classification::Benign => {
                // Lines 12-15: compensation only applies in the suspicious
                // state.
                if self.state == ProcessState::Suspicious {
                    self.compensation = self.fc.next(self.compensation, self.epoch);
                    self.threat = self.threat.compensated(self.compensation);
                }
            }
        }
        let delta = self.threat.value() - prev_threat.value();
        // Lines 17-18: full recovery returns the process to normal.
        if self.threat.is_zero() && self.state == ProcessState::Suspicious {
            self.state = ProcessState::Normal;
            return self.report(delta, Directive::ResetToNormal);
        }
        let directive = if self.state == ProcessState::Suspicious {
            Directive::Adjust {
                delta_threat: delta,
            }
        } else {
            Directive::Continue
        };
        self.report(delta, directive)
    }

    fn observe_terminable(&mut self, inference: Classification) -> StepReport {
        match inference {
            Classification::Benign => {
                if self.cyclic {
                    // A_reset plus the outer while-loop of Algorithm 1:
                    // restore resources and begin a new measurement cycle.
                    self.state = ProcessState::Normal;
                    self.threat = ThreatIndex::zero();
                    self.penalty = 0.0;
                    self.compensation = 0.0;
                    self.measurements = 0;
                    self.restored = false;
                    return self.report(0.0, Directive::Restore);
                }
                // Line 24: A_reset — restore default resources, once.
                if self.restored {
                    self.report(0.0, Directive::Continue)
                } else {
                    self.restored = true;
                    self.report(0.0, Directive::Restore)
                }
            }
            Classification::Malicious => {
                // Line 26: terminate.
                self.state = ProcessState::Terminated;
                self.report(0.0, Directive::Terminate)
            }
        }
    }

    fn report(&self, delta: f64, directive: Directive) -> StepReport {
        self.report_leveled(delta, directive, EscalationLevel::from_directive(directive))
    }

    fn report_leveled(
        &self,
        delta: f64,
        directive: Directive,
        level: EscalationLevel,
    ) -> StepReport {
        StepReport {
            epoch: self.epoch,
            state: self.state,
            threat: self.threat,
            delta_threat: delta,
            directive,
            level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn monitor(n_star: u64) -> Monitor {
        Monitor::new(
            n_star,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
        )
    }

    #[test]
    fn benign_stream_stays_normal() {
        let mut m = monitor(10);
        for _ in 0..9 {
            let r = m.observe(Benign);
            assert_eq!(r.state, ProcessState::Normal);
            assert_eq!(r.directive, Directive::Continue);
            assert!(r.threat.is_zero());
        }
        // The 10th measurement satisfies N*: the process becomes terminable.
        let r = m.observe(Benign);
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn incremental_penalty_growth_matches_paper_example() {
        // Section V-C: penalty increases by 1 on each malicious epoch and the
        // threat index increases by the penalty: T = 1, 3, 6, 10, 15, …
        let mut m = monitor(100);
        let expected = [1.0, 3.0, 6.0, 10.0, 15.0, 21.0, 28.0];
        for want in expected {
            let r = m.observe(Malicious);
            assert_eq!(r.threat.value(), want);
        }
    }

    #[test]
    fn compensation_recovers_and_returns_to_normal() {
        let mut m = monitor(100);
        for _ in 0..5 {
            m.observe(Malicious);
        }
        assert_eq!(m.threat().value(), 15.0);
        // Compensation: 1, 2, 3, 4, 5 → threat 14, 12, 9, 5, 0.
        let expected = [14.0, 12.0, 9.0, 5.0, 0.0];
        for (i, want) in expected.iter().enumerate() {
            let r = m.observe(Benign);
            assert_eq!(r.threat.value(), *want, "step {i}");
        }
        assert_eq!(m.state(), ProcessState::Normal);
    }

    #[test]
    fn reset_to_normal_directive_emitted_once() {
        let mut m = monitor(100);
        m.observe(Malicious);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::ResetToNormal);
        assert_eq!(r.state, ProcessState::Normal);
        // Further benign epochs in the normal state are plain continues.
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Continue);
    }

    #[test]
    fn benign_epochs_in_normal_state_do_not_compensate() {
        let mut m = monitor(100);
        m.observe(Benign);
        assert_eq!(m.compensation(), 0.0);
        m.observe(Malicious);
        m.observe(Benign);
        assert_eq!(m.compensation(), 1.0);
    }

    #[test]
    fn threat_is_clamped_at_100() {
        let mut m = monitor(1000);
        for _ in 0..30 {
            m.observe(Malicious);
        }
        assert_eq!(m.threat().value(), 100.0);
    }

    #[test]
    fn terminable_then_terminate_on_malicious() {
        let mut m = monitor(3);
        m.observe(Benign);
        m.observe(Benign);
        m.observe(Benign);
        assert_eq!(m.state(), ProcessState::Terminable);
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn terminable_then_restore_on_benign() {
        let mut m = monitor(2);
        m.observe(Malicious);
        m.observe(Malicious);
        assert_eq!(m.state(), ProcessState::Terminable);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Restore);
        // Restoration is reported once; afterwards the process just runs.
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Continue);
        // It can still be terminated later.
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
    }

    #[test]
    fn observe_after_termination_is_stable() {
        let mut m = monitor(1);
        m.observe(Malicious);
        let r = m.observe(Malicious);
        assert_eq!(r.directive, Directive::Terminate);
        let r = m.observe(Benign);
        assert_eq!(r.directive, Directive::Terminate);
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn complete_marks_terminated() {
        let mut m = monitor(10);
        m.observe(Benign);
        m.complete();
        assert_eq!(m.state(), ProcessState::Terminated);
    }

    #[test]
    fn penalty_is_retained_while_benign() {
        // Algorithm 1 line 15: P_i = P_{i-1} on benign epochs, so a repeat
        // offender resumes from the old penalty level.
        let mut m = monitor(100);
        for _ in 0..3 {
            m.observe(Malicious);
        }
        assert_eq!(m.penalty(), 3.0);
        m.observe(Benign);
        assert_eq!(m.penalty(), 3.0);
        m.observe(Malicious);
        assert_eq!(m.penalty(), 4.0);
    }

    #[test]
    #[should_panic(expected = "N*")]
    fn zero_n_star_panics() {
        let _ = monitor(0);
    }

    #[test]
    fn binary_ladder_mass_path_is_bit_identical_to_observe() {
        // The migration guarantee behind the whole fusion refactor: masses
        // in {0.0, 1.0} through the BINARY ladder reproduce the legacy
        // binary path exactly — states, threat values, directives, epochs.
        let streams: [&[Classification]; 4] = [
            &[Malicious; 12],
            &[Benign; 12],
            &[
                Malicious, Malicious, Benign, Benign, Malicious, Benign, Benign, Benign, Malicious,
                Malicious, Malicious, Benign,
            ],
            &[
                Benign, Malicious, Benign, Malicious, Malicious, Benign, Benign, Malicious,
            ],
        ];
        for n_star in [1, 3, 7] {
            for (cyclic, stream) in [(false, streams), (true, streams)]
                .into_iter()
                .flat_map(|(c, ss)| ss.into_iter().map(move |s| (c, s)))
            {
                let make = || {
                    if cyclic {
                        Monitor::new_cyclic(
                            n_star,
                            AssessmentFn::incremental(),
                            AssessmentFn::incremental(),
                        )
                    } else {
                        monitor(n_star)
                    }
                };
                let mut binary = make();
                let mut mass = make();
                for &c in stream {
                    let want = binary.observe(c);
                    let got = mass.observe_mass_with(
                        EscalationLadder::BINARY,
                        if c.is_malicious() { 1.0 } else { 0.0 },
                    );
                    assert_eq!(
                        (
                            got.epoch,
                            got.state,
                            got.threat,
                            got.delta_threat,
                            got.directive
                        ),
                        (
                            want.epoch,
                            want.state,
                            want.threat,
                            want.delta_threat,
                            want.directive
                        ),
                        "n_star={n_star} cyclic={cyclic}"
                    );
                }
            }
        }
    }

    #[test]
    fn ladder_maps_mass_bands_to_levels() {
        let ladder = EscalationLadder::graduated();
        assert_eq!(ladder.level(0.9), EscalationLevel::Kill);
        assert_eq!(ladder.level(0.7), EscalationLevel::Throttle);
        assert_eq!(ladder.level(0.5), EscalationLevel::Observe);
        assert_eq!(ladder.level(0.35), EscalationLevel::Observe);
        assert_eq!(ladder.level(0.1), EscalationLevel::Compensate);
        // The binary ladder has no observe band.
        assert_eq!(EscalationLadder::BINARY.level(1.0), EscalationLevel::Kill);
        assert_eq!(
            EscalationLadder::BINARY.level(0.0),
            EscalationLevel::Compensate
        );
        // A tie at exactly 0.5 on the binary ladder observes — and never
        // occurs on the degenerate {0, 1} mass stream.
        assert_eq!(
            EscalationLadder::BINARY.level(0.5),
            EscalationLevel::Observe
        );
    }

    #[test]
    fn ladder_boundary_queries_expose_the_rung_edges() {
        let ladder = EscalationLadder::graduated();
        assert_eq!(ladder.engages_above(EscalationLevel::Kill), Some(0.85));
        assert_eq!(ladder.engages_above(EscalationLevel::Throttle), Some(0.6));
        assert_eq!(ladder.engages_above(EscalationLevel::Observe), None);
        assert_eq!(ladder.engages_above(EscalationLevel::Compensate), None);

        // Riding below a rung never reaches it.
        for (level, margin) in [
            (EscalationLevel::Kill, 0.01),
            (EscalationLevel::Throttle, 0.05),
        ] {
            let mass = ladder.ride_below(level, margin);
            assert_ne!(ladder.level(mass), EscalationLevel::Kill);
            if level == EscalationLevel::Throttle {
                assert_ne!(ladder.level(mass), EscalationLevel::Throttle);
            }
        }
        // Levels without an upper boundary ride at the compensation edge.
        assert!((ladder.ride_below(EscalationLevel::Compensate, 0.0) - 0.35).abs() < 1e-12);
        // Margins are sanitised: non-finite or negative margins ride at the
        // boundary itself, and the result stays in [0, 1].
        assert_eq!(ladder.ride_below(EscalationLevel::Kill, f64::NAN), 0.85);
        assert_eq!(ladder.ride_below(EscalationLevel::Kill, -3.0), 0.85);
        assert_eq!(ladder.ride_below(EscalationLevel::Throttle, 2.0), 0.0);
    }

    #[test]
    fn partial_mass_scales_the_penalty_arm() {
        // Mass 0.7 through the graduated ladder throttles but accumulates
        // threat slower than full-confidence evidence.
        let mut strong = monitor(100);
        let mut partial = monitor(100);
        for _ in 0..5 {
            strong.observe_mass(1.0);
            partial.observe_mass(0.7);
        }
        assert_eq!(strong.state(), ProcessState::Suspicious);
        assert_eq!(partial.state(), ProcessState::Suspicious);
        assert!(strong.threat().value() > partial.threat().value());
        assert!(partial.threat().value() > 0.0);
    }

    #[test]
    fn observe_band_holds_every_metric() {
        let mut m = monitor(100);
        m.observe_mass(1.0);
        let (threat, penalty) = (m.threat(), m.penalty());
        // Inconclusive evidence: nothing moves, but the measurement counts.
        let r = m.observe_mass(0.5);
        assert_eq!(r.level, EscalationLevel::Observe);
        assert_eq!(m.threat(), threat);
        assert_eq!(m.penalty(), penalty);
        assert_eq!(m.measurements(), 2);
    }

    #[test]
    fn terminable_middle_rungs_hold_the_decision_open() {
        let mut m = monitor(2);
        m.observe_mass(1.0);
        m.observe_mass(1.0);
        assert_eq!(m.state(), ProcessState::Terminable);
        // Observe and Throttle hold; only Kill terminates.
        let r = m.observe_mass(0.5);
        assert_eq!(r.directive, Directive::Continue);
        let r = m.observe_mass(0.7);
        assert_eq!(r.directive, Directive::Continue);
        assert_eq!(m.state(), ProcessState::Terminable);
        let r = m.observe_mass(0.95);
        assert_eq!(r.directive, Directive::Terminate);
    }

    #[test]
    fn terminable_low_mass_restores_and_recycles_cyclically() {
        let mut m =
            Monitor::new_cyclic(2, AssessmentFn::incremental(), AssessmentFn::incremental());
        m.observe_mass(1.0);
        m.observe_mass(1.0);
        let r = m.observe_mass(0.1);
        assert_eq!(r.directive, Directive::Restore);
        assert_eq!(m.state(), ProcessState::Normal);
        assert_eq!(m.measurements(), 0);
    }

    #[test]
    fn legacy_observe_reports_directive_derived_levels() {
        let mut m = monitor(3);
        let r = m.observe(Malicious);
        assert_eq!(r.level, EscalationLevel::Throttle);
        let r = m.observe(Benign);
        assert_eq!(r.level, EscalationLevel::Compensate);
        m.observe(Benign); // terminable at N* = 3
        let r = m.observe(Malicious);
        assert_eq!(r.level, EscalationLevel::Kill);
    }

    #[test]
    fn all_transitions_are_legal_per_fig3() {
        // Drive a monitor through a noisy inference stream and check that
        // every transition it takes is allowed by Fig. 3.
        let mut m = monitor(8);
        let stream = [
            Benign, Malicious, Benign, Benign, Malicious, Malicious, Benign, Benign, Benign,
            Malicious,
        ];
        let mut prev = m.state();
        for c in stream {
            let r = m.observe(c);
            assert!(
                prev.can_transition_to(r.state),
                "illegal transition {prev} -> {}",
                r.state
            );
            prev = r.state;
        }
    }
}
