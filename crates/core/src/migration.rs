//! Migration-based post-detection responses (the Fig. 5b baselines).
//!
//! Prior work responds to a detection by migrating the suspected process to
//! a different CPU core (Nomani et al.) or a different machine/VM (Zhang et
//! al.). Both satisfy R1 for contention-based attacks but charge *every*
//! detection — including false positives — a fixed migration cost. This
//! module models those baselines so Fig. 5b can compare them with Valkyrie
//! on identical inference traces.

use crate::threat::Classification;

/// A migration-based response policy.
///
/// On every malicious classification the process is migrated; the epoch in
/// which a migration happens loses `cost_epochs` worth of progress (cache /
/// TLB warm-up for core migration, checkpoint + transfer + restore downtime
/// for system migration). A cooldown models the migration logic refusing to
/// bounce a process faster than it can complete a migration.
///
/// # Examples
///
/// ```
/// use valkyrie_core::migration::MigrationPolicy;
/// let core = MigrationPolicy::core_migration();
/// let sys = MigrationPolicy::system_migration();
/// assert!(sys.cost_epochs() > core.cost_epochs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationPolicy {
    cost_epochs: f64,
    cooldown_epochs: u32,
}

impl MigrationPolicy {
    /// Migration to another CPU core on the same machine.
    ///
    /// Costs a fraction of an epoch: the migrated process re-warms its
    /// private caches, TLB and branch predictor state.
    pub fn core_migration() -> Self {
        Self {
            cost_epochs: 0.6,
            cooldown_epochs: 0,
        }
    }

    /// Migration to a different machine / VM over the network.
    ///
    /// Costs multiple epochs of downtime (checkpoint, transfer, restore),
    /// with a cooldown while the migration is in flight.
    pub fn system_migration() -> Self {
        Self {
            cost_epochs: 1.8,
            cooldown_epochs: 1,
        }
    }

    /// A custom policy.
    pub fn new(cost_epochs: f64, cooldown_epochs: u32) -> Self {
        Self {
            cost_epochs: cost_epochs.max(0.0),
            cooldown_epochs,
        }
    }

    /// Progress lost per migration, in epochs.
    pub fn cost_epochs(&self) -> f64 {
        self.cost_epochs
    }

    /// Epochs after a migration during which no new migration starts.
    pub fn cooldown_epochs(&self) -> u32 {
        self.cooldown_epochs
    }
}

/// Per-epoch progress of a process under a migration policy, given the
/// detector's inference trace (progress `1.0` = one unthrottled epoch).
///
/// Migration does not slow the process between migrations (unlike
/// throttling), but every malicious inference triggers a migration whose
/// cost is deducted from the following epochs.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{migration_progress, Classification, MigrationPolicy};
/// use Classification::*;
/// let progress = migration_progress(&[Benign, Malicious, Benign], MigrationPolicy::core_migration());
/// let total: f64 = progress.iter().sum();
/// assert!(total < 3.0 && total > 1.5);
/// ```
pub fn migration_progress(inferences: &[Classification], policy: MigrationPolicy) -> Vec<f64> {
    let mut progress = Vec::with_capacity(inferences.len());
    let mut debt = 0.0_f64; // pending migration downtime, in epochs
    let mut cooldown = 0_u32;
    for &c in inferences {
        if c.is_malicious() && cooldown == 0 {
            debt += policy.cost_epochs;
            cooldown = policy.cooldown_epochs;
        } else {
            cooldown = cooldown.saturating_sub(1);
        }
        let paid = debt.min(1.0);
        debt -= paid;
        progress.push(1.0 - paid);
    }
    progress
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowdown::slowdown_percent;
    use Classification::{Benign, Malicious};

    #[test]
    fn no_detections_no_cost() {
        let p = migration_progress(&[Benign; 10], MigrationPolicy::system_migration());
        assert!(p.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn each_detection_costs_one_migration() {
        let p = migration_progress(&[Malicious, Benign, Benign], MigrationPolicy::new(0.5, 0));
        assert_eq!(p, vec![0.5, 1.0, 1.0]);
    }

    #[test]
    fn system_migration_debt_spills_over_epochs() {
        let p = migration_progress(
            &[Malicious, Benign, Benign, Benign, Benign],
            MigrationPolicy::system_migration(),
        );
        // 1.8 epochs of downtime paid over the first two epochs.
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 0.2).abs() < 1e-12);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn cooldown_prevents_migration_storms() {
        let with_cd = migration_progress(&[Malicious; 6], MigrationPolicy::new(1.0, 2));
        let without_cd = migration_progress(&[Malicious; 6], MigrationPolicy::new(1.0, 0));
        let s_with: f64 = with_cd.iter().sum();
        let s_without: f64 = without_cd.iter().sum();
        assert!(s_with > s_without);
    }

    #[test]
    fn system_migration_slower_than_core_migration() {
        // An FP-prone benign trace: flagged 20% of epochs.
        let mut trace = Vec::new();
        for i in 0..50 {
            trace.push(if i % 5 == 0 { Malicious } else { Benign });
        }
        let base = vec![1.0; trace.len()];
        let core = migration_progress(&trace, MigrationPolicy::core_migration());
        let sys = migration_progress(&trace, MigrationPolicy::system_migration());
        let s_core = slowdown_percent(&base, &core);
        let s_sys = slowdown_percent(&base, &sys);
        assert!(s_sys > s_core, "system {s_sys}% vs core {s_core}%");
    }
}
