//! Detection-efficacy curves and the `N*` planner (Section IV-A).
//!
//! A runtime detector's efficacy improves with the number of captured
//! measurements (paper Fig. 1). Valkyrie lets the user specify the efficacy
//! their deployment needs (critical systems tolerate more false positives to
//! terminate earlier; general-purpose systems wait longer) and computes the
//! number of measurements `N*` required to reach it.

use crate::error::ValkyrieError;
use std::fmt;

/// One measured point of a detector's efficacy curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficacyPoint {
    /// Number of runtime measurements the detector has accumulated.
    pub measurements: u32,
    /// F1-score at that many measurements, in `[0, 1]`.
    pub f1: f64,
    /// False-positive rate at that many measurements, in `[0, 1]`.
    pub fpr: f64,
}

/// A detector's efficacy as a function of the number of measurements.
///
/// Raw measured curves are noisy; queries use the *monotone envelope*
/// (running maximum of F1, running minimum of FPR), which matches how a
/// deployment would pick `N*` from an empirical curve.
///
/// # Examples
///
/// ```
/// use valkyrie_core::{EfficacyCurve, EfficacyPoint, EfficacySpec};
/// let curve = EfficacyCurve::new(vec![
///     EfficacyPoint { measurements: 5, f1: 0.70, fpr: 0.30 },
///     EfficacyPoint { measurements: 23, f1: 0.92, fpr: 0.12 },
///     EfficacyPoint { measurements: 50, f1: 0.95, fpr: 0.08 },
/// ]).unwrap();
/// assert_eq!(curve.measurements_required(&EfficacySpec::f1_at_least(0.9)).unwrap(), 23);
/// assert!(curve.measurements_required(&EfficacySpec::f1_at_least(0.99)).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyCurve {
    points: Vec<EfficacyPoint>,
}

impl EfficacyCurve {
    /// Builds a curve from measured points.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::InvalidCurve`] when `points` is empty, not
    /// strictly increasing in `measurements`, or contains metrics outside
    /// `[0, 1]`.
    pub fn new(points: Vec<EfficacyPoint>) -> Result<Self, ValkyrieError> {
        if points.is_empty() {
            return Err(ValkyrieError::InvalidCurve("no points supplied".into()));
        }
        for w in points.windows(2) {
            if w[1].measurements <= w[0].measurements {
                return Err(ValkyrieError::InvalidCurve(format!(
                    "measurements not strictly increasing at {}",
                    w[1].measurements
                )));
            }
        }
        for p in &points {
            if !(0.0..=1.0).contains(&p.f1) || !(0.0..=1.0).contains(&p.fpr) {
                return Err(ValkyrieError::InvalidCurve(format!(
                    "metrics out of range at {} measurements (f1={}, fpr={})",
                    p.measurements, p.f1, p.fpr
                )));
            }
        }
        Ok(Self { points })
    }

    /// The measured points, ordered by measurement count.
    pub fn points(&self) -> &[EfficacyPoint] {
        &self.points
    }

    /// Best (running-maximum) F1 achievable with at most `n` measurements.
    ///
    /// Returns `None` if `n` is below the first measured point.
    pub fn f1_at(&self, n: u32) -> Option<f64> {
        let mut best: Option<f64> = None;
        for p in &self.points {
            if p.measurements > n {
                break;
            }
            best = Some(best.map_or(p.f1, |b: f64| b.max(p.f1)));
        }
        best
    }

    /// Best (running-minimum) FPR achievable with at most `n` measurements.
    pub fn fpr_at(&self, n: u32) -> Option<f64> {
        let mut best: Option<f64> = None;
        for p in &self.points {
            if p.measurements > n {
                break;
            }
            best = Some(best.map_or(p.fpr, |b: f64| b.min(p.fpr)));
        }
        best
    }

    /// The smallest measurement count whose monotone-envelope efficacy
    /// satisfies `spec` — the paper's `N*`.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnreachableEfficacy`] when no point on the
    /// curve satisfies the specification.
    pub fn measurements_required(&self, spec: &EfficacySpec) -> Result<u32, ValkyrieError> {
        let mut best_f1 = 0.0_f64;
        let mut best_fpr = 1.0_f64;
        for p in &self.points {
            best_f1 = best_f1.max(p.f1);
            best_fpr = best_fpr.min(p.fpr);
            let f1_ok = spec.min_f1.is_none_or(|t| best_f1 >= t);
            let fpr_ok = spec.max_fpr.is_none_or(|t| best_fpr <= t);
            if f1_ok && fpr_ok {
                return Ok(p.measurements);
            }
        }
        Err(ValkyrieError::UnreachableEfficacy {
            constraint: spec.to_string(),
        })
    }
}

/// A user's detection-efficacy requirement.
///
/// Both constraints may be combined; `N*` is the first measurement count
/// satisfying all of them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EfficacySpec {
    /// Minimum acceptable F1-score, if constrained.
    pub min_f1: Option<f64>,
    /// Maximum acceptable false-positive rate, if constrained.
    pub max_fpr: Option<f64>,
}

impl EfficacySpec {
    /// Requires an F1-score of at least `f1`.
    pub fn f1_at_least(f1: f64) -> Self {
        Self {
            min_f1: Some(f1),
            max_fpr: None,
        }
    }

    /// Requires a false-positive rate of at most `fpr`.
    pub fn fpr_at_most(fpr: f64) -> Self {
        Self {
            min_f1: None,
            max_fpr: Some(fpr),
        }
    }

    /// Adds an F1 constraint to this specification.
    #[must_use]
    pub fn and_f1_at_least(mut self, f1: f64) -> Self {
        self.min_f1 = Some(f1);
        self
    }

    /// Adds an FPR constraint to this specification.
    #[must_use]
    pub fn and_fpr_at_most(mut self, fpr: f64) -> Self {
        self.max_fpr = Some(fpr);
        self
    }
}

impl fmt::Display for EfficacySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min_f1, self.max_fpr) {
            (Some(f1), Some(fpr)) => write!(f, "F1 >= {f1} and FPR <= {fpr}"),
            (Some(f1), None) => write!(f, "F1 >= {f1}"),
            (None, Some(fpr)) => write!(f, "FPR <= {fpr}"),
            (None, None) => write!(f, "no constraint"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> EfficacyCurve {
        EfficacyCurve::new(vec![
            EfficacyPoint {
                measurements: 5,
                f1: 0.70,
                fpr: 0.35,
            },
            EfficacyPoint {
                measurements: 10,
                f1: 0.68, // noise dip — envelope should ignore it
                fpr: 0.25,
            },
            EfficacyPoint {
                measurements: 23,
                f1: 0.91,
                fpr: 0.15,
            },
            EfficacyPoint {
                measurements: 50,
                f1: 0.94,
                fpr: 0.09,
            },
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_and_unsorted_and_out_of_range() {
        assert!(EfficacyCurve::new(vec![]).is_err());
        assert!(EfficacyCurve::new(vec![
            EfficacyPoint {
                measurements: 5,
                f1: 0.5,
                fpr: 0.5
            },
            EfficacyPoint {
                measurements: 5,
                f1: 0.6,
                fpr: 0.4
            },
        ])
        .is_err());
        assert!(EfficacyCurve::new(vec![EfficacyPoint {
            measurements: 1,
            f1: 1.5,
            fpr: 0.0
        }])
        .is_err());
    }

    #[test]
    fn envelope_is_monotone() {
        let c = curve();
        assert_eq!(c.f1_at(10), Some(0.70)); // dip ignored
        assert_eq!(c.fpr_at(10), Some(0.25));
        assert_eq!(c.f1_at(4), None);
        assert_eq!(c.f1_at(100), Some(0.94));
    }

    #[test]
    fn n_star_for_f1_matches_fig1_narrative() {
        // Paper: "to get an F1-Score of more than 0.9, the XGBoost detector
        // would need 23 measurements".
        let c = curve();
        assert_eq!(
            c.measurements_required(&EfficacySpec::f1_at_least(0.9))
                .unwrap(),
            23
        );
    }

    #[test]
    fn n_star_for_fpr() {
        let c = curve();
        assert_eq!(
            c.measurements_required(&EfficacySpec::fpr_at_most(0.10))
                .unwrap(),
            50
        );
    }

    #[test]
    fn combined_spec_takes_the_later_point() {
        let c = curve();
        let spec = EfficacySpec::f1_at_least(0.9).and_fpr_at_most(0.1);
        assert_eq!(c.measurements_required(&spec).unwrap(), 50);
    }

    #[test]
    fn unreachable_spec_is_an_error() {
        let c = curve();
        let err = c
            .measurements_required(&EfficacySpec::f1_at_least(0.99))
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::UnreachableEfficacy { .. }));
    }

    #[test]
    fn empty_spec_is_satisfied_immediately() {
        let c = curve();
        assert_eq!(
            c.measurements_required(&EfficacySpec::default()).unwrap(),
            5
        );
    }

    #[test]
    fn spec_display() {
        assert_eq!(
            EfficacySpec::f1_at_least(0.9)
                .and_fpr_at_most(0.1)
                .to_string(),
            "F1 >= 0.9 and FPR <= 0.1"
        );
    }
}
