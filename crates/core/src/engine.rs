//! The multi-process Valkyrie engine: monitors + actuators behind a detector.
//!
//! [`ValkyrieEngine`] is the piece that "augments" a detector (paper Fig. 2):
//! every epoch the caller feeds it each process's inference, and the engine
//! answers with the resource shares to enforce and whether to restore or
//! terminate. It owns one [`Monitor`] (Algorithm 1) and one actuator instance
//! per process.

use crate::actuator::{Actuator, CompositeActuator, ShareActuator};
use crate::efficacy::{EfficacyCurve, EfficacySpec};
use crate::error::ValkyrieError;
use crate::monitor::{Directive, Monitor};
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::threat::{AssessmentFn, Classification, ThreatIndex};
use std::collections::HashMap;

/// The response action the embedder must enact after an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing to do.
    None,
    /// Apply the accompanying (reduced) resource shares.
    Throttle,
    /// Apply the accompanying (partially recovered) resource shares.
    Recover,
    /// Remove all restrictions (`A_reset` or return-to-normal).
    Restore,
    /// Remove all restrictions *and* begin a new measurement cycle
    /// (cyclic monitoring's benign verdict at `N*`; see
    /// [`EngineConfigBuilder::cyclic`]). Embedders that keep per-process
    /// measurement history should reset it here.
    RestoreAndRecycle,
    /// Terminate the process.
    Terminate,
}

/// Engine output for one `(process, epoch)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineResponse {
    /// The process this response concerns.
    pub pid: ProcessId,
    /// Fig. 3 state after the observation.
    pub state: ProcessState,
    /// Threat index after the observation.
    pub threat: ThreatIndex,
    /// Resource shares to enforce for the next epoch.
    pub resources: ResourceVector,
    /// The action to enact.
    pub action: Action,
}

/// Configuration of a [`ValkyrieEngine`].
///
/// Build one with [`EngineConfig::builder`]. `N*` can be given directly or
/// derived from a measured [`EfficacyCurve`] plus a user [`EfficacySpec`]
/// (Section IV-A: "users can specify the expected detection efficacy \[and\]
/// Valkyrie computes the number of measurements needed to achieve it").
#[derive(Debug, Clone)]
pub struct EngineConfig<A = CompositeActuator> {
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    actuator: A,
    cyclic: bool,
}

impl EngineConfig<CompositeActuator> {
    /// Starts building a configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

impl<A: Actuator + Clone> EngineConfig<A> {
    /// The measurement requirement `N*`.
    pub fn measurements_required(&self) -> u64 {
        self.n_star
    }

    /// The penalty assessment function.
    pub fn penalty_fn(&self) -> AssessmentFn {
        self.fp
    }

    /// The compensation assessment function.
    pub fn compensation_fn(&self) -> AssessmentFn {
        self.fc
    }

    /// The prototype actuator cloned for each monitored process.
    pub fn actuator(&self) -> &A {
        &self.actuator
    }

    /// Whether monitoring is cyclic (Algorithm 1's outer loop; see
    /// [`crate::Monitor::new_cyclic`]).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }
}

/// Builder for [`EngineConfig`] (see `C-BUILDER`).
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let curve = EfficacyCurve::new(vec![
///     EfficacyPoint { measurements: 5, f1: 0.70, fpr: 0.30 },
///     EfficacyPoint { measurements: 23, f1: 0.92, fpr: 0.12 },
///     EfficacyPoint { measurements: 50, f1: 0.95, fpr: 0.08 },
/// ]).unwrap();
///
/// let config = EngineConfig::builder()
///     .efficacy(&curve, &EfficacySpec::f1_at_least(0.9))
///     .unwrap()
///     .actuator_part(ShareActuator::scheduler_weight(0.1, 0.01))
///     .build()
///     .unwrap();
/// assert_eq!(config.measurements_required(), 23);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    n_star: Option<u64>,
    fp: AssessmentFn,
    fc: AssessmentFn,
    parts: Vec<ShareActuator>,
    cyclic: bool,
}

impl EngineConfigBuilder {
    /// Sets `N*` directly.
    pub fn measurements_required(mut self, n_star: u64) -> Self {
        self.n_star = Some(n_star);
        self
    }

    /// Derives `N*` from a measured efficacy curve and a user specification.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnreachableEfficacy`] when no number of
    /// measurements on the curve satisfies the specification.
    pub fn efficacy(
        mut self,
        curve: &EfficacyCurve,
        spec: &EfficacySpec,
    ) -> Result<Self, ValkyrieError> {
        self.n_star = Some(u64::from(curve.measurements_required(spec)?));
        Ok(self)
    }

    /// Sets the penalty assessment function `F_p` (default: incremental).
    pub fn penalty(mut self, fp: AssessmentFn) -> Self {
        self.fp = fp;
        self
    }

    /// Sets the compensation assessment function `F_c` (default: incremental).
    pub fn compensation(mut self, fc: AssessmentFn) -> Self {
        self.fc = fc;
        self
    }

    /// Adds a per-resource actuator; may be called multiple times.
    pub fn actuator_part(mut self, part: ShareActuator) -> Self {
        self.parts.push(part);
        self
    }

    /// Replaces all actuator parts with a single actuator.
    pub fn actuator(mut self, part: ShareActuator) -> Self {
        self.parts = vec![part];
        self
    }

    /// Enables cyclic monitoring: after a benign verdict at `N*`
    /// measurements, resources are restored and a fresh measurement cycle
    /// begins (Algorithm 1's outer `while t is executing` loop). Default:
    /// one-shot, as drawn in Fig. 3.
    pub fn cyclic(mut self, cyclic: bool) -> Self {
        self.cyclic = cyclic;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::InvalidConfig`] if `N*` was never set, is
    /// zero, or no actuator part was supplied.
    pub fn build(self) -> Result<EngineConfig<CompositeActuator>, ValkyrieError> {
        let n_star = self
            .n_star
            .ok_or_else(|| ValkyrieError::InvalidConfig("N* was not set".into()))?;
        if n_star == 0 {
            return Err(ValkyrieError::InvalidConfig(
                "N* must be at least one measurement".into(),
            ));
        }
        if self.parts.is_empty() {
            return Err(ValkyrieError::InvalidConfig(
                "at least one actuator part is required".into(),
            ));
        }
        Ok(EngineConfig {
            n_star,
            fp: self.fp,
            fc: self.fc,
            actuator: CompositeActuator::new(self.parts),
            cyclic: self.cyclic,
        })
    }
}

#[derive(Debug, Clone)]
struct TrackedProcess<A> {
    monitor: Monitor,
    actuator: A,
    resources: ResourceVector,
}

/// The Valkyrie response engine (paper Fig. 2).
///
/// Processes are tracked lazily: the first observation of an unknown
/// [`ProcessId`] registers it in the *normal* state with full resources.
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let config = EngineConfig::builder()
///     .measurements_required(5)
///     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
///     .build()
///     .unwrap();
/// let mut engine = ValkyrieEngine::new(config);
/// let resp = engine.observe(ProcessId(7), Classification::Malicious);
/// assert_eq!(resp.action, Action::Throttle);
/// assert!(resp.resources.cpu < 1.0);
/// ```
#[derive(Debug)]
pub struct ValkyrieEngine<A: Actuator + Clone = CompositeActuator> {
    config: EngineConfig<A>,
    procs: HashMap<ProcessId, TrackedProcess<A>>,
}

impl<A: Actuator + Clone> ValkyrieEngine<A> {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig<A>) -> Self {
        Self {
            config,
            procs: HashMap::new(),
        }
    }

    /// Creates an engine with a non-composite actuator prototype.
    pub fn with_actuator(n_star: u64, fp: AssessmentFn, fc: AssessmentFn, actuator: A) -> Self {
        Self::new(EngineConfig {
            n_star,
            fp,
            fc,
            actuator,
            cyclic: false,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig<A> {
        &self.config
    }

    /// Number of processes currently tracked (terminated ones included).
    pub fn tracked(&self) -> usize {
        self.procs.len()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.procs.get(&pid).map(|p| p.monitor.state())
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.procs.get(&pid).map(|p| p.monitor.threat())
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.procs.get(&pid).map(|p| p.resources)
    }

    /// Feeds one epoch's detector inference for `pid` and returns the
    /// response to enact.
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        let config = &self.config;
        let tracked = self.procs.entry(pid).or_insert_with(|| TrackedProcess {
            monitor: if config.cyclic {
                Monitor::new_cyclic(config.n_star, config.fp, config.fc)
            } else {
                Monitor::new(config.n_star, config.fp, config.fc)
            },
            actuator: config.actuator.clone(),
            resources: ResourceVector::FULL,
        });

        let report = tracked.monitor.observe(inference);
        let action = match report.directive {
            Directive::Continue => Action::None,
            Directive::Adjust { delta_threat } => {
                tracked.resources = tracked.actuator.apply(&tracked.resources, delta_threat);
                if delta_threat > 0.0 {
                    Action::Throttle
                } else if delta_threat < 0.0 {
                    Action::Recover
                } else {
                    Action::None
                }
            }
            Directive::ResetToNormal => {
                // Invariant from Section V-A: "a threat index of 0 implies
                // that the process … has no restrictions on the system
                // resources".
                tracked.resources = tracked.actuator.reset();
                Action::Restore
            }
            Directive::Restore => {
                // A_reset at the terminable verdict; under cyclic
                // monitoring this also starts a fresh measurement cycle.
                tracked.resources = tracked.actuator.reset();
                if config.cyclic {
                    Action::RestoreAndRecycle
                } else {
                    Action::Restore
                }
            }
            Directive::Terminate => Action::Terminate,
        };

        EngineResponse {
            pid,
            state: report.state,
            threat: report.threat,
            resources: tracked.resources,
            action,
        }
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let tracked = self
            .procs
            .get_mut(&pid)
            .ok_or(ValkyrieError::UnknownProcess(pid.0))?;
        tracked.monitor.complete();
        Ok(())
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        self.procs.remove(&pid);
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.procs
            .iter()
            .map(|(pid, p)| (*pid, p.monitor.state(), p.monitor.threat()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn engine(n_star: u64) -> ValkyrieEngine {
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        ValkyrieEngine::new(config)
    }

    #[test]
    fn builder_requires_n_star_and_actuator() {
        let err = EngineConfig::builder().build().unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(0)
            .actuator(ShareActuator::cpu_percent_point(0.1, 0.01))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
    }

    #[test]
    fn first_observation_registers_process() {
        let mut e = engine(10);
        assert_eq!(e.tracked(), 0);
        e.observe(ProcessId(1), Benign);
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(ProcessId(1)), Some(ProcessState::Normal));
    }

    #[test]
    fn throttle_then_full_recovery_restores_resources() {
        let mut e = engine(100);
        let pid = ProcessId(1);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert!((r.resources.cpu - 0.9).abs() < 1e-12);
        let r = e.observe(pid, Malicious);
        assert!((r.resources.cpu - 0.7).abs() < 1e-12);
        // Recover: threat 3 -> 2 -> 0.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Recover);
        assert!((r.resources.cpu - 0.8).abs() < 1e-12);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Normal);
    }

    #[test]
    fn attack_is_terminated_only_in_terminable_state() {
        let mut e = engine(4);
        let pid = ProcessId(9);
        let mut terminated_at = None;
        for epoch in 1..=6 {
            let r = e.observe(pid, Malicious);
            if r.action == Action::Terminate {
                terminated_at = Some(epoch);
                break;
            }
        }
        // 4 epochs accumulate N*, the 5th (terminable) classification kills.
        assert_eq!(terminated_at, Some(5));
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
    }

    #[test]
    fn false_positive_is_restored_in_terminable_state() {
        let mut e = engine(3);
        let pid = ProcessId(2);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn resources_respect_floor_under_sustained_attack() {
        let mut e = engine(1000);
        let pid = ProcessId(3);
        let mut last = ResourceVector::FULL;
        for _ in 0..50 {
            last = e.observe(pid, Malicious).resources;
        }
        assert_eq!(last.cpu, 0.01);
        assert!(last.is_valid());
    }

    #[test]
    fn independent_processes_do_not_interfere() {
        let mut e = engine(100);
        e.observe(ProcessId(1), Malicious);
        e.observe(ProcessId(2), Benign);
        assert!(e.resources(ProcessId(1)).unwrap().cpu < 1.0);
        assert!(e.resources(ProcessId(2)).unwrap().is_full());
    }

    #[test]
    fn complete_and_forget() {
        let mut e = engine(10);
        let pid = ProcessId(5);
        assert!(e.complete(pid).is_err());
        e.observe(pid, Benign);
        e.complete(pid).unwrap();
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
        e.forget(pid);
        assert_eq!(e.state(pid), None);
    }

    #[test]
    fn cyclic_engine_rearms_after_restore() {
        let config = EngineConfig::builder()
            .measurements_required(3)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .cyclic(true)
            .build()
            .unwrap();
        let mut e = ValkyrieEngine::new(config);
        let pid = ProcessId(1);
        // Cycle 1: two FPs, one benign; terminable at measurement 3.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Benign);
        // Terminable verdict: benign -> restore + new cycle.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::RestoreAndRecycle);
        assert_eq!(r.state, ProcessState::Normal);
        // Cycle 2 can throttle again...
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert_eq!(r.state, ProcessState::Suspicious);
        // ...and still terminate an attack at the end of its cycle.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Terminate);
    }

    #[test]
    fn iter_reports_all_processes() {
        let mut e = engine(10);
        e.observe(ProcessId(1), Benign);
        e.observe(ProcessId(2), Malicious);
        let mut pids: Vec<u64> = e.iter().map(|(pid, _, _)| pid.0).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![1, 2]);
    }
}
