//! The multi-process Valkyrie engine: monitors + actuators behind a detector.
//!
//! [`ValkyrieEngine`] is the piece that "augments" a detector (paper Fig. 2):
//! every epoch the caller feeds it each process's inference, and the engine
//! answers with the resource shares to enforce and whether to restore or
//! terminate. It owns one [`Monitor`] (Algorithm 1) and one actuator instance
//! per process.
//!
//! The per-process bookkeeping lives in [`EngineShard`]: one process map
//! plus the observe path. [`ValkyrieEngine`] is a single shard behind the
//! original one-process-at-a-time API; the scaling tier in
//! [`crate::sharded`] runs many shards side by side behind a batch API.

use crate::actuator::{Actuator, CompositeActuator, ShareActuator};
use crate::efficacy::{EfficacyCurve, EfficacySpec};
use crate::error::ValkyrieError;
use crate::hash::FxBuildHasher;
use crate::monitor::{Directive, EscalationLadder, EscalationLevel, Monitor, StepReport};
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::telemetry::FusionStats;
use crate::threat::{stale_weight, AssessmentFn, Classification, Evidence, ThreatIndex, Verdict};
use std::collections::HashMap;

/// The response action the embedder must enact after an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing to do.
    None,
    /// Apply the accompanying (reduced) resource shares.
    Throttle,
    /// Apply the accompanying (partially recovered) resource shares.
    Recover,
    /// Remove all restrictions (`A_reset` or return-to-normal).
    Restore,
    /// Remove all restrictions *and* begin a new measurement cycle
    /// (cyclic monitoring's benign verdict at `N*`; see
    /// [`EngineConfigBuilder::cyclic`]). Embedders that keep per-process
    /// measurement history should reset it here.
    RestoreAndRecycle,
    /// Terminate the process.
    Terminate,
}

/// Engine output for one `(process, epoch)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineResponse {
    /// The process this response concerns.
    pub pid: ProcessId,
    /// Fig. 3 state after the observation.
    pub state: ProcessState,
    /// Threat index after the observation.
    pub threat: ThreatIndex,
    /// Resource shares to enforce for the next epoch.
    pub resources: ResourceVector,
    /// The action to enact.
    pub action: Action,
}

/// Configuration of the verdict-fusion tier (see
/// [`EngineShard::absorb_verdict`]).
///
/// `weights[detector_id]` is each ensemble member's fusion weight
/// (`default_weight` for ids past the end of the table); `stale_decay`
/// down-weights members whose last verdict outlived its cadence
/// ([`stale_weight`]); `ladder` maps the fused evidence mass to the
/// graduated escalation level each epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionConfig {
    /// Per-detector fusion weights, indexed by detector id.
    pub weights: Vec<f64>,
    /// Weight for detector ids not covered by `weights`.
    pub default_weight: f64,
    /// Per-overdue-epoch weight multiplier for stale verdicts
    /// (1.0 disables staleness decay).
    pub stale_decay: f64,
    /// The escalation ladder driven by the fused mass.
    pub ladder: EscalationLadder,
}

impl Default for FusionConfig {
    /// Unit weights, no staleness decay, the graduated ladder.
    fn default() -> Self {
        Self {
            weights: Vec::new(),
            default_weight: 1.0,
            stale_decay: 1.0,
            ladder: EscalationLadder::default(),
        }
    }
}

impl FusionConfig {
    /// The fusion weight of a detector id.
    pub fn weight_of(&self, detector: u32) -> f64 {
        self.weights
            .get(detector as usize)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

/// Configuration of a [`ValkyrieEngine`].
///
/// Build one with [`EngineConfig::builder`]. `N*` can be given directly or
/// derived from a measured [`EfficacyCurve`] plus a user [`EfficacySpec`]
/// (Section IV-A: "users can specify the expected detection efficacy \[and\]
/// Valkyrie computes the number of measurements needed to achieve it").
#[derive(Debug, Clone)]
pub struct EngineConfig<A = CompositeActuator> {
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    actuator: A,
    cyclic: bool,
    fusion: FusionConfig,
}

impl EngineConfig<CompositeActuator> {
    /// Starts building a configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

impl<A: Actuator + Clone> EngineConfig<A> {
    /// The measurement requirement `N*`.
    pub fn measurements_required(&self) -> u64 {
        self.n_star
    }

    /// The penalty assessment function.
    pub fn penalty_fn(&self) -> AssessmentFn {
        self.fp
    }

    /// The compensation assessment function.
    pub fn compensation_fn(&self) -> AssessmentFn {
        self.fc
    }

    /// The prototype actuator cloned for each monitored process.
    pub fn actuator(&self) -> &A {
        &self.actuator
    }

    /// Whether monitoring is cyclic (Algorithm 1's outer loop; see
    /// [`crate::Monitor::new_cyclic`]).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// The verdict-fusion configuration.
    pub fn fusion(&self) -> &FusionConfig {
        &self.fusion
    }
}

/// Builder for [`EngineConfig`] (see `C-BUILDER`).
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let curve = EfficacyCurve::new(vec![
///     EfficacyPoint { measurements: 5, f1: 0.70, fpr: 0.30 },
///     EfficacyPoint { measurements: 23, f1: 0.92, fpr: 0.12 },
///     EfficacyPoint { measurements: 50, f1: 0.95, fpr: 0.08 },
/// ]).unwrap();
///
/// let config = EngineConfig::builder()
///     .efficacy(&curve, &EfficacySpec::f1_at_least(0.9))
///     .unwrap()
///     .actuator_part(ShareActuator::scheduler_weight(0.1, 0.01))
///     .build()
///     .unwrap();
/// assert_eq!(config.measurements_required(), 23);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    n_star: Option<u64>,
    fp: AssessmentFn,
    fc: AssessmentFn,
    parts: Vec<ShareActuator>,
    cyclic: bool,
    fusion: FusionConfig,
}

impl EngineConfigBuilder {
    /// Sets `N*` directly.
    pub fn measurements_required(mut self, n_star: u64) -> Self {
        self.n_star = Some(n_star);
        self
    }

    /// Derives `N*` from a measured efficacy curve and a user specification.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnreachableEfficacy`] when no number of
    /// measurements on the curve satisfies the specification.
    pub fn efficacy(
        mut self,
        curve: &EfficacyCurve,
        spec: &EfficacySpec,
    ) -> Result<Self, ValkyrieError> {
        self.n_star = Some(u64::from(curve.measurements_required(spec)?));
        Ok(self)
    }

    /// Sets the penalty assessment function `F_p` (default: incremental).
    pub fn penalty(mut self, fp: AssessmentFn) -> Self {
        self.fp = fp;
        self
    }

    /// Sets the compensation assessment function `F_c` (default: incremental).
    pub fn compensation(mut self, fc: AssessmentFn) -> Self {
        self.fc = fc;
        self
    }

    /// Adds a per-resource actuator; may be called multiple times.
    pub fn actuator_part(mut self, part: ShareActuator) -> Self {
        self.parts.push(part);
        self
    }

    /// Replaces all actuator parts with a single actuator.
    pub fn actuator(mut self, part: ShareActuator) -> Self {
        self.parts = vec![part];
        self
    }

    /// Enables cyclic monitoring: after a benign verdict at `N*`
    /// measurements, resources are restored and a fresh measurement cycle
    /// begins (Algorithm 1's outer `while t is executing` loop). Default:
    /// one-shot, as drawn in Fig. 3.
    pub fn cyclic(mut self, cyclic: bool) -> Self {
        self.cyclic = cyclic;
        self
    }

    /// Configures the verdict-fusion tier (weights, staleness decay and the
    /// escalation ladder). Default: unit weights, no decay, the graduated
    /// ladder.
    pub fn fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::InvalidConfig`] if `N*` was never set, is
    /// zero, or no actuator part was supplied.
    pub fn build(self) -> Result<EngineConfig<CompositeActuator>, ValkyrieError> {
        let n_star = self
            .n_star
            .ok_or_else(|| ValkyrieError::InvalidConfig("N* was not set".into()))?;
        if n_star == 0 {
            return Err(ValkyrieError::InvalidConfig(
                "N* must be at least one measurement".into(),
            ));
        }
        if self.parts.is_empty() {
            return Err(ValkyrieError::InvalidConfig(
                "at least one actuator part is required".into(),
            ));
        }
        Ok(EngineConfig {
            n_star,
            fp: self.fp,
            fc: self.fc,
            actuator: CompositeActuator::new(self.parts),
            cyclic: self.cyclic,
            fusion: self.fusion,
        })
    }
}

#[derive(Debug, Clone)]
struct TrackedProcess<A> {
    monitor: Monitor,
    actuator: A,
    resources: ResourceVector,
    /// Escalation rung of the previous step, for ladder-transition
    /// telemetry.
    level: EscalationLevel,
}

impl<A: Actuator + Clone> TrackedProcess<A> {
    fn new(config: &EngineConfig<A>) -> Self {
        TrackedProcess {
            monitor: if config.cyclic {
                Monitor::new_cyclic(config.n_star, config.fp, config.fc)
            } else {
                Monitor::new(config.n_star, config.fp, config.fc)
            },
            actuator: config.actuator.clone(),
            resources: ResourceVector::FULL,
            level: EscalationLevel::Observe,
        }
    }
}

/// Advances one tracked process by one inference. Free-standing so the
/// shard can split-borrow its config and its map entry.
fn step<A: Actuator>(
    cyclic: bool,
    pid: ProcessId,
    tracked: &mut TrackedProcess<A>,
    inference: Classification,
    stats: &mut FusionStats,
) -> EngineResponse {
    let report = tracked.monitor.observe(inference);
    enact(cyclic, pid, tracked, report, stats)
}

/// Turns a monitor step report into the response to enact, updating the
/// tracked actuator state and the escalation-transition telemetry.
fn enact<A: Actuator>(
    cyclic: bool,
    pid: ProcessId,
    tracked: &mut TrackedProcess<A>,
    report: StepReport,
    stats: &mut FusionStats,
) -> EngineResponse {
    if report.level > tracked.level && report.level >= EscalationLevel::Throttle {
        stats.escalations += 1;
    }
    tracked.level = report.level;
    let action = match report.directive {
        Directive::Continue => Action::None,
        Directive::Adjust { delta_threat } => {
            tracked.resources = tracked.actuator.apply(&tracked.resources, delta_threat);
            if delta_threat > 0.0 {
                Action::Throttle
            } else if delta_threat < 0.0 {
                Action::Recover
            } else {
                Action::None
            }
        }
        Directive::ResetToNormal => {
            // Invariant from Section V-A: "a threat index of 0 implies
            // that the process … has no restrictions on the system
            // resources".
            tracked.resources = tracked.actuator.reset();
            Action::Restore
        }
        Directive::Restore => {
            // A_reset at the terminable verdict; under cyclic
            // monitoring this also starts a fresh measurement cycle.
            tracked.resources = tracked.actuator.reset();
            if cyclic {
                Action::RestoreAndRecycle
            } else {
                Action::Restore
            }
        }
        Directive::Terminate => Action::Terminate,
    };

    EngineResponse {
        pid,
        state: report.state,
        threat: report.threat,
        resources: tracked.resources,
        action,
    }
}

/// One partition of the engine: a process map plus the observe path.
///
/// An `EngineShard` is the unit the scaling tier distributes work over:
/// [`ValkyrieEngine`] is exactly one shard, and
/// [`ShardedEngine`](crate::sharded::ShardedEngine) owns `N` of them, each
/// responsible for the processes whose id hashes onto it. Algorithm 1
/// semantics are per process, so a shard never needs to see another
/// shard's processes.
///
/// Processes are tracked lazily: the first observation of an unknown
/// [`ProcessId`] registers it in the *normal* state with full resources.
/// The map distinguishes **live** processes from **terminated** ones that
/// are kept for post-mortem queries until [`EngineShard::purge_terminated`]
/// (or [`EngineShard::forget`]) evicts them.
#[derive(Debug)]
pub struct EngineShard<A: Actuator + Clone = CompositeActuator> {
    config: EngineConfig<A>,
    procs: HashMap<ProcessId, TrackedProcess<A>, FxBuildHasher>,
    /// Per-process fusion table: the latest evidence from each ensemble
    /// member, kept across epochs so slow members stay represented.
    evidence: HashMap<ProcessId, FusionCell, FxBuildHasher>,
    /// Processes with fresh evidence since the last fuse, in first-arrival
    /// order (the response order of [`EngineShard::fuse_step_into`]).
    dirty: Vec<ProcessId>,
    /// Fusion clock: one tick per fuse pass, for staleness accounting.
    fusion_tick: u64,
    fusion_stats: FusionStats,
}

/// The latest evidence one ensemble member supplied about a process.
#[derive(Debug, Clone, Copy)]
struct MemberEvidence {
    detector: u32,
    confidence: f64,
    cadence: u32,
    /// Fusion tick the verdict was absorbed into.
    seen_tick: u64,
}

/// Per-process fusion state: one slot per ensemble member, plus the dirty
/// flag keeping the pid at most once in the shard's dirty list.
#[derive(Debug, Clone, Default)]
struct FusionCell {
    members: Vec<MemberEvidence>,
    dirty: bool,
}

impl<A: Actuator + Clone> EngineShard<A> {
    /// Creates an empty shard from a configuration.
    pub fn new(config: EngineConfig<A>) -> Self {
        Self::with_capacity(config, 0)
    }

    /// Creates a shard pre-sized for `capacity` processes, so batch
    /// embedders don't pay rehash-and-move costs while the fleet registers.
    pub fn with_capacity(config: EngineConfig<A>, capacity: usize) -> Self {
        Self {
            config,
            procs: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            evidence: HashMap::default(),
            dirty: Vec::new(),
            fusion_tick: 0,
            fusion_stats: FusionStats::default(),
        }
    }

    /// The shard configuration.
    pub fn config(&self) -> &EngineConfig<A> {
        &self.config
    }

    /// Number of processes currently tracked, **terminated ones included**
    /// (they stay queryable until purged). Live count: [`Self::tracked_live`].
    pub fn tracked(&self) -> usize {
        self.procs.len()
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.monitor.state().is_live())
            .count()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.procs.get(&pid).map(|p| p.monitor.state())
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.procs.get(&pid).map(|p| p.monitor.threat())
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.procs.get(&pid).map(|p| p.resources)
    }

    /// Feeds one epoch's detector inference for `pid` and returns the
    /// response to enact.
    ///
    /// The hot path — a repeat observation of an already-tracked process —
    /// is a single `get_mut` lookup; only the first observation of an
    /// unknown pid falls into the registration path.
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        if let Some(tracked) = self.procs.get_mut(&pid) {
            return step(
                self.config.cyclic,
                pid,
                tracked,
                inference,
                &mut self.fusion_stats,
            );
        }
        let config = &self.config;
        let tracked = self
            .procs
            .entry(pid)
            .or_insert_with(|| TrackedProcess::new(config));
        step(
            config.cyclic,
            pid,
            tracked,
            inference,
            &mut self.fusion_stats,
        )
    }

    /// Advances a process by one fused evidence mass under the configured
    /// escalation ladder (the weighted-evidence sibling of
    /// [`EngineShard::observe`]).
    pub fn observe_mass(&mut self, pid: ProcessId, mass: f64) -> EngineResponse {
        let ladder = self.config.fusion.ladder;
        let cyclic = self.config.cyclic;
        if let Some(tracked) = self.procs.get_mut(&pid) {
            let report = tracked.monitor.observe_mass_with(ladder, mass);
            return enact(cyclic, pid, tracked, report, &mut self.fusion_stats);
        }
        let config = &self.config;
        let tracked = self
            .procs
            .entry(pid)
            .or_insert_with(|| TrackedProcess::new(config));
        let report = tracked.monitor.observe_mass_with(ladder, mass);
        enact(cyclic, pid, tracked, report, &mut self.fusion_stats)
    }

    /// Absorbs one ensemble member's verdict into the fusion table without
    /// advancing the monitor. The process is stepped (once, regardless of
    /// how many members published) by the next
    /// [`EngineShard::fuse_step_into`].
    pub fn absorb_verdict(&mut self, pid: ProcessId, verdict: Verdict) {
        self.fusion_stats.saw(verdict.detector);
        let cell = self.evidence.entry(pid).or_default();
        let seen_tick = self.fusion_tick + 1;
        match cell
            .members
            .iter_mut()
            .find(|m| m.detector == verdict.detector)
        {
            Some(m) => {
                m.confidence = verdict.confidence;
                m.cadence = verdict.cadence;
                m.seen_tick = seen_tick;
            }
            None => cell.members.push(MemberEvidence {
                detector: verdict.detector,
                confidence: verdict.confidence,
                cadence: verdict.cadence,
                seen_tick,
            }),
        }
        if !cell.dirty {
            cell.dirty = true;
            self.dirty.push(pid);
        }
    }

    /// Fuses all pending evidence and advances each touched process by one
    /// monitor step, appending one response per dirty process (first-arrival
    /// order) to `out`.
    ///
    /// Members that last published longer ago than their cadence are
    /// down-weighted by the configured staleness decay, so a wedged slow
    /// member fades out instead of pinning the fused mass.
    pub fn fuse_step_into(&mut self, out: &mut Vec<EngineResponse>) {
        self.fusion_tick += 1;
        let dirty = std::mem::take(&mut self.dirty);
        out.reserve(dirty.len());
        for pid in dirty {
            if let Some(response) = self.fuse_one(pid) {
                out.push(response);
            }
        }
    }

    /// Batch variant of [`EngineShard::fuse_step_into`].
    pub fn fuse_step(&mut self) -> Vec<EngineResponse> {
        let mut out = Vec::new();
        self.fuse_step_into(&mut out);
        out
    }

    /// Fuses the evidence of a single dirty process (no-op when the cell is
    /// clean). `fusion_tick` must already be advanced by the caller.
    fn fuse_one(&mut self, pid: ProcessId) -> Option<EngineResponse> {
        let fusion = &self.config.fusion;
        let cell = self.evidence.get_mut(&pid)?;
        if !cell.dirty {
            return None;
        }
        cell.dirty = false;
        let mut ev = Evidence::new();
        let mut stale = 0;
        for m in &cell.members {
            let age = self.fusion_tick.saturating_sub(m.seen_tick);
            let decay = stale_weight(fusion.stale_decay, age, m.cadence);
            if decay < 1.0 {
                stale += 1;
            }
            ev.add(m.confidence, fusion.weight_of(m.detector) * decay);
        }
        self.fusion_stats.stale_decayed += stale;
        Some(self.observe_mass(pid, ev.mass()))
    }

    /// Absorbs one verdict and immediately fuses the process's evidence:
    /// the single-caller convenience path (one verdict per epoch). Batch
    /// embedders absorb many verdicts and call
    /// [`EngineShard::fuse_step_into`] once per tick instead.
    pub fn observe_verdict(&mut self, pid: ProcessId, verdict: Verdict) -> EngineResponse {
        self.absorb_verdict(pid, verdict);
        self.fusion_tick += 1;
        // `absorb_verdict` queued the pid; consume that entry here so the
        // next batch fuse does not re-step the process.
        if self.dirty.last() == Some(&pid) {
            self.dirty.pop();
        }
        self.fuse_one(pid).expect("verdict was just absorbed")
    }

    /// Absorbs a batch of per-detector verdicts, then fuses once: one
    /// response per *process* with fresh evidence (first-arrival order),
    /// not one per verdict.
    pub fn observe_verdict_batch_into(
        &mut self,
        batch: &[(ProcessId, Verdict)],
        out: &mut Vec<EngineResponse>,
    ) {
        for &(pid, verdict) in batch {
            self.absorb_verdict(pid, verdict);
        }
        self.fuse_step_into(out);
    }

    /// Batch variant of [`EngineShard::observe_verdict`]; see
    /// [`EngineShard::observe_verdict_batch_into`].
    pub fn observe_verdict_batch(&mut self, batch: &[(ProcessId, Verdict)]) -> Vec<EngineResponse> {
        let mut out = Vec::new();
        self.observe_verdict_batch_into(batch, &mut out);
        out
    }

    /// Fusion-tier telemetry counters (escalation transitions included for
    /// the binary observe path).
    pub fn fusion_stats(&self) -> &FusionStats {
        &self.fusion_stats
    }

    /// Feeds a batch of per-process inferences, appending one response per
    /// observation to `out` in input order.
    pub fn observe_batch_into(
        &mut self,
        batch: &[(ProcessId, Classification)],
        out: &mut Vec<EngineResponse>,
    ) {
        out.reserve(batch.len());
        for &(pid, inference) in batch {
            out.push(self.observe(pid, inference));
        }
    }

    /// Batch variant of [`Self::observe`]; responses are in input order.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let mut out = Vec::with_capacity(batch.len());
        self.observe_batch_into(batch, &mut out);
        out
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let tracked = self
            .procs
            .get_mut(&pid)
            .ok_or(ValkyrieError::UnknownProcess(pid.0))?;
        tracked.monitor.complete();
        Ok(())
    }

    /// Stops tracking a process and frees its bookkeeping (fusion evidence
    /// included).
    pub fn forget(&mut self, pid: ProcessId) {
        self.procs.remove(&pid);
        self.evidence.remove(&pid);
    }

    /// Evicts every terminated process, returning how many were dropped.
    ///
    /// Terminated processes (Fig. 3's terminal state) never leave the map
    /// on their own, so a long-running engine that tracks short-lived
    /// processes grows without bound unless the embedder calls this (the
    /// epoch driver in [`crate::sharded`] does so every tick). After
    /// eviction a purged pid is unknown again: re-observing it registers a
    /// *fresh* process in the normal state.
    pub fn purge_terminated(&mut self) -> usize {
        let before = self.procs.len();
        self.procs.retain(|_, p| p.monitor.state().is_live());
        if before != self.procs.len() && !self.evidence.is_empty() {
            // Fusion evidence of purged processes goes with them; dirty
            // cells (fresh verdicts not yet fused) are kept.
            let procs = &self.procs;
            self.evidence
                .retain(|pid, cell| cell.dirty || procs.contains_key(pid));
        }
        before - self.procs.len()
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.procs
            .iter()
            .map(|(pid, p)| (*pid, p.monitor.state(), p.monitor.threat()))
    }
}

/// The Valkyrie response engine (paper Fig. 2): a single [`EngineShard`]
/// behind the original per-process API.
///
/// Processes are tracked lazily: the first observation of an unknown
/// [`ProcessId`] registers it in the *normal* state with full resources.
/// For fleets beyond a few thousand processes per tick, use the batched
/// [`ShardedEngine`](crate::sharded::ShardedEngine) instead.
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let config = EngineConfig::builder()
///     .measurements_required(5)
///     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
///     .build()
///     .unwrap();
/// let mut engine = ValkyrieEngine::new(config);
/// let resp = engine.observe(ProcessId(7), Classification::Malicious);
/// assert_eq!(resp.action, Action::Throttle);
/// assert!(resp.resources.cpu < 1.0);
/// ```
#[derive(Debug)]
pub struct ValkyrieEngine<A: Actuator + Clone = CompositeActuator> {
    shard: EngineShard<A>,
}

impl<A: Actuator + Clone> ValkyrieEngine<A> {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig<A>) -> Self {
        Self {
            shard: EngineShard::new(config),
        }
    }

    /// Creates an engine pre-sized for `capacity` processes (see
    /// [`EngineShard::with_capacity`]).
    pub fn with_capacity(config: EngineConfig<A>, capacity: usize) -> Self {
        Self {
            shard: EngineShard::with_capacity(config, capacity),
        }
    }

    /// Creates an engine with a non-composite actuator prototype.
    pub fn with_actuator(n_star: u64, fp: AssessmentFn, fc: AssessmentFn, actuator: A) -> Self {
        Self::new(EngineConfig {
            n_star,
            fp,
            fc,
            actuator,
            cyclic: false,
            fusion: FusionConfig::default(),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig<A> {
        self.shard.config()
    }

    /// Number of processes currently tracked, **terminated ones included**
    /// (they stay queryable until purged). Live count: [`Self::tracked_live`].
    pub fn tracked(&self) -> usize {
        self.shard.tracked()
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        self.shard.tracked_live()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.shard.state(pid)
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.shard.threat(pid)
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.shard.resources(pid)
    }

    /// Feeds one epoch's detector inference for `pid` and returns the
    /// response to enact.
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        self.shard.observe(pid, inference)
    }

    /// Batch variant of [`Self::observe`]; responses are in input order.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        self.shard.observe_batch(batch)
    }

    /// Advances a process by one fused evidence mass (see
    /// [`EngineShard::observe_mass`]).
    pub fn observe_mass(&mut self, pid: ProcessId, mass: f64) -> EngineResponse {
        self.shard.observe_mass(pid, mass)
    }

    /// Absorbs a per-detector verdict and immediately fuses the process's
    /// evidence (see [`EngineShard::observe_verdict`]).
    pub fn observe_verdict(&mut self, pid: ProcessId, verdict: Verdict) -> EngineResponse {
        self.shard.observe_verdict(pid, verdict)
    }

    /// Absorbs a verdict without stepping the monitor (see
    /// [`EngineShard::absorb_verdict`]).
    pub fn absorb_verdict(&mut self, pid: ProcessId, verdict: Verdict) {
        self.shard.absorb_verdict(pid, verdict)
    }

    /// Fuses all pending evidence: one monitor step and response per
    /// process with fresh verdicts (see [`EngineShard::fuse_step_into`]).
    pub fn fuse_step(&mut self) -> Vec<EngineResponse> {
        self.shard.fuse_step()
    }

    /// Fusion-tier telemetry counters.
    pub fn fusion_stats(&self) -> &FusionStats {
        self.shard.fusion_stats()
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        self.shard.complete(pid)
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        self.shard.forget(pid)
    }

    /// Evicts every terminated process, returning how many were dropped
    /// (see [`EngineShard::purge_terminated`]).
    pub fn purge_terminated(&mut self) -> usize {
        self.shard.purge_terminated()
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.shard.iter()
    }

    /// Consumes the engine, returning its single shard (used by the
    /// scaling tier to promote an engine into a sharded deployment).
    pub fn into_shard(self) -> EngineShard<A> {
        self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn engine(n_star: u64) -> ValkyrieEngine {
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        ValkyrieEngine::new(config)
    }

    #[test]
    fn builder_requires_n_star_and_actuator() {
        let err = EngineConfig::builder().build().unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(0)
            .actuator(ShareActuator::cpu_percent_point(0.1, 0.01))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
    }

    #[test]
    fn first_observation_registers_process() {
        let mut e = engine(10);
        assert_eq!(e.tracked(), 0);
        e.observe(ProcessId(1), Benign);
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(ProcessId(1)), Some(ProcessState::Normal));
    }

    #[test]
    fn throttle_then_full_recovery_restores_resources() {
        let mut e = engine(100);
        let pid = ProcessId(1);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert!((r.resources.cpu - 0.9).abs() < 1e-12);
        let r = e.observe(pid, Malicious);
        assert!((r.resources.cpu - 0.7).abs() < 1e-12);
        // Recover: threat 3 -> 2 -> 0.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Recover);
        assert!((r.resources.cpu - 0.8).abs() < 1e-12);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Normal);
    }

    #[test]
    fn attack_is_terminated_only_in_terminable_state() {
        let mut e = engine(4);
        let pid = ProcessId(9);
        let mut terminated_at = None;
        for epoch in 1..=6 {
            let r = e.observe(pid, Malicious);
            if r.action == Action::Terminate {
                terminated_at = Some(epoch);
                break;
            }
        }
        // 4 epochs accumulate N*, the 5th (terminable) classification kills.
        assert_eq!(terminated_at, Some(5));
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
    }

    #[test]
    fn false_positive_is_restored_in_terminable_state() {
        let mut e = engine(3);
        let pid = ProcessId(2);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn resources_respect_floor_under_sustained_attack() {
        let mut e = engine(1000);
        let pid = ProcessId(3);
        let mut last = ResourceVector::FULL;
        for _ in 0..50 {
            last = e.observe(pid, Malicious).resources;
        }
        assert_eq!(last.cpu, 0.01);
        assert!(last.is_valid());
    }

    #[test]
    fn independent_processes_do_not_interfere() {
        let mut e = engine(100);
        e.observe(ProcessId(1), Malicious);
        e.observe(ProcessId(2), Benign);
        assert!(e.resources(ProcessId(1)).unwrap().cpu < 1.0);
        assert!(e.resources(ProcessId(2)).unwrap().is_full());
    }

    #[test]
    fn complete_and_forget() {
        let mut e = engine(10);
        let pid = ProcessId(5);
        assert!(e.complete(pid).is_err());
        e.observe(pid, Benign);
        e.complete(pid).unwrap();
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
        e.forget(pid);
        assert_eq!(e.state(pid), None);
    }

    #[test]
    fn cyclic_engine_rearms_after_restore() {
        let config = EngineConfig::builder()
            .measurements_required(3)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .cyclic(true)
            .build()
            .unwrap();
        let mut e = ValkyrieEngine::new(config);
        let pid = ProcessId(1);
        // Cycle 1: two FPs, one benign; terminable at measurement 3.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Benign);
        // Terminable verdict: benign -> restore + new cycle.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::RestoreAndRecycle);
        assert_eq!(r.state, ProcessState::Normal);
        // Cycle 2 can throttle again...
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert_eq!(r.state, ProcessState::Suspicious);
        // ...and still terminate an attack at the end of its cycle.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Terminate);
    }

    #[test]
    fn iter_reports_all_processes() {
        let mut e = engine(10);
        e.observe(ProcessId(1), Benign);
        e.observe(ProcessId(2), Malicious);
        let mut pids: Vec<u64> = e.iter().map(|(pid, _, _)| pid.0).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![1, 2]);
    }

    #[test]
    fn purge_evicts_only_terminated_processes() {
        let mut e = engine(2);
        let attack = ProcessId(1);
        let benign = ProcessId(2);
        for _ in 0..3 {
            e.observe(attack, Malicious);
            e.observe(benign, Benign);
        }
        assert_eq!(e.state(attack), Some(ProcessState::Terminated));
        assert_eq!(e.tracked(), 2);
        assert_eq!(e.tracked_live(), 1);
        assert_eq!(e.purge_terminated(), 1);
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(attack), None);
        // The clean process captured its N* measurements and is terminable,
        // but alive — purge must not touch it.
        assert_eq!(e.state(benign), Some(ProcessState::Terminable));
        // A purged pid re-registers as a fresh process.
        let r = e.observe(attack, Benign);
        assert_eq!(r.state, ProcessState::Normal);
        assert_eq!(e.purge_terminated(), 0);
    }

    #[test]
    fn completed_processes_are_purgeable() {
        let mut e = engine(10);
        e.observe(ProcessId(4), Benign);
        e.complete(ProcessId(4)).unwrap();
        assert_eq!(e.tracked_live(), 0);
        assert_eq!(e.purge_terminated(), 1);
        assert_eq!(e.tracked(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let config = EngineConfig::builder()
            .measurements_required(10)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let mut e = ValkyrieEngine::with_capacity(config, 1024);
        assert_eq!(e.tracked(), 0);
        let r = e.observe(ProcessId(1), Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert_eq!(e.tracked(), 1);
    }

    #[test]
    fn observe_batch_matches_sequential_observes() {
        let mut batched = engine(5);
        let mut sequential = engine(5);
        let batch: Vec<(ProcessId, Classification)> = (0..30)
            .map(|i| {
                let cls = if i % 3 == 0 { Malicious } else { Benign };
                (ProcessId(i % 7), cls)
            })
            .collect();
        let got = batched.observe_batch(&batch);
        let want: Vec<EngineResponse> = batch
            .iter()
            .map(|&(pid, cls)| sequential.observe(pid, cls))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_fast_path_equals_registration_path_semantics() {
        // Same stream through a fresh shard twice: the first pass exercises
        // registration, the second pass (after forgetting) must re-register
        // identically.
        let config = EngineConfig::builder()
            .measurements_required(4)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let mut shard = EngineShard::new(config);
        let stream = [Malicious, Benign, Malicious, Malicious];
        let first: Vec<EngineResponse> = stream
            .iter()
            .map(|&c| shard.observe(ProcessId(1), c))
            .collect();
        shard.forget(ProcessId(1));
        let second: Vec<EngineResponse> = stream
            .iter()
            .map(|&c| shard.observe(ProcessId(1), c))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn into_shard_preserves_tracking() {
        let mut e = engine(10);
        e.observe(ProcessId(3), Malicious);
        let shard = e.into_shard();
        assert_eq!(shard.tracked(), 1);
        assert_eq!(shard.state(ProcessId(3)), Some(ProcessState::Suspicious));
    }

    fn fusion_engine(n_star: u64, fusion: FusionConfig) -> ValkyrieEngine {
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .fusion(fusion)
            .build()
            .unwrap();
        ValkyrieEngine::new(config)
    }

    #[test]
    fn binary_verdicts_through_fusion_match_binary_observe() {
        // A single unit-weight member with full-confidence verdicts and the
        // BINARY ladder must reproduce the legacy binary engine exactly.
        let fusion = FusionConfig {
            ladder: crate::monitor::EscalationLadder::BINARY,
            ..FusionConfig::default()
        };
        let mut fused = fusion_engine(4, fusion);
        let mut binary = engine(4);
        let pid = ProcessId(1);
        let stream = [
            Malicious, Benign, Malicious, Malicious, Malicious, Malicious,
        ];
        for c in stream {
            let want = binary.observe(pid, c);
            let got = fused.observe_verdict(pid, Verdict::from_classification(0, c));
            assert_eq!(got, want);
        }
        assert_eq!(fused.state(pid), Some(ProcessState::Terminated));
        assert_eq!(fused.fusion_stats().verdicts, stream.len() as u64);
    }

    #[test]
    fn fuse_step_advances_each_process_once_per_tick() {
        // Three members publishing in the same tick must cost the process
        // ONE monitor step, not three.
        let mut e = fusion_engine(10, FusionConfig::default());
        let pid = ProcessId(5);
        e.absorb_verdict(pid, Verdict::new(0, 1.0));
        e.absorb_verdict(pid, Verdict::new(1, 1.0));
        e.absorb_verdict(pid, Verdict::new(2, 1.0));
        let responses = e.fuse_step();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].action, Action::Throttle);
        assert_eq!(e.fusion_stats().verdicts, 3);
        assert_eq!(e.fusion_stats().per_detector, vec![1, 1, 1]);
        // One step was taken: a monitor at measurement 1, not 3.
        assert_eq!(e.threat(pid).unwrap().value(), 1.0);
        // No pending evidence: an empty fuse produces no responses.
        assert!(e.fuse_step().is_empty());
    }

    #[test]
    fn fusion_weights_tilt_the_mass() {
        // Detector 1 carries 4x the weight of detector 0. A malicious
        // verdict from the heavy member against a benign one from the light
        // member yields mass 0.8 → Throttle on the graduated ladder.
        let fusion = FusionConfig {
            weights: vec![1.0, 4.0],
            ..FusionConfig::default()
        };
        let mut e = fusion_engine(10, fusion);
        let pid = ProcessId(1);
        e.absorb_verdict(pid, Verdict::new(0, 0.0));
        e.absorb_verdict(pid, Verdict::new(1, 1.0));
        let r = e.fuse_step();
        assert_eq!(r[0].action, Action::Throttle);

        // Flipped: the heavy member says benign → mass 0.2 → no throttle.
        let fusion = FusionConfig {
            weights: vec![1.0, 4.0],
            ..FusionConfig::default()
        };
        let mut e = fusion_engine(10, fusion);
        e.absorb_verdict(pid, Verdict::new(0, 1.0));
        e.absorb_verdict(pid, Verdict::new(1, 0.0));
        let r = e.fuse_step();
        assert_eq!(r[0].action, Action::None);
        assert_eq!(r[0].state, ProcessState::Normal);
    }

    #[test]
    fn stale_slow_member_decays_out_of_the_mass() {
        // A slow member (cadence 2) flags malicious once, then goes silent.
        // With stale_decay 0.0 its verdict stops counting as soon as it is
        // overdue, letting the fresh benign member dominate.
        let fusion = FusionConfig {
            stale_decay: 0.0,
            ..FusionConfig::default()
        };
        let mut e = fusion_engine(100, fusion);
        let pid = ProcessId(9);
        e.absorb_verdict(pid, Verdict::new(1, 1.0).with_cadence(2));
        e.absorb_verdict(pid, Verdict::new(0, 0.0));
        let r = e.fuse_step();
        // Tick 1: both fresh, mass 0.5 → Observe band on the graduated
        // ladder → no action.
        assert_eq!(r[0].action, Action::None);
        // Ticks 2-4: only the fast benign member keeps publishing. At tick
        // 4 the slow verdict is 3 ticks old (> cadence 2) and fully decays.
        for _ in 0..3 {
            e.absorb_verdict(pid, Verdict::new(0, 0.0));
            e.fuse_step();
        }
        assert!(e.fusion_stats().stale_decayed > 0);
        assert_eq!(e.state(pid), Some(ProcessState::Normal));
        assert!(e.threat(pid).unwrap().is_zero());
    }

    #[test]
    fn escalation_transitions_are_counted_on_the_binary_path() {
        let mut e = engine(3);
        let pid = ProcessId(1);
        assert_eq!(e.fusion_stats().escalations, 0);
        e.observe(pid, Malicious); // Observe -> Throttle: +1
        e.observe(pid, Malicious); // Throttle -> Throttle: no transition
        assert_eq!(e.fusion_stats().escalations, 1);
        e.observe(pid, Benign); // Throttle -> Compensate: downward, no count
                                // Terminable by now (3 measurements): a malicious verdict jumps
                                // Compensate -> Kill, the second upward transition.
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Terminate);
        assert_eq!(e.fusion_stats().escalations, 2);
    }

    #[test]
    fn forget_and_purge_drop_fusion_evidence() {
        let mut e = fusion_engine(1, FusionConfig::default());
        let pid = ProcessId(1);
        e.observe_verdict(pid, Verdict::new(0, 1.0));
        let r = e.observe_verdict(pid, Verdict::new(0, 1.0));
        assert_eq!(r.action, Action::Terminate);
        assert_eq!(e.purge_terminated(), 1);
        // The purged pid's evidence went with it: a fresh verdict registers
        // a fresh process (a stale one would short-circuit with Terminate).
        let r = e.observe_verdict(pid, Verdict::new(0, 0.0));
        assert_eq!(r.action, Action::None);
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn observe_verdict_batch_orders_responses_by_first_arrival() {
        let e = fusion_engine(10, FusionConfig::default());
        let batch = vec![
            (ProcessId(3), Verdict::new(0, 1.0)),
            (ProcessId(1), Verdict::new(0, 0.0)),
            (ProcessId(3), Verdict::new(1, 1.0)),
        ];
        let shard = {
            let mut shard = e.into_shard();
            let r = shard.observe_verdict_batch(&batch);
            assert_eq!(r.len(), 2, "two processes, three verdicts");
            assert_eq!(r[0].pid, ProcessId(3));
            assert_eq!(r[1].pid, ProcessId(1));
            shard
        };
        assert_eq!(shard.tracked(), 2);
    }
}
