//! The multi-process Valkyrie engine: monitors + actuators behind a detector.
//!
//! [`ValkyrieEngine`] is the piece that "augments" a detector (paper Fig. 2):
//! every epoch the caller feeds it each process's inference, and the engine
//! answers with the resource shares to enforce and whether to restore or
//! terminate. It owns one [`Monitor`] (Algorithm 1) and one actuator instance
//! per process.
//!
//! The per-process bookkeeping lives in [`EngineShard`]: one process map
//! plus the observe path. [`ValkyrieEngine`] is a single shard behind the
//! original one-process-at-a-time API; the scaling tier in
//! [`crate::sharded`] runs many shards side by side behind a batch API.

use crate::actuator::{Actuator, CompositeActuator, ShareActuator};
use crate::efficacy::{EfficacyCurve, EfficacySpec};
use crate::error::ValkyrieError;
use crate::hash::FxBuildHasher;
use crate::monitor::{Directive, Monitor};
use crate::resource::{ProcessId, ResourceVector};
use crate::state::ProcessState;
use crate::threat::{AssessmentFn, Classification, ThreatIndex};
use std::collections::HashMap;

/// The response action the embedder must enact after an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing to do.
    None,
    /// Apply the accompanying (reduced) resource shares.
    Throttle,
    /// Apply the accompanying (partially recovered) resource shares.
    Recover,
    /// Remove all restrictions (`A_reset` or return-to-normal).
    Restore,
    /// Remove all restrictions *and* begin a new measurement cycle
    /// (cyclic monitoring's benign verdict at `N*`; see
    /// [`EngineConfigBuilder::cyclic`]). Embedders that keep per-process
    /// measurement history should reset it here.
    RestoreAndRecycle,
    /// Terminate the process.
    Terminate,
}

/// Engine output for one `(process, epoch)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineResponse {
    /// The process this response concerns.
    pub pid: ProcessId,
    /// Fig. 3 state after the observation.
    pub state: ProcessState,
    /// Threat index after the observation.
    pub threat: ThreatIndex,
    /// Resource shares to enforce for the next epoch.
    pub resources: ResourceVector,
    /// The action to enact.
    pub action: Action,
}

/// Configuration of a [`ValkyrieEngine`].
///
/// Build one with [`EngineConfig::builder`]. `N*` can be given directly or
/// derived from a measured [`EfficacyCurve`] plus a user [`EfficacySpec`]
/// (Section IV-A: "users can specify the expected detection efficacy \[and\]
/// Valkyrie computes the number of measurements needed to achieve it").
#[derive(Debug, Clone)]
pub struct EngineConfig<A = CompositeActuator> {
    n_star: u64,
    fp: AssessmentFn,
    fc: AssessmentFn,
    actuator: A,
    cyclic: bool,
}

impl EngineConfig<CompositeActuator> {
    /// Starts building a configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

impl<A: Actuator + Clone> EngineConfig<A> {
    /// The measurement requirement `N*`.
    pub fn measurements_required(&self) -> u64 {
        self.n_star
    }

    /// The penalty assessment function.
    pub fn penalty_fn(&self) -> AssessmentFn {
        self.fp
    }

    /// The compensation assessment function.
    pub fn compensation_fn(&self) -> AssessmentFn {
        self.fc
    }

    /// The prototype actuator cloned for each monitored process.
    pub fn actuator(&self) -> &A {
        &self.actuator
    }

    /// Whether monitoring is cyclic (Algorithm 1's outer loop; see
    /// [`crate::Monitor::new_cyclic`]).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }
}

/// Builder for [`EngineConfig`] (see `C-BUILDER`).
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let curve = EfficacyCurve::new(vec![
///     EfficacyPoint { measurements: 5, f1: 0.70, fpr: 0.30 },
///     EfficacyPoint { measurements: 23, f1: 0.92, fpr: 0.12 },
///     EfficacyPoint { measurements: 50, f1: 0.95, fpr: 0.08 },
/// ]).unwrap();
///
/// let config = EngineConfig::builder()
///     .efficacy(&curve, &EfficacySpec::f1_at_least(0.9))
///     .unwrap()
///     .actuator_part(ShareActuator::scheduler_weight(0.1, 0.01))
///     .build()
///     .unwrap();
/// assert_eq!(config.measurements_required(), 23);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    n_star: Option<u64>,
    fp: AssessmentFn,
    fc: AssessmentFn,
    parts: Vec<ShareActuator>,
    cyclic: bool,
}

impl EngineConfigBuilder {
    /// Sets `N*` directly.
    pub fn measurements_required(mut self, n_star: u64) -> Self {
        self.n_star = Some(n_star);
        self
    }

    /// Derives `N*` from a measured efficacy curve and a user specification.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnreachableEfficacy`] when no number of
    /// measurements on the curve satisfies the specification.
    pub fn efficacy(
        mut self,
        curve: &EfficacyCurve,
        spec: &EfficacySpec,
    ) -> Result<Self, ValkyrieError> {
        self.n_star = Some(u64::from(curve.measurements_required(spec)?));
        Ok(self)
    }

    /// Sets the penalty assessment function `F_p` (default: incremental).
    pub fn penalty(mut self, fp: AssessmentFn) -> Self {
        self.fp = fp;
        self
    }

    /// Sets the compensation assessment function `F_c` (default: incremental).
    pub fn compensation(mut self, fc: AssessmentFn) -> Self {
        self.fc = fc;
        self
    }

    /// Adds a per-resource actuator; may be called multiple times.
    pub fn actuator_part(mut self, part: ShareActuator) -> Self {
        self.parts.push(part);
        self
    }

    /// Replaces all actuator parts with a single actuator.
    pub fn actuator(mut self, part: ShareActuator) -> Self {
        self.parts = vec![part];
        self
    }

    /// Enables cyclic monitoring: after a benign verdict at `N*`
    /// measurements, resources are restored and a fresh measurement cycle
    /// begins (Algorithm 1's outer `while t is executing` loop). Default:
    /// one-shot, as drawn in Fig. 3.
    pub fn cyclic(mut self, cyclic: bool) -> Self {
        self.cyclic = cyclic;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::InvalidConfig`] if `N*` was never set, is
    /// zero, or no actuator part was supplied.
    pub fn build(self) -> Result<EngineConfig<CompositeActuator>, ValkyrieError> {
        let n_star = self
            .n_star
            .ok_or_else(|| ValkyrieError::InvalidConfig("N* was not set".into()))?;
        if n_star == 0 {
            return Err(ValkyrieError::InvalidConfig(
                "N* must be at least one measurement".into(),
            ));
        }
        if self.parts.is_empty() {
            return Err(ValkyrieError::InvalidConfig(
                "at least one actuator part is required".into(),
            ));
        }
        Ok(EngineConfig {
            n_star,
            fp: self.fp,
            fc: self.fc,
            actuator: CompositeActuator::new(self.parts),
            cyclic: self.cyclic,
        })
    }
}

#[derive(Debug, Clone)]
struct TrackedProcess<A> {
    monitor: Monitor,
    actuator: A,
    resources: ResourceVector,
}

impl<A: Actuator + Clone> TrackedProcess<A> {
    fn new(config: &EngineConfig<A>) -> Self {
        TrackedProcess {
            monitor: if config.cyclic {
                Monitor::new_cyclic(config.n_star, config.fp, config.fc)
            } else {
                Monitor::new(config.n_star, config.fp, config.fc)
            },
            actuator: config.actuator.clone(),
            resources: ResourceVector::FULL,
        }
    }
}

/// Advances one tracked process by one inference. Free-standing so the
/// shard can split-borrow its config and its map entry.
fn step<A: Actuator>(
    cyclic: bool,
    pid: ProcessId,
    tracked: &mut TrackedProcess<A>,
    inference: Classification,
) -> EngineResponse {
    let report = tracked.monitor.observe(inference);
    let action = match report.directive {
        Directive::Continue => Action::None,
        Directive::Adjust { delta_threat } => {
            tracked.resources = tracked.actuator.apply(&tracked.resources, delta_threat);
            if delta_threat > 0.0 {
                Action::Throttle
            } else if delta_threat < 0.0 {
                Action::Recover
            } else {
                Action::None
            }
        }
        Directive::ResetToNormal => {
            // Invariant from Section V-A: "a threat index of 0 implies
            // that the process … has no restrictions on the system
            // resources".
            tracked.resources = tracked.actuator.reset();
            Action::Restore
        }
        Directive::Restore => {
            // A_reset at the terminable verdict; under cyclic
            // monitoring this also starts a fresh measurement cycle.
            tracked.resources = tracked.actuator.reset();
            if cyclic {
                Action::RestoreAndRecycle
            } else {
                Action::Restore
            }
        }
        Directive::Terminate => Action::Terminate,
    };

    EngineResponse {
        pid,
        state: report.state,
        threat: report.threat,
        resources: tracked.resources,
        action,
    }
}

/// One partition of the engine: a process map plus the observe path.
///
/// An `EngineShard` is the unit the scaling tier distributes work over:
/// [`ValkyrieEngine`] is exactly one shard, and
/// [`ShardedEngine`](crate::sharded::ShardedEngine) owns `N` of them, each
/// responsible for the processes whose id hashes onto it. Algorithm 1
/// semantics are per process, so a shard never needs to see another
/// shard's processes.
///
/// Processes are tracked lazily: the first observation of an unknown
/// [`ProcessId`] registers it in the *normal* state with full resources.
/// The map distinguishes **live** processes from **terminated** ones that
/// are kept for post-mortem queries until [`EngineShard::purge_terminated`]
/// (or [`EngineShard::forget`]) evicts them.
#[derive(Debug)]
pub struct EngineShard<A: Actuator + Clone = CompositeActuator> {
    config: EngineConfig<A>,
    procs: HashMap<ProcessId, TrackedProcess<A>, FxBuildHasher>,
}

impl<A: Actuator + Clone> EngineShard<A> {
    /// Creates an empty shard from a configuration.
    pub fn new(config: EngineConfig<A>) -> Self {
        Self::with_capacity(config, 0)
    }

    /// Creates a shard pre-sized for `capacity` processes, so batch
    /// embedders don't pay rehash-and-move costs while the fleet registers.
    pub fn with_capacity(config: EngineConfig<A>, capacity: usize) -> Self {
        Self {
            config,
            procs: HashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
        }
    }

    /// The shard configuration.
    pub fn config(&self) -> &EngineConfig<A> {
        &self.config
    }

    /// Number of processes currently tracked, **terminated ones included**
    /// (they stay queryable until purged). Live count: [`Self::tracked_live`].
    pub fn tracked(&self) -> usize {
        self.procs.len()
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.monitor.state().is_live())
            .count()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.procs.get(&pid).map(|p| p.monitor.state())
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.procs.get(&pid).map(|p| p.monitor.threat())
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.procs.get(&pid).map(|p| p.resources)
    }

    /// Feeds one epoch's detector inference for `pid` and returns the
    /// response to enact.
    ///
    /// The hot path — a repeat observation of an already-tracked process —
    /// is a single `get_mut` lookup; only the first observation of an
    /// unknown pid falls into the registration path.
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        if let Some(tracked) = self.procs.get_mut(&pid) {
            return step(self.config.cyclic, pid, tracked, inference);
        }
        let config = &self.config;
        let tracked = self
            .procs
            .entry(pid)
            .or_insert_with(|| TrackedProcess::new(config));
        step(config.cyclic, pid, tracked, inference)
    }

    /// Feeds a batch of per-process inferences, appending one response per
    /// observation to `out` in input order.
    pub fn observe_batch_into(
        &mut self,
        batch: &[(ProcessId, Classification)],
        out: &mut Vec<EngineResponse>,
    ) {
        out.reserve(batch.len());
        for &(pid, inference) in batch {
            out.push(self.observe(pid, inference));
        }
    }

    /// Batch variant of [`Self::observe`]; responses are in input order.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let mut out = Vec::with_capacity(batch.len());
        self.observe_batch_into(batch, &mut out);
        out
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let tracked = self
            .procs
            .get_mut(&pid)
            .ok_or(ValkyrieError::UnknownProcess(pid.0))?;
        tracked.monitor.complete();
        Ok(())
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        self.procs.remove(&pid);
    }

    /// Evicts every terminated process, returning how many were dropped.
    ///
    /// Terminated processes (Fig. 3's terminal state) never leave the map
    /// on their own, so a long-running engine that tracks short-lived
    /// processes grows without bound unless the embedder calls this (the
    /// epoch driver in [`crate::sharded`] does so every tick). After
    /// eviction a purged pid is unknown again: re-observing it registers a
    /// *fresh* process in the normal state.
    pub fn purge_terminated(&mut self) -> usize {
        let before = self.procs.len();
        self.procs.retain(|_, p| p.monitor.state().is_live());
        before - self.procs.len()
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.procs
            .iter()
            .map(|(pid, p)| (*pid, p.monitor.state(), p.monitor.threat()))
    }
}

/// The Valkyrie response engine (paper Fig. 2): a single [`EngineShard`]
/// behind the original per-process API.
///
/// Processes are tracked lazily: the first observation of an unknown
/// [`ProcessId`] registers it in the *normal* state with full resources.
/// For fleets beyond a few thousand processes per tick, use the batched
/// [`ShardedEngine`](crate::sharded::ShardedEngine) instead.
///
/// # Examples
///
/// ```
/// use valkyrie_core::prelude::*;
///
/// let config = EngineConfig::builder()
///     .measurements_required(5)
///     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
///     .build()
///     .unwrap();
/// let mut engine = ValkyrieEngine::new(config);
/// let resp = engine.observe(ProcessId(7), Classification::Malicious);
/// assert_eq!(resp.action, Action::Throttle);
/// assert!(resp.resources.cpu < 1.0);
/// ```
#[derive(Debug)]
pub struct ValkyrieEngine<A: Actuator + Clone = CompositeActuator> {
    shard: EngineShard<A>,
}

impl<A: Actuator + Clone> ValkyrieEngine<A> {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig<A>) -> Self {
        Self {
            shard: EngineShard::new(config),
        }
    }

    /// Creates an engine pre-sized for `capacity` processes (see
    /// [`EngineShard::with_capacity`]).
    pub fn with_capacity(config: EngineConfig<A>, capacity: usize) -> Self {
        Self {
            shard: EngineShard::with_capacity(config, capacity),
        }
    }

    /// Creates an engine with a non-composite actuator prototype.
    pub fn with_actuator(n_star: u64, fp: AssessmentFn, fc: AssessmentFn, actuator: A) -> Self {
        Self::new(EngineConfig {
            n_star,
            fp,
            fc,
            actuator,
            cyclic: false,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig<A> {
        self.shard.config()
    }

    /// Number of processes currently tracked, **terminated ones included**
    /// (they stay queryable until purged). Live count: [`Self::tracked_live`].
    pub fn tracked(&self) -> usize {
        self.shard.tracked()
    }

    /// Number of tracked processes that have not terminated.
    pub fn tracked_live(&self) -> usize {
        self.shard.tracked_live()
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.shard.state(pid)
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.shard.threat(pid)
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.shard.resources(pid)
    }

    /// Feeds one epoch's detector inference for `pid` and returns the
    /// response to enact.
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        self.shard.observe(pid, inference)
    }

    /// Batch variant of [`Self::observe`]; responses are in input order.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        self.shard.observe_batch(batch)
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        self.shard.complete(pid)
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        self.shard.forget(pid)
    }

    /// Evicts every terminated process, returning how many were dropped
    /// (see [`EngineShard::purge_terminated`]).
    pub fn purge_terminated(&mut self) -> usize {
        self.shard.purge_terminated()
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.shard.iter()
    }

    /// Consumes the engine, returning its single shard (used by the
    /// scaling tier to promote an engine into a sharded deployment).
    pub fn into_shard(self) -> EngineShard<A> {
        self.shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn engine(n_star: u64) -> ValkyrieEngine {
        let config = EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        ValkyrieEngine::new(config)
    }

    #[test]
    fn builder_requires_n_star_and_actuator() {
        let err = EngineConfig::builder().build().unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
        let err = EngineConfig::builder()
            .measurements_required(0)
            .actuator(ShareActuator::cpu_percent_point(0.1, 0.01))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValkyrieError::InvalidConfig(_)));
    }

    #[test]
    fn first_observation_registers_process() {
        let mut e = engine(10);
        assert_eq!(e.tracked(), 0);
        e.observe(ProcessId(1), Benign);
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(ProcessId(1)), Some(ProcessState::Normal));
    }

    #[test]
    fn throttle_then_full_recovery_restores_resources() {
        let mut e = engine(100);
        let pid = ProcessId(1);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert!((r.resources.cpu - 0.9).abs() < 1e-12);
        let r = e.observe(pid, Malicious);
        assert!((r.resources.cpu - 0.7).abs() < 1e-12);
        // Recover: threat 3 -> 2 -> 0.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Recover);
        assert!((r.resources.cpu - 0.8).abs() < 1e-12);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Normal);
    }

    #[test]
    fn attack_is_terminated_only_in_terminable_state() {
        let mut e = engine(4);
        let pid = ProcessId(9);
        let mut terminated_at = None;
        for epoch in 1..=6 {
            let r = e.observe(pid, Malicious);
            if r.action == Action::Terminate {
                terminated_at = Some(epoch);
                break;
            }
        }
        // 4 epochs accumulate N*, the 5th (terminable) classification kills.
        assert_eq!(terminated_at, Some(5));
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
    }

    #[test]
    fn false_positive_is_restored_in_terminable_state() {
        let mut e = engine(3);
        let pid = ProcessId(2);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::Restore);
        assert!(r.resources.is_full());
        assert_eq!(r.state, ProcessState::Terminable);
    }

    #[test]
    fn resources_respect_floor_under_sustained_attack() {
        let mut e = engine(1000);
        let pid = ProcessId(3);
        let mut last = ResourceVector::FULL;
        for _ in 0..50 {
            last = e.observe(pid, Malicious).resources;
        }
        assert_eq!(last.cpu, 0.01);
        assert!(last.is_valid());
    }

    #[test]
    fn independent_processes_do_not_interfere() {
        let mut e = engine(100);
        e.observe(ProcessId(1), Malicious);
        e.observe(ProcessId(2), Benign);
        assert!(e.resources(ProcessId(1)).unwrap().cpu < 1.0);
        assert!(e.resources(ProcessId(2)).unwrap().is_full());
    }

    #[test]
    fn complete_and_forget() {
        let mut e = engine(10);
        let pid = ProcessId(5);
        assert!(e.complete(pid).is_err());
        e.observe(pid, Benign);
        e.complete(pid).unwrap();
        assert_eq!(e.state(pid), Some(ProcessState::Terminated));
        e.forget(pid);
        assert_eq!(e.state(pid), None);
    }

    #[test]
    fn cyclic_engine_rearms_after_restore() {
        let config = EngineConfig::builder()
            .measurements_required(3)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .cyclic(true)
            .build()
            .unwrap();
        let mut e = ValkyrieEngine::new(config);
        let pid = ProcessId(1);
        // Cycle 1: two FPs, one benign; terminable at measurement 3.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        e.observe(pid, Benign);
        // Terminable verdict: benign -> restore + new cycle.
        let r = e.observe(pid, Benign);
        assert_eq!(r.action, Action::RestoreAndRecycle);
        assert_eq!(r.state, ProcessState::Normal);
        // Cycle 2 can throttle again...
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert_eq!(r.state, ProcessState::Suspicious);
        // ...and still terminate an attack at the end of its cycle.
        e.observe(pid, Malicious);
        e.observe(pid, Malicious);
        let r = e.observe(pid, Malicious);
        assert_eq!(r.action, Action::Terminate);
    }

    #[test]
    fn iter_reports_all_processes() {
        let mut e = engine(10);
        e.observe(ProcessId(1), Benign);
        e.observe(ProcessId(2), Malicious);
        let mut pids: Vec<u64> = e.iter().map(|(pid, _, _)| pid.0).collect();
        pids.sort_unstable();
        assert_eq!(pids, vec![1, 2]);
    }

    #[test]
    fn purge_evicts_only_terminated_processes() {
        let mut e = engine(2);
        let attack = ProcessId(1);
        let benign = ProcessId(2);
        for _ in 0..3 {
            e.observe(attack, Malicious);
            e.observe(benign, Benign);
        }
        assert_eq!(e.state(attack), Some(ProcessState::Terminated));
        assert_eq!(e.tracked(), 2);
        assert_eq!(e.tracked_live(), 1);
        assert_eq!(e.purge_terminated(), 1);
        assert_eq!(e.tracked(), 1);
        assert_eq!(e.state(attack), None);
        // The clean process captured its N* measurements and is terminable,
        // but alive — purge must not touch it.
        assert_eq!(e.state(benign), Some(ProcessState::Terminable));
        // A purged pid re-registers as a fresh process.
        let r = e.observe(attack, Benign);
        assert_eq!(r.state, ProcessState::Normal);
        assert_eq!(e.purge_terminated(), 0);
    }

    #[test]
    fn completed_processes_are_purgeable() {
        let mut e = engine(10);
        e.observe(ProcessId(4), Benign);
        e.complete(ProcessId(4)).unwrap();
        assert_eq!(e.tracked_live(), 0);
        assert_eq!(e.purge_terminated(), 1);
        assert_eq!(e.tracked(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let config = EngineConfig::builder()
            .measurements_required(10)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let mut e = ValkyrieEngine::with_capacity(config, 1024);
        assert_eq!(e.tracked(), 0);
        let r = e.observe(ProcessId(1), Malicious);
        assert_eq!(r.action, Action::Throttle);
        assert_eq!(e.tracked(), 1);
    }

    #[test]
    fn observe_batch_matches_sequential_observes() {
        let mut batched = engine(5);
        let mut sequential = engine(5);
        let batch: Vec<(ProcessId, Classification)> = (0..30)
            .map(|i| {
                let cls = if i % 3 == 0 { Malicious } else { Benign };
                (ProcessId(i % 7), cls)
            })
            .collect();
        let got = batched.observe_batch(&batch);
        let want: Vec<EngineResponse> = batch
            .iter()
            .map(|&(pid, cls)| sequential.observe(pid, cls))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn shard_fast_path_equals_registration_path_semantics() {
        // Same stream through a fresh shard twice: the first pass exercises
        // registration, the second pass (after forgetting) must re-register
        // identically.
        let config = EngineConfig::builder()
            .measurements_required(4)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap();
        let mut shard = EngineShard::new(config);
        let stream = [Malicious, Benign, Malicious, Malicious];
        let first: Vec<EngineResponse> = stream
            .iter()
            .map(|&c| shard.observe(ProcessId(1), c))
            .collect();
        shard.forget(ProcessId(1));
        let second: Vec<EngineResponse> = stream
            .iter()
            .map(|&c| shard.observe(ProcessId(1), c))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn into_shard_preserves_tracking() {
        let mut e = engine(10);
        e.observe(ProcessId(3), Malicious);
        let shard = e.into_shard();
        assert_eq!(shard.tracked(), 1);
        assert_eq!(shard.state(ProcessId(3)), Some(ProcessState::Suspicious));
    }
}
