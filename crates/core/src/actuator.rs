//! Actuator functions (`A`, Section V-B) that map threat-index changes to
//! resource-share changes.
//!
//! An actuator takes the share of resources from the previous epoch and the
//! change in threat index `ΔT` and returns the updated share
//! (`R_i^t = A(R_{i-1}^t, ΔT_{i,1}^t)`). The paper demonstrates an
//! OS-scheduler-based actuator (Eq. 8, used for micro-architectural attacks
//! and rowhammer) and cgroup-based actuators (used for ransomware and
//! cryptominers); all are provided here as [`ThrottleLaw`]s applied to a
//! single [`ResourceKind`], and can be combined with [`CompositeActuator`].

use crate::resource::{ResourceKind, ResourceVector};
use std::fmt;

/// An actuator function `A(R_{i-1}, ΔT)` (Section V-B).
///
/// Implementations must:
/// * reduce the targeted share(s) when `ΔT > 0` and raise them when `ΔT < 0`;
/// * keep every share within `[floor, 1]`;
/// * restore the default allocation on [`Actuator::reset`] (the paper's
///   `A_reset`).
pub trait Actuator: fmt::Debug {
    /// Returns the updated resource shares after a threat-index change of
    /// `delta_threat` (positive = more suspicious).
    fn apply(&mut self, prev: &ResourceVector, delta_threat: f64) -> ResourceVector;

    /// The paper's `A_reset`: removes all restrictions.
    fn reset(&mut self) -> ResourceVector {
        ResourceVector::FULL
    }

    /// The minimum share this actuator will ever assign, per resource.
    ///
    /// Used to bound worst-case slowdowns (Section V-C): Valkyrie supports a
    /// user-specified limit on the minimum share of a resource.
    fn floor(&self) -> ResourceVector {
        ResourceVector::new(0.0, 0.0, 0.0, 0.0)
    }
}

/// How a share responds to threat-index changes.
///
/// The paper's worked example (Section V-C) "drops the CPU share by 10 % for
/// every increase in the threat index"; [`ThrottleLaw::PercentPointPerUnit`]
/// is that reading (10 percentage points per unit of `ΔT`).
/// [`ThrottleLaw::SchedulerWeight`] is Eq. 8 (relative weight scaled by
/// `γ·ΔT`), and [`ThrottleLaw::HalvePerEvent`] is the filesystem actuator of
/// Section VI-C ("halves the rate of file accesses every time there is an
/// increase in the threat index").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThrottleLaw {
    /// `share -= step · ΔT` (percentage points per unit of threat change).
    PercentPointPerUnit {
        /// Share change per unit of `ΔT` (e.g. `0.10`).
        step: f64,
    },
    /// `share *= factor^ΔT` (multiplicative per unit of threat change).
    MultiplicativePerUnit {
        /// Per-unit multiplier in `(0, 1)` (e.g. `0.9`).
        factor: f64,
    },
    /// `share *= factor` on any increase, `share /= factor` on any decrease,
    /// regardless of the magnitude of `ΔT`.
    MultiplicativePerEvent {
        /// Per-event multiplier in `(0, 1)`.
        factor: f64,
    },
    /// Halve on any increase, double on any decrease.
    HalvePerEvent,
    /// Eq. 8: `s ← s − γ·s·ΔT` when `ΔT > 0`, `s ← s + γ·s·|ΔT|` otherwise.
    SchedulerWeight {
        /// Relative weight step per unit of `ΔT` (the paper uses `γ = 0.1`).
        gamma: f64,
    },
}

/// The shape of a [`ThrottleLaw`], stripped of its parameter.
///
/// Used as ground truth for the adaptive tier's law probe
/// ([`crate::evasion::LawProbe`] estimates the family and parameter of the
/// deployed law from observed share responses, and the `adaptive` experiment
/// scores the estimate against this introspection) and as a stable label for
/// per-law rankings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LawFamily {
    /// [`ThrottleLaw::PercentPointPerUnit`].
    PercentPoint,
    /// [`ThrottleLaw::MultiplicativePerUnit`].
    MultiplicativePerUnit,
    /// [`ThrottleLaw::MultiplicativePerEvent`].
    MultiplicativePerEvent,
    /// [`ThrottleLaw::HalvePerEvent`].
    Halve,
    /// [`ThrottleLaw::SchedulerWeight`].
    SchedulerWeight,
}

impl LawFamily {
    /// All five families, in a stable order.
    pub const ALL: [LawFamily; 5] = [
        LawFamily::PercentPoint,
        LawFamily::SchedulerWeight,
        LawFamily::MultiplicativePerUnit,
        LawFamily::Halve,
        LawFamily::MultiplicativePerEvent,
    ];

    /// Short stable label (used in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            LawFamily::PercentPoint => "percent-point/unit",
            LawFamily::MultiplicativePerUnit => "multiplicative/unit",
            LawFamily::MultiplicativePerEvent => "multiplicative/event",
            LawFamily::Halve => "halve/event",
            LawFamily::SchedulerWeight => "scheduler-weight",
        }
    }
}

impl fmt::Display for LawFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ThrottleLaw {
    /// The family this law belongs to.
    pub fn family(&self) -> LawFamily {
        match self {
            ThrottleLaw::PercentPointPerUnit { .. } => LawFamily::PercentPoint,
            ThrottleLaw::MultiplicativePerUnit { .. } => LawFamily::MultiplicativePerUnit,
            ThrottleLaw::MultiplicativePerEvent { .. } => LawFamily::MultiplicativePerEvent,
            ThrottleLaw::HalvePerEvent => LawFamily::Halve,
            ThrottleLaw::SchedulerWeight { .. } => LawFamily::SchedulerWeight,
        }
    }

    /// The law's scalar parameter (`step`, `factor` or `gamma`;
    /// [`ThrottleLaw::HalvePerEvent`] reports its fixed factor `0.5`).
    pub fn parameter(&self) -> f64 {
        match *self {
            ThrottleLaw::PercentPointPerUnit { step } => step,
            ThrottleLaw::MultiplicativePerUnit { factor } => factor,
            ThrottleLaw::MultiplicativePerEvent { factor } => factor,
            ThrottleLaw::HalvePerEvent => 0.5,
            ThrottleLaw::SchedulerWeight { gamma } => gamma,
        }
    }

    /// Rebuilds a law from a family and a parameter (the inverse of
    /// [`ThrottleLaw::family`] + [`ThrottleLaw::parameter`]; the parameter is
    /// ignored for [`LawFamily::Halve`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use valkyrie_core::ThrottleLaw;
    /// let law = ThrottleLaw::SchedulerWeight { gamma: 0.1 };
    /// assert_eq!(ThrottleLaw::with_parameter(law.family(), law.parameter()), law);
    /// ```
    pub fn with_parameter(family: LawFamily, parameter: f64) -> Self {
        match family {
            LawFamily::PercentPoint => ThrottleLaw::PercentPointPerUnit { step: parameter },
            LawFamily::MultiplicativePerUnit => {
                ThrottleLaw::MultiplicativePerUnit { factor: parameter }
            }
            LawFamily::MultiplicativePerEvent => {
                ThrottleLaw::MultiplicativePerEvent { factor: parameter }
            }
            LawFamily::Halve => ThrottleLaw::HalvePerEvent,
            LawFamily::SchedulerWeight => ThrottleLaw::SchedulerWeight { gamma: parameter },
        }
    }

    /// Applies the law to a single share for a threat change `delta`.
    ///
    /// The result is clamped to `[0, 1]`; the caller applies resource floors.
    ///
    /// A non-finite `delta` (NaN or ±∞) is treated as "no change": a NaN
    /// would otherwise slip past the `delta == 0.0` fast path (NaN compares
    /// unequal to everything), propagate through the arithmetic *and*
    /// through `clamp`, and permanently poison the process's shares —
    /// every subsequent epoch computes `NaN op x = NaN`. Threat-index
    /// deltas are bounded by construction, so a non-finite value is always
    /// an upstream bug; ignoring it keeps the response law total without
    /// inventing a throttle the monitor never asked for.
    pub fn step_share(&self, share: f64, delta: f64) -> f64 {
        if delta == 0.0 || !delta.is_finite() {
            return share.clamp(0.0, 1.0);
        }
        let next = match *self {
            ThrottleLaw::PercentPointPerUnit { step } => share - step * delta,
            ThrottleLaw::MultiplicativePerUnit { factor } => {
                share * factor.max(f64::MIN_POSITIVE).powf(delta)
            }
            ThrottleLaw::MultiplicativePerEvent { factor } => {
                let factor = factor.max(f64::MIN_POSITIVE);
                if delta > 0.0 {
                    share * factor
                } else {
                    share / factor
                }
            }
            ThrottleLaw::HalvePerEvent => {
                if delta > 0.0 {
                    share * 0.5
                } else {
                    share * 2.0
                }
            }
            ThrottleLaw::SchedulerWeight { gamma } => {
                if delta > 0.0 {
                    share - gamma * share * delta
                } else {
                    share + gamma * share * delta.abs()
                }
            }
        };
        next.clamp(0.0, 1.0)
    }
}

/// An actuator that regulates a single resource share with a [`ThrottleLaw`],
/// honouring a minimum-share floor.
///
/// # Examples
///
/// The paper's Section V-C CPU actuator (10 pp per unit of threat, 1 % floor):
///
/// ```
/// use valkyrie_core::{Actuator, ResourceVector, ShareActuator};
/// let mut a = ShareActuator::cpu_percent_point(0.10, 0.01);
/// let r = a.apply(&ResourceVector::full(), 3.0);
/// assert!((r.cpu - 0.70).abs() < 1e-12);
/// let r = a.apply(&r, 100.0);
/// assert_eq!(r.cpu, 0.01); // floored
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareActuator {
    kind: ResourceKind,
    law: ThrottleLaw,
    floor: f64,
}

impl ShareActuator {
    /// Creates an actuator for `kind` using `law`, with a minimum share of
    /// `floor` (clamped into `[0, 1]`).
    pub fn new(kind: ResourceKind, law: ThrottleLaw, floor: f64) -> Self {
        Self {
            kind,
            law,
            floor: floor.clamp(0.0, 1.0),
        }
    }

    /// The Section V-C CPU actuator: `step` percentage points per unit `ΔT`.
    pub fn cpu_percent_point(step: f64, floor: f64) -> Self {
        Self::new(
            ResourceKind::Cpu,
            ThrottleLaw::PercentPointPerUnit { step },
            floor,
        )
    }

    /// The Eq. 8 OS-scheduler actuator acting on the CPU share
    /// (`γ = 0.1`, minimum relative weight `s_min` in the paper).
    pub fn scheduler_weight(gamma: f64, s_min: f64) -> Self {
        Self::new(
            ResourceKind::Cpu,
            ThrottleLaw::SchedulerWeight { gamma },
            s_min,
        )
    }

    /// The Section VI-C filesystem actuator: halve the file-access rate on
    /// every threat increase.
    pub fn fs_halving(floor: f64) -> Self {
        Self::new(ResourceKind::Filesystem, ThrottleLaw::HalvePerEvent, floor)
    }

    /// A cgroup-style memory actuator.
    pub fn memory_percent_point(step: f64, floor: f64) -> Self {
        Self::new(
            ResourceKind::Memory,
            ThrottleLaw::PercentPointPerUnit { step },
            floor,
        )
    }

    /// A cgroup-style network-bandwidth actuator.
    pub fn network_multiplicative(factor: f64, floor: f64) -> Self {
        Self::new(
            ResourceKind::Network,
            ThrottleLaw::MultiplicativePerEvent { factor },
            floor,
        )
    }

    /// The resource this actuator regulates.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The throttle law in use.
    pub fn law(&self) -> ThrottleLaw {
        self.law
    }

    /// The minimum share this actuator will assign.
    pub fn min_share(&self) -> f64 {
        self.floor
    }
}

impl Actuator for ShareActuator {
    fn apply(&mut self, prev: &ResourceVector, delta_threat: f64) -> ResourceVector {
        let mut next = *prev;
        let share = self
            .law
            .step_share(prev.get(self.kind), delta_threat)
            .max(self.floor);
        next.set(self.kind, share);
        next
    }

    fn floor(&self) -> ResourceVector {
        let mut f = ResourceVector::new(0.0, 0.0, 0.0, 0.0);
        f.set(self.kind, self.floor);
        f
    }
}

/// Applies several [`ShareActuator`]s in sequence, so multiple resources can
/// be throttled at once (e.g. the ransomware case study throttles both CPU
/// time and file-access rate).
///
/// # Examples
///
/// ```
/// use valkyrie_core::{Actuator, CompositeActuator, ResourceVector, ShareActuator};
/// let mut a = CompositeActuator::new(vec![
///     ShareActuator::cpu_percent_point(0.10, 0.01),
///     ShareActuator::fs_halving(1.0 / 128.0),
/// ]);
/// let r = a.apply(&ResourceVector::full(), 1.0);
/// assert!(r.cpu < 1.0 && r.fs == 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompositeActuator {
    parts: Vec<ShareActuator>,
}

impl CompositeActuator {
    /// Creates a composite from individual per-resource actuators.
    pub fn new(parts: Vec<ShareActuator>) -> Self {
        Self { parts }
    }

    /// Adds another per-resource actuator.
    pub fn push(&mut self, part: ShareActuator) {
        self.parts.push(part);
    }

    /// The constituent actuators.
    pub fn parts(&self) -> &[ShareActuator] {
        &self.parts
    }
}

impl Actuator for CompositeActuator {
    fn apply(&mut self, prev: &ResourceVector, delta_threat: f64) -> ResourceVector {
        let mut r = *prev;
        for part in &mut self.parts {
            r = part.apply(&r, delta_threat);
        }
        r
    }

    fn floor(&self) -> ResourceVector {
        let mut f = ResourceVector::new(0.0, 0.0, 0.0, 0.0);
        for part in &self.parts {
            f = f.floored(&part.floor());
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_point_is_linear_in_delta() {
        let law = ThrottleLaw::PercentPointPerUnit { step: 0.1 };
        assert!((law.step_share(1.0, 2.0) - 0.8).abs() < 1e-12);
        assert!((law.step_share(0.5, -3.0) - 0.8).abs() < 1e-12);
        assert_eq!(law.step_share(0.05, 5.0), 0.0); // clamped at zero
    }

    #[test]
    fn multiplicative_per_unit_uses_powers() {
        let law = ThrottleLaw::MultiplicativePerUnit { factor: 0.9 };
        assert!((law.step_share(1.0, 2.0) - 0.81).abs() < 1e-12);
        // Recovery is the exact inverse.
        assert!((law.step_share(0.81, -2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scheduler_weight_matches_eq8() {
        // Eq. 8 with gamma=0.1: one unit of threat drops the relative
        // weight by 10%.
        let law = ThrottleLaw::SchedulerWeight { gamma: 0.1 };
        assert!((law.step_share(1.0, 1.0) - 0.9).abs() < 1e-12);
        assert!((law.step_share(0.9, -1.0) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn halving_law() {
        let law = ThrottleLaw::HalvePerEvent;
        assert_eq!(law.step_share(1.0, 5.0), 0.5);
        assert_eq!(law.step_share(0.5, -1.0), 1.0);
        assert_eq!(law.step_share(0.9, -2.0), 1.0); // clamped at one
    }

    #[test]
    fn law_family_round_trips_through_introspection() {
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.1 },
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
            ThrottleLaw::MultiplicativePerEvent { factor: 0.7 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ] {
            let rebuilt = ThrottleLaw::with_parameter(law.family(), law.parameter());
            assert_eq!(rebuilt, law);
        }
        assert_eq!(LawFamily::ALL.len(), 5);
        assert_eq!(ThrottleLaw::HalvePerEvent.parameter(), 0.5);
    }

    #[test]
    fn every_family_has_a_distinct_name() {
        let names: std::collections::HashSet<_> = LawFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), LawFamily::ALL.len());
    }

    #[test]
    fn zero_delta_is_identity() {
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.1 },
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
            ThrottleLaw::MultiplicativePerEvent { factor: 0.5 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ] {
            assert_eq!(law.step_share(0.42, 0.0), 0.42);
        }
    }

    /// Regression: a NaN `delta` used to fail the `delta == 0.0` fast path
    /// (NaN is unequal to everything), flow through the law arithmetic and
    /// `clamp` — both of which propagate NaN — and permanently poison the
    /// share. Every law variant must treat non-finite deltas as identity.
    #[test]
    fn non_finite_delta_is_identity_for_every_law() {
        for law in [
            ThrottleLaw::PercentPointPerUnit { step: 0.1 },
            ThrottleLaw::MultiplicativePerUnit { factor: 0.9 },
            ThrottleLaw::MultiplicativePerEvent { factor: 0.5 },
            ThrottleLaw::HalvePerEvent,
            ThrottleLaw::SchedulerWeight { gamma: 0.1 },
        ] {
            for delta in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let next = law.step_share(0.42, delta);
                assert_eq!(next, 0.42, "{law:?} poisoned by delta {delta}");
            }
        }
    }

    /// Regression at the actuator level: one NaN observation must not
    /// poison the shares for the rest of the process's life.
    #[test]
    fn nan_delta_does_not_poison_future_epochs() {
        let mut a = ShareActuator::cpu_percent_point(0.10, 0.01);
        let r = a.apply(&ResourceVector::full(), 1.0);
        assert!((r.cpu - 0.9).abs() < 1e-12);
        // The buggy epoch: pre-fix, r.cpu became NaN here and stayed NaN.
        let r = a.apply(&r, f64::NAN);
        assert!((r.cpu - 0.9).abs() < 1e-12);
        assert!(r.is_valid());
        // Recovery continues exactly where it left off.
        let r = a.apply(&r, -1.0);
        assert!((r.cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_actuator_honours_floor() {
        let mut a = ShareActuator::cpu_percent_point(0.5, 0.25);
        let r = a.apply(&ResourceVector::full(), 10.0);
        assert_eq!(r.cpu, 0.25);
        assert_eq!(a.floor().cpu, 0.25);
        assert_eq!(a.floor().fs, 0.0);
    }

    #[test]
    fn share_actuator_only_touches_its_kind() {
        let mut a = ShareActuator::fs_halving(0.0);
        let r = a.apply(&ResourceVector::full(), 1.0);
        assert_eq!(r.cpu, 1.0);
        assert_eq!(r.mem, 1.0);
        assert_eq!(r.net, 1.0);
        assert_eq!(r.fs, 0.5);
    }

    #[test]
    fn reset_restores_full() {
        let mut a = ShareActuator::cpu_percent_point(0.1, 0.01);
        let _ = a.apply(&ResourceVector::full(), 50.0);
        assert!(a.reset().is_full());
    }

    #[test]
    fn composite_applies_all_parts() {
        let mut a = CompositeActuator::new(vec![
            ShareActuator::cpu_percent_point(0.10, 0.01),
            ShareActuator::fs_halving(0.01),
            ShareActuator::memory_percent_point(0.05, 0.5),
        ]);
        let r = a.apply(&ResourceVector::full(), 2.0);
        assert!((r.cpu - 0.8).abs() < 1e-12);
        assert_eq!(r.fs, 0.5);
        assert!((r.mem - 0.9).abs() < 1e-12);
        let floor = a.floor();
        assert_eq!(floor.mem, 0.5);
        assert_eq!(floor.cpu, 0.01);
    }

    #[test]
    fn recovery_reaches_full_share_for_percent_point() {
        let mut a = ShareActuator::cpu_percent_point(0.1, 0.01);
        let mut r = ResourceVector::full();
        for _ in 0..10 {
            r = a.apply(&r, 1.0);
        }
        assert_eq!(r.cpu, 0.01);
        for _ in 0..12 {
            r = a.apply(&r, -1.0);
        }
        assert_eq!(r.cpu, 1.0);
    }
}
