//! The slowdown model of Section V-C (Eqs. 2–4).
//!
//! For a time-progressive process, per-epoch progress `B_i(R_i)` depends on
//! the resources granted. Given the progress series with and without Valkyrie
//! over the `K` epochs the detector needs to reach its required efficacy,
//! Eq. 4 defines the effective slowdown `S(t)` in percent.
//!
//! [`simulate_response`] replays an inference sequence through a
//! [`crate::Monitor`] + actuator pair and records the resource
//! shares enforced in every epoch, which is how the paper's worked example
//! (`N* = 15`, incremental `F_p`/`F_c`, CPU −10 pp per unit of threat, 1 %
//! floor → ≈79.6 % attack slowdown) is reproduced.

use crate::actuator::Actuator;
use crate::monitor::{Directive, Monitor};
use crate::resource::ResourceVector;
use crate::state::ProcessState;
use crate::threat::{AssessmentFn, Classification};

/// Effective slowdown `S(t)` in percent (Eq. 4).
///
/// `progress_without[i]` is `B_i(R_i)` with default resources and
/// `progress_with[i]` is `B_i(A(R_{i-1}, ΔT_i))` under Valkyrie, over the
/// same `K` epochs. `0` means Valkyrie never modified the resources; `100`
/// means the progress halted completely.
///
/// # Panics
///
/// Panics if the two series have different lengths or the baseline progress
/// sums to zero (the slowdown of a process that makes no progress is
/// undefined).
///
/// # Examples
///
/// ```
/// use valkyrie_core::slowdown_percent;
/// let without = [1.0, 1.0, 1.0, 1.0];
/// let with = [1.0, 0.5, 0.5, 1.0];
/// assert_eq!(slowdown_percent(&without, &with), 25.0);
/// ```
pub fn slowdown_percent(progress_without: &[f64], progress_with: &[f64]) -> f64 {
    assert_eq!(
        progress_without.len(),
        progress_with.len(),
        "progress series must cover the same K epochs"
    );
    let base: f64 = progress_without.iter().sum();
    assert!(base > 0.0, "baseline progress must be positive");
    let with: f64 = progress_with.iter().sum();
    (1.0 - with / base) * 100.0
}

/// Wall-clock style slowdown: relative increase in time to complete the same
/// work, in percent (used for the benign-benchmark evaluation of Fig. 5a).
///
/// # Examples
///
/// ```
/// use valkyrie_core::slowdown::completion_slowdown_percent;
/// assert!((completion_slowdown_percent(100.0, 102.8) - 2.8).abs() < 1e-9);
/// ```
pub fn completion_slowdown_percent(epochs_without: f64, epochs_with: f64) -> f64 {
    assert!(epochs_without > 0.0, "baseline epochs must be positive");
    (epochs_with / epochs_without - 1.0) * 100.0
}

/// The epoch-by-epoch trace produced by [`simulate_response`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTrace {
    /// CPU share enforced during each epoch (epoch 0 is always `1.0`,
    /// matching `B_0(R_0)` in Eq. 3).
    pub cpu_shares: Vec<f64>,
    /// Full resource vector enforced during each epoch.
    pub resources: Vec<ResourceVector>,
    /// Threat index after each epoch's inference.
    pub threat: Vec<f64>,
    /// Fig. 3 state after each epoch's inference.
    pub states: Vec<ProcessState>,
    /// Epoch at which the process was terminated, if it was.
    pub terminated_at: Option<usize>,
}

impl ResponseTrace {
    /// Eq. 4 slowdown assuming progress proportional to the CPU share
    /// (the worked example's progress function).
    pub fn cpu_slowdown_percent(&self) -> f64 {
        let without = vec![1.0; self.cpu_shares.len()];
        slowdown_percent(&without, &self.cpu_shares)
    }
}

/// Replays `inferences` through Algorithm 1 with the given assessment
/// functions and actuator, recording the resources enforced in each epoch.
///
/// Epoch `i`'s inference determines the resources for epoch `i + 1`
/// (Eq. 3: `B_0(R_0)` is always unthrottled). If the process reaches the
/// terminable state and is classified malicious, it is terminated and the
/// remaining epochs contribute zero progress.
pub fn simulate_response<A: Actuator>(
    n_star: u64,
    inferences: &[Classification],
    fp: AssessmentFn,
    fc: AssessmentFn,
    mut actuator: A,
) -> ResponseTrace {
    let mut monitor = Monitor::new(n_star, fp, fc);
    let mut current = ResourceVector::FULL;
    let mut trace = ResponseTrace {
        cpu_shares: Vec::with_capacity(inferences.len()),
        resources: Vec::with_capacity(inferences.len()),
        threat: Vec::with_capacity(inferences.len()),
        states: Vec::with_capacity(inferences.len()),
        terminated_at: None,
    };

    for (i, &inference) in inferences.iter().enumerate() {
        // The process executes epoch i under the resources decided by the
        // previous epoch's inference.
        if trace.terminated_at.is_some() {
            trace.cpu_shares.push(0.0);
            trace
                .resources
                .push(ResourceVector::new(0.0, 0.0, 0.0, 0.0));
        } else {
            trace.cpu_shares.push(current.cpu);
            trace.resources.push(current);
        }

        let report = monitor.observe(inference);
        match report.directive {
            Directive::Adjust { delta_threat } => {
                current = actuator.apply(&current, delta_threat);
            }
            Directive::ResetToNormal | Directive::Restore => {
                current = actuator.reset();
            }
            Directive::Terminate => {
                if trace.terminated_at.is_none() {
                    trace.terminated_at = Some(i);
                }
            }
            Directive::Continue => {}
        }
        trace.threat.push(report.threat.value());
        trace.states.push(report.state);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use Classification::{Benign, Malicious};

    fn percent_point_actuator() -> ShareActuator {
        // The Section V-C example: CPU share drops 10 pp per unit of threat
        // increase, minimum share 1 %.
        ShareActuator::cpu_percent_point(0.10, 0.01)
    }

    #[test]
    fn slowdown_percent_basics() {
        assert_eq!(slowdown_percent(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert_eq!(slowdown_percent(&[2.0, 2.0], &[0.0, 0.0]), 100.0);
    }

    #[test]
    #[should_panic(expected = "same K epochs")]
    fn mismatched_series_panic() {
        let _ = slowdown_percent(&[1.0], &[1.0, 1.0]);
    }

    #[test]
    fn worked_example_attack_slowdown_is_about_80_percent() {
        // Section V-C: N* = 15, incremental penalty, all-malicious stream,
        // CPU −10 pp per unit of threat, floor 1 % → paper reports 79.6 %.
        let inferences = vec![Malicious; 15];
        let trace = simulate_response(
            15,
            &inferences,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        let s = trace.cpu_slowdown_percent();
        assert!(
            (s - 79.6).abs() < 1.5,
            "attack slowdown {s}% should be ~79.6%"
        );
        // The process reached the terminable state but was not yet
        // terminated inside the 15 epochs (the 16th inference would kill it).
        assert_eq!(trace.states.last(), Some(&ProcessState::Terminable));
        assert_eq!(trace.terminated_at, None);
    }

    #[test]
    fn worked_example_false_positive_recovers() {
        // Section V-C: FPs in the first 5 epochs, correct in the next 10.
        // The paper reports 26 %; our percentage-point reading of the
        // actuator yields ~33 % (see DESIGN.md) — the key property is that
        // the benign process recovers fully and is never terminated.
        let mut inferences = vec![Malicious; 5];
        inferences.extend(vec![Benign; 10]);
        let trace = simulate_response(
            15,
            &inferences,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        let s = trace.cpu_slowdown_percent();
        assert!(s > 20.0 && s < 45.0, "FP slowdown {s}% out of band");
        assert_eq!(trace.terminated_at, None);
        // Fully recovered by the end.
        assert_eq!(*trace.cpu_shares.last().unwrap(), 1.0);
        // And much cheaper than the attack response.
        let attack = simulate_response(
            15,
            &[Malicious; 15],
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        assert!(s < attack.cpu_slowdown_percent());
    }

    #[test]
    fn termination_zeroes_remaining_progress() {
        let inferences = vec![Malicious; 10];
        let trace = simulate_response(
            3,
            &inferences,
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        // N*=3 epochs accumulate, 4th observation terminates; epochs after
        // the termination make no progress.
        assert_eq!(trace.terminated_at, Some(3));
        assert!(trace.cpu_shares[4..].iter().all(|&s| s == 0.0));
    }

    #[test]
    fn epoch_zero_is_always_unthrottled() {
        let trace = simulate_response(
            10,
            &[Malicious, Malicious],
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        assert_eq!(trace.cpu_shares[0], 1.0);
        assert!(trace.cpu_shares[1] < 1.0);
    }

    #[test]
    fn benign_process_with_no_fps_has_zero_slowdown() {
        let trace = simulate_response(
            20,
            &[Benign; 20],
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            percent_point_actuator(),
        );
        assert_eq!(trace.cpu_slowdown_percent(), 0.0);
    }

    #[test]
    fn completion_slowdown() {
        assert!((completion_slowdown_percent(100.0, 101.0) - 1.0).abs() < 1e-9);
        assert_eq!(completion_slowdown_percent(50.0, 50.0), 0.0);
    }

    #[test]
    fn scheduler_weight_actuator_also_throttles() {
        let trace = simulate_response(
            15,
            &[Malicious; 15],
            AssessmentFn::incremental(),
            AssessmentFn::incremental(),
            ShareActuator::scheduler_weight(0.1, 0.01),
        );
        let s = trace.cpu_slowdown_percent();
        assert!(s > 60.0, "Eq. 8 actuator slowdown {s}% too weak");
    }
}
