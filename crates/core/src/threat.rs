//! Threat assessment: classifications, the bounded threat index and the
//! penalty / compensation assessment functions of Algorithm 1.
//!
//! The threat index `T_i^t` quantifies the detector's accumulated confidence
//! that process `t` is malicious. It is bounded to `[0, 100]`; every metric
//! update passes through the paper's `clamp()` (Algorithm 1, lines 1, 10, 14
//! and 16).

use std::fmt;

/// A detector's per-epoch inference for one process (`D(t, i)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// The detector classified the process behaviour as malicious.
    Malicious,
    /// The detector classified the process behaviour as benign.
    Benign,
}

impl Classification {
    /// True for [`Classification::Malicious`].
    pub fn is_malicious(self) -> bool {
        matches!(self, Classification::Malicious)
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::Malicious => f.write_str("malicious"),
            Classification::Benign => f.write_str("benign"),
        }
    }
}

/// The paper's `clamp(x) = max(0, min(x, 100))`.
pub fn clamp_metric(x: f64) -> f64 {
    x.clamp(ThreatIndex::MIN, ThreatIndex::MAX)
}

/// One detector's weighted evidence about a process for one epoch.
///
/// Where [`Classification`] is the paper's binary `D(t, i)`, a `Verdict`
/// carries what a heterogeneous ensemble member actually knows: *which*
/// detector spoke (`detector` indexes the fusion weights), *how sure* it is
/// (`confidence` in `[0, 1]`, `1.0` = certainly malicious) and *how often*
/// it speaks (`cadence` in epochs-per-inference, so the fusion layer can
/// tell a slow member from a wedged one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Stable detector id within its ensemble (indexes fusion weights).
    pub detector: u32,
    /// Malicious confidence in `[0, 1]`; `1.0` means certainly malicious.
    pub confidence: f64,
    /// Epochs between this detector's publications (at least 1).
    pub cadence: u32,
}

impl Verdict {
    /// A verdict from `detector` with the given confidence and cadence 1.
    ///
    /// The confidence is clamped into `[0, 1]`.
    pub fn new(detector: u32, confidence: f64) -> Self {
        Self {
            detector,
            confidence: confidence.clamp(0.0, 1.0),
            cadence: 1,
        }
    }

    /// Sets the cadence (epochs between publications).
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    #[must_use]
    pub fn with_cadence(mut self, cadence: u32) -> Self {
        assert!(cadence >= 1, "cadence is at least one epoch");
        self.cadence = cadence;
        self
    }

    /// Lifts a binary classification into a full-confidence verdict
    /// (`Malicious` → 1.0, `Benign` → 0.0) at cadence 1.
    pub fn from_classification(detector: u32, c: Classification) -> Self {
        Self::new(detector, if c.is_malicious() { 1.0 } else { 0.0 })
    }

    /// Collapses the verdict back to the binary classification the legacy
    /// path would have seen (malicious iff confidence strictly above 0.5).
    pub fn classification(&self) -> Classification {
        if self.confidence > 0.5 {
            Classification::Malicious
        } else {
            Classification::Benign
        }
    }
}

/// Weighted-evidence accumulator: folds per-detector confidences into one
/// evidence *mass* in `[0, 1]`.
///
/// The mass is the weighted mean of the contributed confidences. With unit
/// weights and binary confidences it reduces to the vote fraction
/// `malicious / total`, which is why the legacy combination rules are a
/// degenerate configuration of the fusion layer (see
/// `valkyrie_detect::FusionEngine`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evidence {
    weighted: f64,
    total: f64,
}

impl Evidence {
    /// An empty accumulator (mass 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one detector's confidence with the given weight. Non-positive
    /// weights contribute nothing (a fully-decayed stale verdict).
    pub fn add(&mut self, confidence: f64, weight: f64) {
        if weight > 0.0 {
            self.weighted += confidence * weight;
            self.total += weight;
        }
    }

    /// The fused evidence mass: weighted mean confidence in `[0, 1]`
    /// (`0.0` when nothing was accumulated).
    pub fn mass(&self) -> f64 {
        if self.total > 0.0 {
            self.weighted / self.total
        } else {
            0.0
        }
    }

    /// Total weight accumulated so far.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// True when no evidence carried weight.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }
}

/// Staleness decay for a verdict `age` epochs old from a detector that
/// publishes every `cadence` epochs: `decay^(age - cadence)` once the
/// verdict is overdue, `1.0` while it is still within its cadence.
///
/// `decay = 1.0` disables staleness (a slow member keeps full weight
/// forever); `decay = 0.0` drops an overdue member entirely.
pub fn stale_weight(decay: f64, age: u64, cadence: u32) -> f64 {
    let overdue = age.saturating_sub(u64::from(cadence));
    if overdue == 0 {
        1.0
    } else {
        decay.powi(overdue.min(i32::MAX as u64) as i32)
    }
}

/// Bounded threat index of a process (`T_i^t ∈ [0, 100]`).
///
/// `0` means no restrictions on system resources; `100` means maximum
/// restrictions (Section V-A).
///
/// # Examples
///
/// ```
/// use valkyrie_core::ThreatIndex;
/// let t = ThreatIndex::new(250.0);
/// assert_eq!(t.value(), 100.0); // clamped
/// assert!(!t.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ThreatIndex(f64);

impl ThreatIndex {
    /// Lower bound of the threat index.
    pub const MIN: f64 = 0.0;
    /// Upper bound of the threat index.
    pub const MAX: f64 = 100.0;

    /// Creates a threat index, clamping into `[0, 100]`.
    pub fn new(value: f64) -> Self {
        Self(clamp_metric(value))
    }

    /// A zero threat index (the *normal* state).
    pub fn zero() -> Self {
        Self(0.0)
    }

    /// The clamped value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the index is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the index increased by `penalty`, clamped (Algorithm 1 l.11).
    #[must_use]
    pub fn penalized(self, penalty: f64) -> Self {
        Self::new(self.0 + penalty)
    }

    /// Returns the index decreased by `compensation`, clamped (l.15–16).
    #[must_use]
    pub fn compensated(self, compensation: f64) -> Self {
        Self::new(self.0 - compensation)
    }
}

impl fmt::Display for ThreatIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// A penalty (`F_p`) or compensation (`F_c`) assessment function.
///
/// These configurable functions control how fast the penalty and compensation
/// metrics grow (Section V-A). The paper names three realizations —
/// incremental, linear and exponential — all of which are provided, plus an
/// escape hatch for custom functions.
///
/// The epoch index is passed so epoch-dependent functions (the paper's
/// exponential example `F_p(P_{i-1}) = 2 i P_{i-1} + 1`) can be expressed.
///
/// # Examples
///
/// ```
/// use valkyrie_core::AssessmentFn;
/// let inc = AssessmentFn::incremental();
/// assert_eq!(inc.next(0.0, 1), 1.0);
/// assert_eq!(inc.next(1.0, 2), 2.0);
///
/// let lin = AssessmentFn::linear(2.0, 1.0);
/// assert_eq!(lin.next(3.0, 1), 7.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub enum AssessmentFn {
    /// `F(x) = x + 1` — the paper's incremental function (Eqs. 5 and 6).
    Incremental,
    /// `F(x) = a·x + b`.
    Linear {
        /// Multiplicative coefficient.
        a: f64,
        /// Additive coefficient.
        b: f64,
    },
    /// `F(x) = base·i·x + 1` — epoch-dependent exponential growth
    /// (the paper's example uses `base = 2`).
    Exponential {
        /// Growth base.
        base: f64,
    },
    /// A custom function of `(previous_value, epoch_index)`.
    Custom(fn(f64, u64) -> f64),
}

impl AssessmentFn {
    /// The incremental assessment function `F(x) = x + 1`.
    pub fn incremental() -> Self {
        AssessmentFn::Incremental
    }

    /// A linear assessment function `F(x) = a·x + b`.
    pub fn linear(a: f64, b: f64) -> Self {
        AssessmentFn::Linear { a, b }
    }

    /// The exponential assessment function `F(x) = base·i·x + 1`.
    pub fn exponential(base: f64) -> Self {
        AssessmentFn::Exponential { base }
    }

    /// Evaluates the function: next metric value from the previous one.
    ///
    /// The result is clamped to `[0, 100]`, matching Algorithm 1's use of
    /// `clamp()` around every `F_p` / `F_c` evaluation.
    pub fn next(&self, prev: f64, epoch: u64) -> f64 {
        let raw = match *self {
            AssessmentFn::Incremental => prev + 1.0,
            AssessmentFn::Linear { a, b } => a * prev + b,
            AssessmentFn::Exponential { base } => base * epoch as f64 * prev + 1.0,
            AssessmentFn::Custom(f) => f(prev, epoch),
        };
        clamp_metric(raw)
    }
}

impl Default for AssessmentFn {
    /// The paper's default: incremental growth.
    fn default() -> Self {
        AssessmentFn::Incremental
    }
}

impl PartialEq for AssessmentFn {
    /// Structural equality; [`AssessmentFn::Custom`] values are never equal
    /// (function-pointer identity is not meaningful across codegen units).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AssessmentFn::Incremental, AssessmentFn::Incremental) => true,
            (AssessmentFn::Linear { a, b }, AssessmentFn::Linear { a: a2, b: b2 }) => {
                a == a2 && b == b2
            }
            (AssessmentFn::Exponential { base }, AssessmentFn::Exponential { base: b2 }) => {
                base == b2
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threat_index_clamps_both_ends() {
        assert_eq!(ThreatIndex::new(-5.0).value(), 0.0);
        assert_eq!(ThreatIndex::new(105.0).value(), 100.0);
        assert_eq!(ThreatIndex::new(50.0).value(), 50.0);
    }

    #[test]
    fn penalize_and_compensate_round_trip() {
        let t = ThreatIndex::zero().penalized(30.0);
        assert_eq!(t.value(), 30.0);
        let t = t.compensated(30.0);
        assert!(t.is_zero());
    }

    #[test]
    fn incremental_grows_by_one() {
        let f = AssessmentFn::incremental();
        let mut p = 0.0;
        for epoch in 1..=5 {
            p = f.next(p, epoch);
        }
        assert_eq!(p, 5.0);
    }

    #[test]
    fn linear_matches_formula() {
        let f = AssessmentFn::linear(1.5, 2.0);
        assert_eq!(f.next(4.0, 7), 8.0);
    }

    #[test]
    fn exponential_depends_on_epoch() {
        let f = AssessmentFn::exponential(2.0);
        assert_eq!(f.next(1.0, 1), 3.0); // 2*1*1 + 1
        assert_eq!(f.next(3.0, 2), 13.0); // 2*2*3 + 1
    }

    #[test]
    fn assessment_output_is_clamped() {
        let f = AssessmentFn::linear(1000.0, 1000.0);
        assert_eq!(f.next(50.0, 1), 100.0);
        let f = AssessmentFn::linear(-10.0, 0.0);
        assert_eq!(f.next(5.0, 1), 0.0);
    }

    #[test]
    fn custom_function_is_used() {
        let f = AssessmentFn::Custom(|prev, _| prev * 2.0 + 0.5);
        assert_eq!(f.next(1.0, 9), 2.5);
    }

    #[test]
    fn verdict_clamps_confidence_and_round_trips_classification() {
        let v = Verdict::new(3, 1.7);
        assert_eq!(v.confidence, 1.0);
        assert_eq!(v.classification(), Classification::Malicious);
        let v = Verdict::new(0, -0.2);
        assert_eq!(v.confidence, 0.0);
        assert_eq!(v.classification(), Classification::Benign);
        // Exactly 0.5 is benign, matching the legacy majority tie rule.
        assert_eq!(
            Verdict::new(1, 0.5).classification(),
            Classification::Benign
        );
        let v = Verdict::from_classification(2, Classification::Malicious).with_cadence(4);
        assert_eq!((v.detector, v.confidence, v.cadence), (2, 1.0, 4));
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_panics() {
        let _ = Verdict::new(0, 1.0).with_cadence(0);
    }

    #[test]
    fn evidence_mass_is_weighted_mean() {
        let mut e = Evidence::new();
        assert!(e.is_empty());
        assert_eq!(e.mass(), 0.0);
        e.add(1.0, 1.0);
        e.add(0.0, 3.0);
        assert_eq!(e.mass(), 0.25);
        assert_eq!(e.total_weight(), 4.0);
        // Non-positive weights contribute nothing.
        e.add(1.0, 0.0);
        e.add(1.0, -2.0);
        assert_eq!(e.mass(), 0.25);
    }

    #[test]
    fn unit_weight_evidence_reduces_to_vote_fraction() {
        // The migration guarantee: m malicious votes out of n members give
        // mass m/n exactly, so `mass > 0.5` is `2m > n` bit-for-bit.
        for n in [1_usize, 3, 5] {
            for m in 0..=n {
                let mut e = Evidence::new();
                for i in 0..n {
                    e.add(if i < m { 1.0 } else { 0.0 }, 1.0);
                }
                assert_eq!(e.mass(), m as f64 / n as f64);
                assert_eq!(e.mass() > 0.5, 2 * m > n, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn stale_weight_kicks_in_past_the_cadence() {
        // Fresh or within cadence: no decay.
        assert_eq!(stale_weight(0.5, 0, 1), 1.0);
        assert_eq!(stale_weight(0.5, 3, 3), 1.0);
        // One epoch overdue halves the weight, two quarter it.
        assert_eq!(stale_weight(0.5, 4, 3), 0.5);
        assert_eq!(stale_weight(0.5, 5, 3), 0.25);
        // decay = 1.0 disables staleness entirely.
        assert_eq!(stale_weight(1.0, 100, 1), 1.0);
        // decay = 0.0 drops an overdue member.
        assert_eq!(stale_weight(0.0, 2, 1), 0.0);
    }

    #[test]
    fn classification_display() {
        assert_eq!(Classification::Malicious.to_string(), "malicious");
        assert_eq!(Classification::Benign.to_string(), "benign");
        assert!(Classification::Malicious.is_malicious());
        assert!(!Classification::Benign.is_malicious());
    }
}
