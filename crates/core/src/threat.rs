//! Threat assessment: classifications, the bounded threat index and the
//! penalty / compensation assessment functions of Algorithm 1.
//!
//! The threat index `T_i^t` quantifies the detector's accumulated confidence
//! that process `t` is malicious. It is bounded to `[0, 100]`; every metric
//! update passes through the paper's `clamp()` (Algorithm 1, lines 1, 10, 14
//! and 16).

use std::fmt;

/// A detector's per-epoch inference for one process (`D(t, i)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// The detector classified the process behaviour as malicious.
    Malicious,
    /// The detector classified the process behaviour as benign.
    Benign,
}

impl Classification {
    /// True for [`Classification::Malicious`].
    pub fn is_malicious(self) -> bool {
        matches!(self, Classification::Malicious)
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Classification::Malicious => f.write_str("malicious"),
            Classification::Benign => f.write_str("benign"),
        }
    }
}

/// The paper's `clamp(x) = max(0, min(x, 100))`.
pub fn clamp_metric(x: f64) -> f64 {
    x.clamp(ThreatIndex::MIN, ThreatIndex::MAX)
}

/// Bounded threat index of a process (`T_i^t ∈ [0, 100]`).
///
/// `0` means no restrictions on system resources; `100` means maximum
/// restrictions (Section V-A).
///
/// # Examples
///
/// ```
/// use valkyrie_core::ThreatIndex;
/// let t = ThreatIndex::new(250.0);
/// assert_eq!(t.value(), 100.0); // clamped
/// assert!(!t.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ThreatIndex(f64);

impl ThreatIndex {
    /// Lower bound of the threat index.
    pub const MIN: f64 = 0.0;
    /// Upper bound of the threat index.
    pub const MAX: f64 = 100.0;

    /// Creates a threat index, clamping into `[0, 100]`.
    pub fn new(value: f64) -> Self {
        Self(clamp_metric(value))
    }

    /// A zero threat index (the *normal* state).
    pub fn zero() -> Self {
        Self(0.0)
    }

    /// The clamped value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True when the index is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the index increased by `penalty`, clamped (Algorithm 1 l.11).
    #[must_use]
    pub fn penalized(self, penalty: f64) -> Self {
        Self::new(self.0 + penalty)
    }

    /// Returns the index decreased by `compensation`, clamped (l.15–16).
    #[must_use]
    pub fn compensated(self, compensation: f64) -> Self {
        Self::new(self.0 - compensation)
    }
}

impl fmt::Display for ThreatIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// A penalty (`F_p`) or compensation (`F_c`) assessment function.
///
/// These configurable functions control how fast the penalty and compensation
/// metrics grow (Section V-A). The paper names three realizations —
/// incremental, linear and exponential — all of which are provided, plus an
/// escape hatch for custom functions.
///
/// The epoch index is passed so epoch-dependent functions (the paper's
/// exponential example `F_p(P_{i-1}) = 2 i P_{i-1} + 1`) can be expressed.
///
/// # Examples
///
/// ```
/// use valkyrie_core::AssessmentFn;
/// let inc = AssessmentFn::incremental();
/// assert_eq!(inc.next(0.0, 1), 1.0);
/// assert_eq!(inc.next(1.0, 2), 2.0);
///
/// let lin = AssessmentFn::linear(2.0, 1.0);
/// assert_eq!(lin.next(3.0, 1), 7.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub enum AssessmentFn {
    /// `F(x) = x + 1` — the paper's incremental function (Eqs. 5 and 6).
    Incremental,
    /// `F(x) = a·x + b`.
    Linear {
        /// Multiplicative coefficient.
        a: f64,
        /// Additive coefficient.
        b: f64,
    },
    /// `F(x) = base·i·x + 1` — epoch-dependent exponential growth
    /// (the paper's example uses `base = 2`).
    Exponential {
        /// Growth base.
        base: f64,
    },
    /// A custom function of `(previous_value, epoch_index)`.
    Custom(fn(f64, u64) -> f64),
}

impl AssessmentFn {
    /// The incremental assessment function `F(x) = x + 1`.
    pub fn incremental() -> Self {
        AssessmentFn::Incremental
    }

    /// A linear assessment function `F(x) = a·x + b`.
    pub fn linear(a: f64, b: f64) -> Self {
        AssessmentFn::Linear { a, b }
    }

    /// The exponential assessment function `F(x) = base·i·x + 1`.
    pub fn exponential(base: f64) -> Self {
        AssessmentFn::Exponential { base }
    }

    /// Evaluates the function: next metric value from the previous one.
    ///
    /// The result is clamped to `[0, 100]`, matching Algorithm 1's use of
    /// `clamp()` around every `F_p` / `F_c` evaluation.
    pub fn next(&self, prev: f64, epoch: u64) -> f64 {
        let raw = match *self {
            AssessmentFn::Incremental => prev + 1.0,
            AssessmentFn::Linear { a, b } => a * prev + b,
            AssessmentFn::Exponential { base } => base * epoch as f64 * prev + 1.0,
            AssessmentFn::Custom(f) => f(prev, epoch),
        };
        clamp_metric(raw)
    }
}

impl Default for AssessmentFn {
    /// The paper's default: incremental growth.
    fn default() -> Self {
        AssessmentFn::Incremental
    }
}

impl PartialEq for AssessmentFn {
    /// Structural equality; [`AssessmentFn::Custom`] values are never equal
    /// (function-pointer identity is not meaningful across codegen units).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AssessmentFn::Incremental, AssessmentFn::Incremental) => true,
            (AssessmentFn::Linear { a, b }, AssessmentFn::Linear { a: a2, b: b2 }) => {
                a == a2 && b == b2
            }
            (AssessmentFn::Exponential { base }, AssessmentFn::Exponential { base: b2 }) => {
                base == b2
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threat_index_clamps_both_ends() {
        assert_eq!(ThreatIndex::new(-5.0).value(), 0.0);
        assert_eq!(ThreatIndex::new(105.0).value(), 100.0);
        assert_eq!(ThreatIndex::new(50.0).value(), 50.0);
    }

    #[test]
    fn penalize_and_compensate_round_trip() {
        let t = ThreatIndex::zero().penalized(30.0);
        assert_eq!(t.value(), 30.0);
        let t = t.compensated(30.0);
        assert!(t.is_zero());
    }

    #[test]
    fn incremental_grows_by_one() {
        let f = AssessmentFn::incremental();
        let mut p = 0.0;
        for epoch in 1..=5 {
            p = f.next(p, epoch);
        }
        assert_eq!(p, 5.0);
    }

    #[test]
    fn linear_matches_formula() {
        let f = AssessmentFn::linear(1.5, 2.0);
        assert_eq!(f.next(4.0, 7), 8.0);
    }

    #[test]
    fn exponential_depends_on_epoch() {
        let f = AssessmentFn::exponential(2.0);
        assert_eq!(f.next(1.0, 1), 3.0); // 2*1*1 + 1
        assert_eq!(f.next(3.0, 2), 13.0); // 2*2*3 + 1
    }

    #[test]
    fn assessment_output_is_clamped() {
        let f = AssessmentFn::linear(1000.0, 1000.0);
        assert_eq!(f.next(50.0, 1), 100.0);
        let f = AssessmentFn::linear(-10.0, 0.0);
        assert_eq!(f.next(5.0, 1), 0.0);
    }

    #[test]
    fn custom_function_is_used() {
        let f = AssessmentFn::Custom(|prev, _| prev * 2.0 + 0.5);
        assert_eq!(f.next(1.0, 9), 2.5);
    }

    #[test]
    fn classification_display() {
        assert_eq!(Classification::Malicious.to_string(), "malicious");
        assert_eq!(Classification::Benign.to_string(), "benign");
        assert!(Classification::Malicious.is_malicious());
        assert!(!Classification::Benign.is_malicious());
    }
}
