//! Async detector ingest: bounded per-shard observation queues that
//! decouple detector inference latency from the response tick.
//!
//! The paper's `N*` accounting assumes one observation per process per
//! epoch, but a real detector ensemble (LSTM members, remote scoring
//! services) can take longer than an epoch to produce a verdict — and an
//! epoch driver that calls the detector *synchronously* stalls with it.
//! This module makes the monitor-to-responder handoff a first-class,
//! bounded subsystem: detector threads publish classifications through an
//! [`IngestPublisher`] whenever they finish, and the epoch driver calls
//! [`ShardedEngine::drain_tick`](crate::ShardedEngine::drain_tick) on its
//! own schedule, consuming whatever has arrived. A slow — or wedged —
//! detector can no longer hold the response tier's tick hostage.
//!
//! # Architecture
//!
//! One bounded MPSC ring per engine shard ([`IngestQueues`] owns them all).
//! Publishing routes each observation to the ring of the shard that owns
//! its pid (the same [`mix64`](crate::hash::mix64)-based placement the
//! batch path uses), so draining a shard's ring never crosses shard
//! boundaries: in pool mode every worker drains its own shards in place,
//! with no cross-thread batch scatter.
//!
//! Each accepted observation is stamped with a global sequence number,
//! allocated under the destination ring's lock. Within a ring, sequence
//! numbers are strictly increasing in application order, so a drain can
//! merge the per-shard response lists back into one publish-ordered
//! response batch — which is what makes Block-mode ingest **bit-for-bit
//! equivalent** to the synchronous
//! [`observe_batch`](crate::ShardedEngine::observe_batch) path (pinned by
//! the property tests in `tests/ingest.rs`).
//!
//! # Overflow policies
//!
//! The rings are bounded (`capacity` observations **per shard**) and
//! [`OverflowPolicy`] decides what happens when a publish finds its ring
//! full:
//!
//! * [`OverflowPolicy::Block`] — the publisher waits for the driver's next
//!   drain. Lossless; gives end-to-end backpressure to the detector tier.
//! * [`OverflowPolicy::DropOldest`] — the oldest queued observation is
//!   evicted. The freshest verdicts win; staleness is bounded by the ring
//!   capacity.
//! * [`OverflowPolicy::Coalesce`] — if the full ring already holds an
//!   observation for the same pid, it is overwritten in place with the
//!   newer classification (cyclic monitoring consumes one verdict per
//!   process per epoch, so only the newest matters); otherwise the oldest
//!   entry is evicted as in `DropOldest`.
//!
//! Every lost observation is counted and exposed through
//! [`IngestStats`] — overload is visible, never silent.
//!
//! # Overload defense
//!
//! Bounded rings create their own attack surface: an adversary who can
//! publish benign-looking observations — a compromised ensemble member, a
//! tenant spamming decoy processes — can flood the rings until the
//! overflow policy evicts the *real* verdicts, masking an attack inside
//! the dropped window (a noise-floor DoS on the monitor itself).
//! [`IngestDefense`] hardens the rings with two orthogonal mechanisms:
//!
//! * **Priority lanes** ([`IngestDefense::priority_lane`]): each ring
//!   gains a second lane for pids the engine's own evidence already marks
//!   suspicious, fed back through a shared [`ThreatHints`] handle.
//!   Priority entries are drained first and are never evicted by
//!   normal-lane overflow — once a process is on the escalation ladder,
//!   no flood can silence the verdicts that decide its fate.
//! * **Per-publisher fair queueing** ([`IngestDefense::fair_queueing`]):
//!   every [`IngestPublisher`] handle carries an id, and overflow
//!   evictions are charged to whoever is hogging the ring: a publisher
//!   pushing past its fair share (`capacity / publisher handles`) evicts
//!   its *own* oldest entry, and otherwise the heaviest backlog holder
//!   pays — so one flooding publisher destroys its own decoys, not the
//!   other members' verdicts. Redirected evictions are counted as
//!   [`IngestStats::evictions_deflected`].
//!
//! With the defense enabled but the rings never full, drained results are
//! bit-for-bit identical to the undefended `Block`-mode path (pinned by
//! `tests/ingest.rs`): both mechanisms only act at the overflow boundary.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::prelude::*;
//! use std::thread;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(3)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut engine = ShardedEngine::new(config, 4);
//! let publisher = engine.enable_ingest(1024, OverflowPolicy::Block);
//!
//! // A detector thread publishes verdicts at its own pace...
//! let detector = thread::spawn(move || {
//!     for _ in 0..4 {
//!         publisher.publish(ProcessId(7), Classification::Malicious);
//!     }
//! });
//! detector.join().unwrap();
//!
//! // ...and the epoch driver drains whatever has arrived, on schedule.
//! let responses = engine.drain_tick();
//! assert_eq!(responses.len(), 4);
//! assert_eq!(engine.epoch(), 1);
//! ```

use crate::resource::ProcessId;
use crate::telemetry::IngestStats;
use crate::threat::{Classification, Verdict};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// The sub-key [`OverflowPolicy::Coalesce`] merges on, within a pid: two
/// queued entries coalesce only when both the pid *and* this key match.
///
/// Binary [`Classification`]s share a single key — cyclic monitoring
/// consumes one classification per process per epoch, so pid-only
/// coalescing is the faithful semantics. [`Verdict`]s key by their
/// detector id: ensemble members publish independently, and a fast
/// member's verdict must never overwrite a *different* detector's queued
/// verdict for the same pid (the fusion table needs one entry per member,
/// not one per process).
pub trait CoalesceKey: Copy {
    /// The merge sub-key (default: one shared key, pid-only coalescing).
    fn coalesce_key(&self) -> u32 {
        0
    }
}

impl CoalesceKey for Classification {}

impl CoalesceKey for Verdict {
    fn coalesce_key(&self) -> u32 {
        self.detector
    }
}

/// Which pids the engine's evidence table currently marks suspicious —
/// the feedback channel from the response tier to the ingest rings'
/// priority lane.
///
/// Shared (via `Arc`) between a [`ShardedEngine`] and every defended
/// queue set it builds: the engine refreshes the set from its own
/// responses each tick (Suspicious/Terminable pids are marked, pids that
/// return to Normal or terminate are cleared), and publishes for marked
/// pids route into the priority lane that overload can never evict.
///
/// [`ShardedEngine`]: crate::ShardedEngine
#[derive(Debug, Default)]
pub struct ThreatHints {
    hot: RwLock<HashSet<u64>>,
}

impl ThreatHints {
    /// A fresh, empty hint set behind a shared handle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Whether `pid` is currently marked suspicious.
    pub fn is_hot(&self, pid: ProcessId) -> bool {
        self.hot
            .read()
            .expect("threat hints poisoned")
            .contains(&pid.0)
    }

    /// Marks `pid` suspicious; returns whether it was newly marked.
    pub fn mark(&self, pid: ProcessId) -> bool {
        self.hot
            .write()
            .expect("threat hints poisoned")
            .insert(pid.0)
    }

    /// Clears `pid`'s mark; returns whether it was marked.
    pub fn clear(&self, pid: ProcessId) -> bool {
        self.hot
            .write()
            .expect("threat hints poisoned")
            .remove(&pid.0)
    }

    /// Applies a batch of `(pid, mark)` updates under one lock
    /// acquisition (`true` marks, `false` clears).
    pub fn update(&self, updates: impl IntoIterator<Item = (ProcessId, bool)>) {
        let mut hot = self.hot.write().expect("threat hints poisoned");
        for (pid, mark) in updates {
            if mark {
                hot.insert(pid.0);
            } else {
                hot.remove(&pid.0);
            }
        }
    }

    /// How many pids are currently marked.
    pub fn len(&self) -> usize {
        self.hot.read().expect("threat hints poisoned").len()
    }

    /// Whether no pid is currently marked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which overload-defense mechanisms a queue set runs with (see the
/// [module docs](self)). The default is everything off — the undefended
/// PR 5 rings, byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestDefense {
    /// Route observations for [`ThreatHints`]-marked pids into a separate
    /// priority lane: drained first, never evicted by normal-lane
    /// overflow.
    pub priority_lane: bool,
    /// Charge overflow evictions to the publisher hogging the ring
    /// instead of whoever queued first.
    pub fair_queueing: bool,
}

impl IngestDefense {
    /// Both mechanisms on — the recommended hardened configuration.
    pub fn full() -> Self {
        Self {
            priority_lane: true,
            fair_queueing: true,
        }
    }

    /// Whether any mechanism is enabled.
    pub fn enabled(&self) -> bool {
        self.priority_lane || self.fair_queueing
    }
}

/// What a full per-shard ring does with the next published observation.
/// See the [module docs](self) for when each policy fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Publishers wait for the next drain: lossless, with backpressure on
    /// the detector tier. The default. (A driver that publishes into its
    /// own engine from the drain thread must size the rings for a full
    /// tick, or it will wait for a drain that can never come.)
    #[default]
    Block,
    /// Evict the oldest queued observation; the freshest verdicts survive.
    DropOldest,
    /// Overwrite the queued observation of the *same pid* with the newer
    /// classification (cyclic monitoring's semantics: one verdict per
    /// process per epoch, newest wins); evict the stalest-stamped entry
    /// when the pid has none queued. A publish into a *full* ring scans it
    /// (O(capacity), under the ring lock) to find the merge target or the
    /// eviction victim — size the rings so overflow is the exception, not
    /// the steady state, and let [`IngestStats::coalesced`] tell you when
    /// it isn't.
    Coalesce,
}

/// One queued observation: the publish-order stamp, the publisher handle
/// it arrived through, and the payload.
#[derive(Debug, Clone, Copy)]
struct QueuedObs<P> {
    seq: u64,
    pid: ProcessId,
    publisher: u32,
    payload: P,
}

/// The lock-protected interior of one shard's ring.
#[derive(Debug)]
struct RingState<P> {
    buf: VecDeque<QueuedObs<P>>,
    /// The priority lane: entries for [`ThreatHints`]-marked pids. Its own
    /// capacity budget; normal-lane overflow can never evict from it.
    prio: VecDeque<QueuedObs<P>>,
    /// Normal-lane entries per publisher id (fair-queueing bookkeeping;
    /// maintained only when the defense runs with fair queueing).
    occupancy: Vec<u32>,
    /// Observations evicted by `DropOldest` (or `Coalesce`'s fallback).
    dropped: u64,
    /// Observations merged into an existing same-(pid, key) entry by
    /// `Coalesce`.
    coalesced: u64,
    /// Observations accepted into the priority lane.
    priority_queued: u64,
    /// Evictions fair queueing redirected away from the naive victim.
    evictions_deflected: u64,
    /// Evictions charged per publisher id.
    dropped_by_pub: Vec<u64>,
}

impl<P> Default for RingState<P> {
    fn default() -> Self {
        Self {
            buf: VecDeque::new(),
            prio: VecDeque::new(),
            occupancy: Vec::new(),
            dropped: 0,
            coalesced: 0,
            priority_queued: 0,
            evictions_deflected: 0,
            dropped_by_pub: Vec::new(),
        }
    }
}

impl<P> RingState<P> {
    /// Books one eviction against `publisher`.
    fn charge_drop(&mut self, publisher: u32) {
        self.dropped += 1;
        let idx = publisher as usize;
        if self.dropped_by_pub.len() <= idx {
            self.dropped_by_pub.resize(idx + 1, 0);
        }
        self.dropped_by_pub[idx] += 1;
    }

    /// Normal-lane entries currently held by `publisher`.
    fn occ(&self, publisher: u32) -> usize {
        self.occupancy.get(publisher as usize).copied().unwrap_or(0) as usize
    }

    fn occ_inc(&mut self, publisher: u32) {
        let idx = publisher as usize;
        if self.occupancy.len() <= idx {
            self.occupancy.resize(idx + 1, 0);
        }
        self.occupancy[idx] += 1;
    }

    fn occ_dec(&mut self, publisher: u32) {
        if let Some(o) = self.occupancy.get_mut(publisher as usize) {
            *o = o.saturating_sub(1);
        }
    }
}

/// One shard's bounded ring: a mutex-backed `VecDeque` plus the condvar
/// `Block`-mode publishers wait on.
#[derive(Debug)]
struct ShardRing<P> {
    state: Mutex<RingState<P>>,
    space: Condvar,
}

impl<P> Default for ShardRing<P> {
    fn default() -> Self {
        Self {
            state: Mutex::new(RingState::default()),
            space: Condvar::new(),
        }
    }
}

/// All of one engine's ingest rings: one bounded MPSC ring per shard,
/// shared (via `Arc`) between the engine, its pool workers and every
/// [`IngestPublisher`] clone.
///
/// Generic over the queued payload: the PR 5 binary path queues
/// [`Classification`]s (the default), the fusion path queues
/// [`Verdict`]s — same rings, same overflow
/// policies, same sequence-stamp merge discipline.
///
/// Constructed by
/// [`ShardedEngine::enable_ingest`](crate::ShardedEngine::enable_ingest);
/// embedders interact with it through the publisher and the engine's
/// drain methods.
#[derive(Debug)]
pub struct IngestQueues<P = Classification> {
    rings: Vec<ShardRing<P>>,
    capacity: usize,
    policy: OverflowPolicy,
    /// The overload-defense configuration (fixed at construction).
    defense: IngestDefense,
    /// The engine-fed suspicious-pid set the priority lane routes on.
    hints: Arc<ThreatHints>,
    /// Global publish-order stamp. Allocated under the destination ring's
    /// lock so per-ring sequences are strictly increasing in application
    /// order (the property the drain merge relies on).
    seq: AtomicU64,
    /// The next publisher id to hand out. Starts at 1: id 0 is reserved
    /// for the engine's driver-side pushes, publisher handles take 1...
    next_publisher: AtomicU32,
    published: AtomicU64,
    drained: AtomicU64,
    /// Set when the owning engine replaces or drops the queue set; wakes
    /// blocked publishers so no detector thread outlives its engine
    /// wedged on a condvar.
    closed: AtomicBool,
}

impl<P> IngestQueues<P> {
    /// Registers a new publisher handle and returns its id.
    pub(crate) fn register_publisher(&self) -> u32 {
        self.next_publisher.fetch_add(1, Ordering::Relaxed)
    }

    /// Publisher handles registered so far (driver-side id 0 excluded).
    fn publisher_handles(&self) -> usize {
        (self.next_publisher.load(Ordering::Relaxed) as usize).saturating_sub(1)
    }

    /// One publisher's fair share of a ring: `capacity / handles`,
    /// never below one entry.
    pub(crate) fn fair_share(&self) -> usize {
        (self.capacity / self.publisher_handles().max(1)).max(1)
    }
}

impl<P: CoalesceKey> IngestQueues<P> {
    /// One ring per shard, each bounded to `capacity` observations, with
    /// the overload defense off.
    ///
    /// # Panics
    ///
    /// Panics if `nshards` or `capacity` is zero.
    #[cfg(test)]
    pub(crate) fn new(nshards: usize, capacity: usize, policy: OverflowPolicy) -> Arc<Self> {
        Self::with_defense(
            nshards,
            capacity,
            policy,
            IngestDefense::default(),
            ThreatHints::new(),
        )
    }

    /// One ring per shard, each bounded to `capacity` observations, with
    /// an explicit defense configuration and the engine-shared
    /// [`ThreatHints`] handle the priority lane routes on.
    ///
    /// # Panics
    ///
    /// Panics if `nshards` or `capacity` is zero.
    pub(crate) fn with_defense(
        nshards: usize,
        capacity: usize,
        policy: OverflowPolicy,
        defense: IngestDefense,
        hints: Arc<ThreatHints>,
    ) -> Arc<Self> {
        assert!(nshards > 0, "ingest needs at least one shard");
        assert!(capacity > 0, "ingest rings need a non-zero capacity");
        Arc::new(Self {
            rings: (0..nshards).map(|_| ShardRing::default()).collect(),
            capacity,
            policy,
            defense,
            hints,
            seq: AtomicU64::new(0),
            next_publisher: AtomicU32::new(1),
            published: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// Ring capacity, in observations **per shard, per lane**.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// The overload-defense configuration.
    pub fn defense(&self) -> IngestDefense {
        self.defense
    }

    /// Number of per-shard rings.
    pub(crate) fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Publishes one observation from publisher `publisher` to shard
    /// `shard`'s ring, applying the overflow policy if the destination
    /// lane is full. Returns `false` (observation discarded) only when
    /// the queue set has been closed.
    pub(crate) fn push(&self, publisher: u32, shard: usize, pid: ProcessId, payload: P) -> bool {
        let ring = &self.rings[shard];
        let mut state = ring.state.lock().expect("ingest ring poisoned");
        // A closed queue rejects the publish before any overflow
        // handling: an eviction on behalf of an observation that is about
        // to be discarded anyway would destroy queued data for nothing.
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        if self.defense.priority_lane && self.hints.is_hot(pid) {
            return self.push_priority(ring, state, publisher, pid, payload);
        }
        if state.buf.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Block => {
                    while state.buf.len() >= self.capacity && !self.closed.load(Ordering::Acquire) {
                        state = ring.space.wait(state).expect("ingest ring poisoned");
                    }
                }
                OverflowPolicy::DropOldest => {
                    self.evict_normal(&mut state, publisher, false);
                }
                OverflowPolicy::Coalesce => {
                    let key = payload.coalesce_key();
                    if let Some(i) = state
                        .buf
                        .iter()
                        .rposition(|o| o.pid == pid && o.payload.coalesce_key() == key)
                    {
                        // Same (pid, key) already queued: keep its queue
                        // position, take the newer verdict, publish-order
                        // stamp and publisher attribution.
                        let prev = state.buf[i].publisher;
                        state.buf[i].seq = self.seq.fetch_add(1, Ordering::Relaxed);
                        state.buf[i].payload = payload;
                        state.buf[i].publisher = publisher;
                        if self.defense.fair_queueing && prev != publisher {
                            state.occ_dec(prev);
                            state.occ_inc(publisher);
                        }
                        state.coalesced += 1;
                        self.published.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    // No entry to merge into: evict the stalest *verdict*
                    // (minimum stamp — coalescing restamps entries in
                    // place, so the front of the ring is not necessarily
                    // the oldest observation).
                    self.evict_normal(&mut state, publisher, true);
                }
            }
        }
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if self.defense.fair_queueing {
            state.occ_inc(publisher);
        }
        state.buf.push_back(QueuedObs {
            seq,
            pid,
            publisher,
            payload,
        });
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The priority-lane half of [`Self::push`]: its own capacity budget
    /// and overflow handling, entirely insulated from the normal lane —
    /// when *it* overflows (suspicious pids alone exceed a ring), the
    /// policy applies within the lane, so even then a flood of normal
    /// traffic cannot be the cause.
    fn push_priority(
        &self,
        ring: &ShardRing<P>,
        mut state: std::sync::MutexGuard<'_, RingState<P>>,
        publisher: u32,
        pid: ProcessId,
        payload: P,
    ) -> bool {
        if state.prio.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Block => {
                    while state.prio.len() >= self.capacity && !self.closed.load(Ordering::Acquire)
                    {
                        state = ring.space.wait(state).expect("ingest ring poisoned");
                    }
                }
                OverflowPolicy::DropOldest => {
                    if let Some(victim) = state.prio.pop_front() {
                        state.charge_drop(victim.publisher);
                    }
                }
                OverflowPolicy::Coalesce => {
                    let key = payload.coalesce_key();
                    if let Some(i) = state
                        .prio
                        .iter()
                        .rposition(|o| o.pid == pid && o.payload.coalesce_key() == key)
                    {
                        state.prio[i].seq = self.seq.fetch_add(1, Ordering::Relaxed);
                        state.prio[i].payload = payload;
                        state.prio[i].publisher = publisher;
                        state.coalesced += 1;
                        state.priority_queued += 1;
                        self.published.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    if let Some(stalest) = (0..state.prio.len()).min_by_key(|&i| state.prio[i].seq)
                    {
                        if let Some(victim) = state.prio.remove(stalest) {
                            state.charge_drop(victim.publisher);
                        }
                    }
                }
            }
        }
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        state.prio.push_back(QueuedObs {
            seq,
            pid,
            publisher,
            payload,
        });
        state.priority_queued += 1;
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Evicts one normal-lane entry to make room. The naive victim is the
    /// front (`DropOldest`) or the minimum-stamp entry (`Coalesce`'s
    /// fallback, `stalest`); with fair queueing the eviction is instead
    /// charged to `pusher` itself once it holds its fair share, and
    /// otherwise to the heaviest backlog holder — redirections away from
    /// the naive victim's publisher are counted as deflected.
    fn evict_normal(&self, state: &mut RingState<P>, pusher: u32, stalest: bool) {
        let naive = if stalest {
            (0..state.buf.len()).min_by_key(|&i| state.buf[i].seq)
        } else if state.buf.is_empty() {
            None
        } else {
            Some(0)
        };
        let Some(naive) = naive else { return };
        let mut idx = naive;
        if self.defense.fair_queueing {
            let victim_pub = if state.occ(pusher) >= self.fair_share() {
                pusher
            } else {
                // The heaviest normal-lane backlog holder pays; ties go
                // to the lowest id, deterministically.
                let mut heaviest = state.buf[naive].publisher;
                let mut max_occ = 0;
                for p in 0..state.occupancy.len() as u32 {
                    if state.occ(p) > max_occ {
                        heaviest = p;
                        max_occ = state.occ(p);
                    }
                }
                heaviest
            };
            let owned = if stalest {
                (0..state.buf.len())
                    .filter(|&i| state.buf[i].publisher == victim_pub)
                    .min_by_key(|&i| state.buf[i].seq)
            } else {
                (0..state.buf.len()).find(|&i| state.buf[i].publisher == victim_pub)
            };
            if let Some(i) = owned {
                if state.buf[naive].publisher != victim_pub {
                    state.evictions_deflected += 1;
                }
                idx = i;
            }
        }
        if let Some(victim) = state.buf.remove(idx) {
            if self.defense.fair_queueing {
                state.occ_dec(victim.publisher);
            }
            state.charge_drop(victim.publisher);
        }
    }

    /// Empties shard `shard`'s ring into `work`/`seqs` (appending, aligned
    /// index-for-index; priority lane first) and wakes any publishers
    /// blocked on it.
    pub(crate) fn drain_shard_into(
        &self,
        shard: usize,
        work: &mut Vec<(ProcessId, P)>,
        seqs: &mut Vec<u64>,
    ) {
        let ring = &self.rings[shard];
        let mut state = ring.state.lock().expect("ingest ring poisoned");
        let n = state.prio.len() + state.buf.len();
        work.reserve(n);
        seqs.reserve(n);
        for obs in state.prio.drain(..) {
            work.push((obs.pid, obs.payload));
            seqs.push(obs.seq);
        }
        for obs in state.buf.drain(..) {
            work.push((obs.pid, obs.payload));
            seqs.push(obs.seq);
        }
        state.occupancy.clear();
        drop(state);
        if n > 0 {
            self.drained.fetch_add(n as u64, Ordering::Relaxed);
        }
        ring.space.notify_all();
    }

    /// Marks the queue set closed and wakes every blocked publisher.
    /// Publishes after this return `false` and discard the observation.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for ring in &self.rings {
            // Acquiring the lock orders the store before any waiter's
            // re-check; without it a publisher could re-sleep forever.
            drop(ring.state.lock().expect("ingest ring poisoned"));
            ring.space.notify_all();
        }
    }

    /// Whether the owning engine has closed (or replaced) this queue set.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// A consistent-enough snapshot of the ingest counters. Per-ring
    /// counters are read one lock at a time, so concurrent publishes can
    /// skew sums by in-flight observations — fine for telemetry, which is
    /// what this is for.
    pub fn stats(&self) -> IngestStats {
        let mut stats = IngestStats {
            published: self.published.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            ..IngestStats::default()
        };
        for ring in &self.rings {
            let state = ring.state.lock().expect("ingest ring poisoned");
            stats.dropped += state.dropped;
            stats.coalesced += state.coalesced;
            stats.queued += state.buf.len() + state.prio.len();
            stats.priority_queued += state.priority_queued;
            stats.evictions_deflected += state.evictions_deflected;
            if stats.dropped_by_publisher.len() < state.dropped_by_pub.len() {
                stats
                    .dropped_by_publisher
                    .resize(state.dropped_by_pub.len(), 0);
            }
            for (acc, n) in stats
                .dropped_by_publisher
                .iter_mut()
                .zip(&state.dropped_by_pub)
            {
                *acc += n;
            }
        }
        stats
    }
}

/// A cloneable, `Send + Sync` handle detector threads use to publish
/// observations into an engine's ingest rings — binary
/// [`Classification`]s by default, [`Verdict`]s
/// on the fusion path (each ensemble member clones its own publisher and
/// publishes at its own cadence).
///
/// Routing is by pid hash (identical to the batch path's shard placement),
/// so concurrent publishers only contend when their pids share a shard.
/// Obtain one from
/// [`ShardedEngine::enable_ingest`](crate::ShardedEngine::enable_ingest)
/// or [`ShardedEngine::publisher`](crate::ShardedEngine::publisher).
#[derive(Debug)]
pub struct IngestPublisher<P = Classification> {
    queues: Arc<IngestQueues<P>>,
    /// This handle's fair-queueing identity. Every clone registers a
    /// fresh id, so each detector thread (or tenant) holding its own
    /// handle is its own accounting unit.
    id: u32,
}

impl<P> Clone for IngestPublisher<P> {
    fn clone(&self) -> Self {
        Self {
            id: self.queues.register_publisher(),
            queues: Arc::clone(&self.queues),
        }
    }
}

impl<P: CoalesceKey> IngestPublisher<P> {
    pub(crate) fn new(queues: Arc<IngestQueues<P>>) -> Self {
        Self {
            id: queues.register_publisher(),
            queues,
        }
    }

    /// This handle's publisher id (indexes
    /// [`IngestStats::dropped_by_publisher`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Publishes one observation for `pid`. With
    /// [`OverflowPolicy::Block`] this waits while the owning shard's ring
    /// is full. Returns `false` — and discards the observation — only when
    /// the engine has closed or replaced its ingest queues.
    pub fn publish(&self, pid: ProcessId, payload: P) -> bool {
        let shard = crate::hash::shard_of(pid.0, self.queues.shards());
        self.queues.push(self.id, shard, pid, payload)
    }

    /// Publishes a batch in order. Returns how many observations were
    /// accepted (all of them unless the queues were closed mid-batch).
    pub fn publish_batch(&self, batch: &[(ProcessId, P)]) -> usize {
        let mut accepted = 0;
        for &(pid, payload) in batch {
            if self.publish(pid, payload) {
                accepted += 1;
            }
        }
        accepted
    }

    /// The current ingest counters (shared with the engine's
    /// [`ingest_stats`](crate::ShardedEngine::ingest_stats)).
    pub fn stats(&self) -> IngestStats {
        self.queues.stats()
    }

    /// Whether the engine has closed these queues (publishes are no-ops).
    pub fn is_closed(&self) -> bool {
        self.queues.is_closed()
    }
}

/// Merges per-shard drained responses back into publish order: `seqs[s]`
/// stamps `results[s]` index-for-index, sequence numbers are globally
/// unique, and within a shard they ascend in application order — so the
/// sort reconstructs one valid global serialization (for a single
/// publisher: exactly its publish order).
pub(crate) fn merge_by_seq(
    seqs: &[Vec<u64>],
    results: Vec<Vec<crate::engine::EngineResponse>>,
) -> Vec<crate::engine::EngineResponse> {
    let total = seqs.iter().map(Vec::len).sum();
    let mut stamped: Vec<(u64, crate::engine::EngineResponse)> = Vec::with_capacity(total);
    for (shard_seqs, shard_responses) in seqs.iter().zip(results) {
        debug_assert_eq!(shard_seqs.len(), shard_responses.len());
        stamped.extend(shard_seqs.iter().copied().zip(shard_responses));
    }
    stamped.sort_unstable_by_key(|&(seq, _)| seq);
    stamped.into_iter().map(|(_, response)| response).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn drain_all(queues: &IngestQueues) -> Vec<(u64, ProcessId, Classification)> {
        let mut out = Vec::new();
        for shard in 0..queues.shards() {
            let mut work = Vec::new();
            let mut seqs = Vec::new();
            queues.drain_shard_into(shard, &mut work, &mut seqs);
            out.extend(
                seqs.into_iter()
                    .zip(work)
                    .map(|(seq, (pid, cls))| (seq, pid, cls)),
            );
        }
        out.sort_unstable_by_key(|&(seq, _, _)| seq);
        out
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_is_rejected() {
        let _ = IngestQueues::<Classification>::new(4, 0, OverflowPolicy::Block);
    }

    #[test]
    fn publish_then_drain_round_trips_in_order() {
        let queues = IngestQueues::new(4, 16, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        let batch: Vec<(ProcessId, Classification)> = (0..10)
            .map(|i| (ProcessId(i), if i % 2 == 0 { Malicious } else { Benign }))
            .collect();
        assert_eq!(publisher.publish_batch(&batch), 10);
        let drained = drain_all(&queues);
        let got: Vec<(ProcessId, Classification)> = drained
            .into_iter()
            .map(|(_, pid, cls)| (pid, cls))
            .collect();
        assert_eq!(got, batch, "seq order must reconstruct publish order");
        let stats = queues.stats();
        assert_eq!(stats.published, 10);
        assert_eq!(stats.drained, 10);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.queued, 0);
    }

    /// `DropOldest` under a full ring: the oldest observation goes, the
    /// newest survives, and the loss is counted.
    #[test]
    fn drop_oldest_evicts_the_front_and_counts_it() {
        // One shard so every pid shares the ring.
        let queues = IngestQueues::new(1, 3, OverflowPolicy::DropOldest);
        let publisher = IngestPublisher::new(queues.clone());
        for pid in 0..5u64 {
            assert!(publisher.publish(ProcessId(pid), Malicious));
        }
        let stats = queues.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.queued, 3);
        let drained = drain_all(&queues);
        let pids: Vec<u64> = drained.iter().map(|&(_, pid, _)| pid.0).collect();
        assert_eq!(pids, vec![2, 3, 4], "oldest two were evicted");
    }

    /// `Coalesce` under a full ring keeps exactly the newest verdict per
    /// pid: a same-pid publish overwrites in place, a fresh pid falls back
    /// to evicting the oldest entry.
    #[test]
    fn coalesce_keeps_the_newest_verdict_per_pid() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Coalesce);
        let publisher = IngestPublisher::new(queues.clone());
        assert!(publisher.publish(ProcessId(1), Malicious));
        assert!(publisher.publish(ProcessId(2), Malicious));
        // Ring full: same-pid publish coalesces (newer verdict wins) and
        // drops nothing.
        assert!(publisher.publish(ProcessId(1), Benign));
        let stats = queues.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.queued, 2);
        // Ring still full: a fresh pid evicts the oldest entry instead.
        assert!(publisher.publish(ProcessId(3), Malicious));
        let stats = queues.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.queued, 2);

        let drained = drain_all(&queues);
        let got: Vec<(u64, Classification)> =
            drained.iter().map(|&(_, pid, cls)| (pid.0, cls)).collect();
        // Pid 1 kept exactly one entry, holding the newest verdict; pid 2
        // (the oldest) was evicted for pid 3.
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(1, Benign)));
        assert!(got.contains(&(3, Malicious)));
    }

    /// Coalescing stamps the overwritten slot with the newer sequence
    /// number, so a merged drain reports the entry at its newest publish
    /// position.
    #[test]
    fn coalesce_takes_the_newer_sequence_stamp() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Coalesce);
        let publisher = IngestPublisher::new(queues.clone());
        publisher.publish(ProcessId(1), Malicious); // seq 0
        publisher.publish(ProcessId(2), Malicious); // seq 1
        publisher.publish(ProcessId(1), Benign); // coalesced, seq 2
        let drained = drain_all(&queues);
        assert_eq!(drained.len(), 2);
        // Sorted by seq: pid 2 (seq 1) now precedes pid 1 (restamped 2).
        assert_eq!(drained[0].1, ProcessId(2));
        assert_eq!(drained[1].1, ProcessId(1));
        assert_eq!(drained[1].2, Benign);
    }

    #[test]
    fn blocked_publisher_resumes_after_a_drain() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        publisher.publish(ProcessId(1), Malicious);
        publisher.publish(ProcessId(2), Malicious);
        // A third publish must block until the drain below frees space.
        let blocked = {
            let publisher = publisher.clone();
            std::thread::spawn(move || publisher.publish(ProcessId(3), Malicious))
        };
        // Parking on the condvar is not observable from outside; give the
        // publisher a real window to reach the wait so the drain below
        // exercises the wakeup path (the test is correct either way — the
        // drain loop keeps going until the third observation lands).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut work = Vec::new();
        let mut seqs = Vec::new();
        // Drain until the blocked observation lands (the drain that frees
        // the space races the wakeup, so one drain may see only the first
        // two entries).
        let mut drained = 0;
        while drained < 3 {
            queues.drain_shard_into(0, &mut work, &mut seqs);
            drained = work.len();
            std::thread::yield_now();
        }
        assert!(blocked.join().unwrap());
        assert_eq!(queues.stats().dropped, 0, "Block never loses data");
    }

    #[test]
    fn close_wakes_blocked_publishers_and_rejects_new_ones() {
        let queues = IngestQueues::new(1, 1, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        assert!(publisher.publish(ProcessId(1), Malicious));
        let blocked = {
            let publisher = publisher.clone();
            std::thread::spawn(move || publisher.publish(ProcessId(2), Malicious))
        };
        // Give the publisher a real window to park on the condvar, so the
        // close below exercises the wakeup (not just the early-return)
        // path; either way the publish must come back `false`.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queues.close();
        assert!(!blocked.join().unwrap(), "closed queues reject publishes");
        assert!(!publisher.publish(ProcessId(3), Malicious));
        assert!(publisher.is_closed());
        assert_eq!(queues.stats().queued, 1, "already-queued data survives");
    }

    /// Regression (PR 9): a publish against a closed queue must be
    /// rejected *before* overflow handling runs — previously `DropOldest`
    /// / `Coalesce` would evict a queued observation on behalf of a
    /// publish that was about to be discarded anyway.
    #[test]
    fn closed_queue_publish_never_evicts_queued_data() {
        for policy in [OverflowPolicy::DropOldest, OverflowPolicy::Coalesce] {
            let queues = IngestQueues::new(1, 1, policy);
            let publisher = IngestPublisher::new(queues.clone());
            assert!(publisher.publish(ProcessId(1), Malicious));
            queues.close();
            assert!(!publisher.publish(ProcessId(2), Benign));
            let stats = queues.stats();
            assert_eq!(stats.dropped, 0, "{policy:?}: closed publish evicted");
            assert_eq!(stats.queued, 1, "{policy:?}: queued data destroyed");
            let drained = drain_all(&queues);
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].1, ProcessId(1));
            assert_eq!(drained[0].2, Malicious);
        }
    }

    /// Regression (PR 9): verdict coalescing keys by (pid, detector) — a
    /// fast member's verdict must merge with its *own* queued verdict, not
    /// overwrite a different detector's entry for the same pid.
    #[test]
    fn verdict_coalesce_keys_by_pid_and_detector() {
        let queues = IngestQueues::<Verdict>::new(1, 2, OverflowPolicy::Coalesce);
        let member_a = IngestPublisher::new(queues.clone());
        let member_b = member_a.clone();
        let pid = ProcessId(7);
        assert!(member_a.publish(pid, Verdict::new(0, 0.2)));
        assert!(member_b.publish(pid, Verdict::new(1, 0.9)));
        // Ring full; detector 0 publishes again for the same pid. It must
        // coalesce with the detector-0 entry and leave detector 1 queued.
        assert!(member_a.publish(pid, Verdict::new(0, 0.8)));
        let stats = queues.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.dropped, 0, "detector 1's verdict was destroyed");

        let mut work = Vec::new();
        let mut seqs = Vec::new();
        queues.drain_shard_into(0, &mut work, &mut seqs);
        let mut got: Vec<(u32, f64)> = work
            .iter()
            .map(|&(_, v)| (v.detector, v.confidence))
            .collect();
        got.sort_by_key(|a| a.0);
        assert_eq!(got, vec![(0, 0.8), (1, 0.9)]);
    }

    /// Fair queueing charges overflow to the hog: a publisher past its
    /// fair share evicts its own backlog, and the redirect away from the
    /// naive (front-of-ring) victim is counted.
    #[test]
    fn fair_queueing_makes_the_flooding_publisher_pay() {
        let defense = IngestDefense {
            priority_lane: false,
            fair_queueing: true,
        };
        let queues = IngestQueues::with_defense(
            1,
            4,
            OverflowPolicy::DropOldest,
            defense,
            ThreatHints::new(),
        );
        let legit = IngestPublisher::new(queues.clone());
        let flooder = legit.clone();
        // Two handles share the ring: fair share = 4 / 2 = 2 entries.
        assert!(legit.publish(ProcessId(1), Malicious));
        assert!(legit.publish(ProcessId(2), Malicious));
        assert!(flooder.publish(ProcessId(3), Benign));
        assert!(flooder.publish(ProcessId(4), Benign));
        // Ring full. Without the defense this would evict pid 1 (the
        // front, legit's oldest). With fair queueing the flooder is at its
        // share, so it evicts its own oldest instead.
        assert!(flooder.publish(ProcessId(5), Benign));
        let stats = queues.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.evictions_deflected, 1);
        assert_eq!(
            stats.dropped_by_publisher.get(flooder.id() as usize),
            Some(&1),
            "the eviction is charged to the flooder"
        );
        let drained = drain_all(&queues);
        let pids: Vec<u64> = drained.iter().map(|&(_, pid, _)| pid.0).collect();
        assert_eq!(pids, vec![1, 2, 4, 5], "legit's backlog survived intact");
    }

    /// The priority lane shields hint-marked pids: a normal-lane flood
    /// can evict everything in its own lane but never touches the
    /// suspicious pid's queued verdicts, and they drain first.
    #[test]
    fn priority_lane_is_immune_to_normal_lane_overflow() {
        let hints = ThreatHints::new();
        let defense = IngestDefense {
            priority_lane: true,
            fair_queueing: false,
        };
        let queues = IngestQueues::with_defense(
            1,
            2,
            OverflowPolicy::DropOldest,
            defense,
            Arc::clone(&hints),
        );
        let publisher = IngestPublisher::new(queues.clone());
        let suspect = ProcessId(7);
        assert!(hints.mark(suspect));
        assert!(publisher.publish(suspect, Malicious));
        // Flood the normal lane far past capacity.
        for pid in 100..110u64 {
            assert!(publisher.publish(ProcessId(pid), Benign));
        }
        let stats = queues.stats();
        assert_eq!(stats.priority_queued, 1);
        assert_eq!(stats.dropped, 8, "flood evicted only normal-lane entries");
        assert_eq!(stats.queued, 3);

        let mut work = Vec::new();
        let mut seqs = Vec::new();
        queues.drain_shard_into(0, &mut work, &mut seqs);
        assert_eq!(work[0].0, suspect, "priority lane drains first");
        assert!(work.iter().filter(|&&(pid, _)| pid == suspect).count() == 1);

        // Cleared pids fall back to the normal lane.
        assert!(hints.clear(suspect));
        assert!(!hints.is_hot(suspect));
        assert!(publisher.publish(suspect, Malicious));
        assert_eq!(queues.stats().priority_queued, 1, "no longer prioritized");
    }

    #[test]
    fn threat_hints_update_marks_and_clears_in_one_pass() {
        let hints = ThreatHints::new();
        hints.update([
            (ProcessId(1), true),
            (ProcessId(2), true),
            (ProcessId(1), false),
        ]);
        assert!(!hints.is_hot(ProcessId(1)));
        assert!(hints.is_hot(ProcessId(2)));
        assert_eq!(hints.len(), 1);
        assert!(!hints.is_empty());
    }

    #[test]
    fn concurrent_publishers_deliver_everything() {
        let queues = IngestQueues::new(4, 4096, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let publisher = publisher.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        assert!(publisher.publish(ProcessId(t * 1000 + i), Benign));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let drained = drain_all(&queues);
        assert_eq!(drained.len(), 4 * 256);
        // Sequence stamps are unique.
        let mut seqs: Vec<u64> = drained.iter().map(|&(seq, _, _)| seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 4 * 256);
    }
}
