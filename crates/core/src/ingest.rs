//! Async detector ingest: bounded per-shard observation queues that
//! decouple detector inference latency from the response tick.
//!
//! The paper's `N*` accounting assumes one observation per process per
//! epoch, but a real detector ensemble (LSTM members, remote scoring
//! services) can take longer than an epoch to produce a verdict — and an
//! epoch driver that calls the detector *synchronously* stalls with it.
//! This module makes the monitor-to-responder handoff a first-class,
//! bounded subsystem: detector threads publish classifications through an
//! [`IngestPublisher`] whenever they finish, and the epoch driver calls
//! [`ShardedEngine::drain_tick`](crate::ShardedEngine::drain_tick) on its
//! own schedule, consuming whatever has arrived. A slow — or wedged —
//! detector can no longer hold the response tier's tick hostage.
//!
//! # Architecture
//!
//! One bounded MPSC ring per engine shard ([`IngestQueues`] owns them all).
//! Publishing routes each observation to the ring of the shard that owns
//! its pid (the same [`mix64`](crate::hash::mix64)-based placement the
//! batch path uses), so draining a shard's ring never crosses shard
//! boundaries: in pool mode every worker drains its own shards in place,
//! with no cross-thread batch scatter.
//!
//! Each accepted observation is stamped with a global sequence number,
//! allocated under the destination ring's lock. Within a ring, sequence
//! numbers are strictly increasing in application order, so a drain can
//! merge the per-shard response lists back into one publish-ordered
//! response batch — which is what makes Block-mode ingest **bit-for-bit
//! equivalent** to the synchronous
//! [`observe_batch`](crate::ShardedEngine::observe_batch) path (pinned by
//! the property tests in `tests/ingest.rs`).
//!
//! # Overflow policies
//!
//! The rings are bounded (`capacity` observations **per shard**) and
//! [`OverflowPolicy`] decides what happens when a publish finds its ring
//! full:
//!
//! * [`OverflowPolicy::Block`] — the publisher waits for the driver's next
//!   drain. Lossless; gives end-to-end backpressure to the detector tier.
//! * [`OverflowPolicy::DropOldest`] — the oldest queued observation is
//!   evicted. The freshest verdicts win; staleness is bounded by the ring
//!   capacity.
//! * [`OverflowPolicy::Coalesce`] — if the full ring already holds an
//!   observation for the same pid, it is overwritten in place with the
//!   newer classification (cyclic monitoring consumes one verdict per
//!   process per epoch, so only the newest matters); otherwise the oldest
//!   entry is evicted as in `DropOldest`.
//!
//! Every lost observation is counted and exposed through
//! [`IngestStats`] — overload is visible, never silent.
//!
//! # Examples
//!
//! ```
//! use valkyrie_core::prelude::*;
//! use std::thread;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(3)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut engine = ShardedEngine::new(config, 4);
//! let publisher = engine.enable_ingest(1024, OverflowPolicy::Block);
//!
//! // A detector thread publishes verdicts at its own pace...
//! let detector = thread::spawn(move || {
//!     for _ in 0..4 {
//!         publisher.publish(ProcessId(7), Classification::Malicious);
//!     }
//! });
//! detector.join().unwrap();
//!
//! // ...and the epoch driver drains whatever has arrived, on schedule.
//! let responses = engine.drain_tick();
//! assert_eq!(responses.len(), 4);
//! assert_eq!(engine.epoch(), 1);
//! ```

use crate::resource::ProcessId;
use crate::telemetry::IngestStats;
use crate::threat::Classification;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What a full per-shard ring does with the next published observation.
/// See the [module docs](self) for when each policy fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Publishers wait for the next drain: lossless, with backpressure on
    /// the detector tier. The default. (A driver that publishes into its
    /// own engine from the drain thread must size the rings for a full
    /// tick, or it will wait for a drain that can never come.)
    #[default]
    Block,
    /// Evict the oldest queued observation; the freshest verdicts survive.
    DropOldest,
    /// Overwrite the queued observation of the *same pid* with the newer
    /// classification (cyclic monitoring's semantics: one verdict per
    /// process per epoch, newest wins); evict the stalest-stamped entry
    /// when the pid has none queued. A publish into a *full* ring scans it
    /// (O(capacity), under the ring lock) to find the merge target or the
    /// eviction victim — size the rings so overflow is the exception, not
    /// the steady state, and let [`IngestStats::coalesced`] tell you when
    /// it isn't.
    Coalesce,
}

/// One queued observation: the publish-order stamp plus the payload.
#[derive(Debug, Clone, Copy)]
struct QueuedObs<P> {
    seq: u64,
    pid: ProcessId,
    payload: P,
}

/// The lock-protected interior of one shard's ring.
#[derive(Debug)]
struct RingState<P> {
    buf: VecDeque<QueuedObs<P>>,
    /// Observations evicted by `DropOldest` (or `Coalesce`'s fallback).
    dropped: u64,
    /// Observations merged into an existing same-pid entry by `Coalesce`.
    coalesced: u64,
}

impl<P> Default for RingState<P> {
    fn default() -> Self {
        Self {
            buf: VecDeque::new(),
            dropped: 0,
            coalesced: 0,
        }
    }
}

/// One shard's bounded ring: a mutex-backed `VecDeque` plus the condvar
/// `Block`-mode publishers wait on.
#[derive(Debug)]
struct ShardRing<P> {
    state: Mutex<RingState<P>>,
    space: Condvar,
}

impl<P> Default for ShardRing<P> {
    fn default() -> Self {
        Self {
            state: Mutex::new(RingState::default()),
            space: Condvar::new(),
        }
    }
}

/// All of one engine's ingest rings: one bounded MPSC ring per shard,
/// shared (via `Arc`) between the engine, its pool workers and every
/// [`IngestPublisher`] clone.
///
/// Generic over the queued payload: the PR 5 binary path queues
/// [`Classification`]s (the default), the fusion path queues
/// [`Verdict`](crate::threat::Verdict)s — same rings, same overflow
/// policies, same sequence-stamp merge discipline.
///
/// Constructed by
/// [`ShardedEngine::enable_ingest`](crate::ShardedEngine::enable_ingest);
/// embedders interact with it through the publisher and the engine's
/// drain methods.
#[derive(Debug)]
pub struct IngestQueues<P = Classification> {
    rings: Vec<ShardRing<P>>,
    capacity: usize,
    policy: OverflowPolicy,
    /// Global publish-order stamp. Allocated under the destination ring's
    /// lock so per-ring sequences are strictly increasing in application
    /// order (the property the drain merge relies on).
    seq: AtomicU64,
    published: AtomicU64,
    drained: AtomicU64,
    /// Set when the owning engine replaces or drops the queue set; wakes
    /// blocked publishers so no detector thread outlives its engine
    /// wedged on a condvar.
    closed: AtomicBool,
}

impl<P: Copy> IngestQueues<P> {
    /// One ring per shard, each bounded to `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `nshards` or `capacity` is zero.
    pub(crate) fn new(nshards: usize, capacity: usize, policy: OverflowPolicy) -> Arc<Self> {
        assert!(nshards > 0, "ingest needs at least one shard");
        assert!(capacity > 0, "ingest rings need a non-zero capacity");
        Arc::new(Self {
            rings: (0..nshards).map(|_| ShardRing::default()).collect(),
            capacity,
            policy,
            seq: AtomicU64::new(0),
            published: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// Ring capacity, in observations **per shard**.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Number of per-shard rings.
    pub(crate) fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Publishes one observation to shard `shard`'s ring, applying the
    /// overflow policy if the ring is full. Returns `false` (observation
    /// discarded) only when the queue set has been closed.
    pub(crate) fn push(&self, shard: usize, pid: ProcessId, payload: P) -> bool {
        let ring = &self.rings[shard];
        let mut state = ring.state.lock().expect("ingest ring poisoned");
        if state.buf.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::Block => {
                    while state.buf.len() >= self.capacity && !self.closed.load(Ordering::Acquire) {
                        state = ring.space.wait(state).expect("ingest ring poisoned");
                    }
                }
                OverflowPolicy::DropOldest => {
                    state.buf.pop_front();
                    state.dropped += 1;
                }
                OverflowPolicy::Coalesce => {
                    if let Some(slot) = state.buf.iter_mut().rev().find(|o| o.pid == pid) {
                        // Same pid already queued: keep its queue position,
                        // take the newer verdict and publish-order stamp.
                        slot.seq = self.seq.fetch_add(1, Ordering::Relaxed);
                        slot.payload = payload;
                        state.coalesced += 1;
                        self.published.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    // No entry to merge into: evict the stalest *verdict*
                    // (minimum stamp — coalescing restamps entries in
                    // place, so the front of the ring is not necessarily
                    // the oldest observation).
                    if let Some(stalest) = (0..state.buf.len()).min_by_key(|&i| state.buf[i].seq) {
                        state.buf.remove(stalest);
                        state.dropped += 1;
                    }
                }
            }
        }
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        state.buf.push_back(QueuedObs { seq, pid, payload });
        self.published.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Empties shard `shard`'s ring into `work`/`seqs` (appending, aligned
    /// index-for-index) and wakes any publishers blocked on it.
    pub(crate) fn drain_shard_into(
        &self,
        shard: usize,
        work: &mut Vec<(ProcessId, P)>,
        seqs: &mut Vec<u64>,
    ) {
        let ring = &self.rings[shard];
        let mut state = ring.state.lock().expect("ingest ring poisoned");
        let n = state.buf.len();
        work.reserve(n);
        seqs.reserve(n);
        for obs in state.buf.drain(..) {
            work.push((obs.pid, obs.payload));
            seqs.push(obs.seq);
        }
        drop(state);
        if n > 0 {
            self.drained.fetch_add(n as u64, Ordering::Relaxed);
        }
        ring.space.notify_all();
    }

    /// Marks the queue set closed and wakes every blocked publisher.
    /// Publishes after this return `false` and discard the observation.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for ring in &self.rings {
            // Acquiring the lock orders the store before any waiter's
            // re-check; without it a publisher could re-sleep forever.
            drop(ring.state.lock().expect("ingest ring poisoned"));
            ring.space.notify_all();
        }
    }

    /// Whether the owning engine has closed (or replaced) this queue set.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// A consistent-enough snapshot of the ingest counters. Per-ring
    /// counters are read one lock at a time, so concurrent publishes can
    /// skew sums by in-flight observations — fine for telemetry, which is
    /// what this is for.
    pub fn stats(&self) -> IngestStats {
        let mut dropped = 0;
        let mut coalesced = 0;
        let mut queued = 0;
        for ring in &self.rings {
            let state = ring.state.lock().expect("ingest ring poisoned");
            dropped += state.dropped;
            coalesced += state.coalesced;
            queued += state.buf.len();
        }
        IngestStats {
            published: self.published.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            dropped,
            coalesced,
            queued,
        }
    }
}

/// A cloneable, `Send + Sync` handle detector threads use to publish
/// observations into an engine's ingest rings — binary
/// [`Classification`]s by default, [`Verdict`](crate::threat::Verdict)s
/// on the fusion path (each ensemble member clones its own publisher and
/// publishes at its own cadence).
///
/// Routing is by pid hash (identical to the batch path's shard placement),
/// so concurrent publishers only contend when their pids share a shard.
/// Obtain one from
/// [`ShardedEngine::enable_ingest`](crate::ShardedEngine::enable_ingest)
/// or [`ShardedEngine::publisher`](crate::ShardedEngine::publisher).
#[derive(Debug)]
pub struct IngestPublisher<P = Classification> {
    queues: Arc<IngestQueues<P>>,
}

impl<P> Clone for IngestPublisher<P> {
    fn clone(&self) -> Self {
        Self {
            queues: Arc::clone(&self.queues),
        }
    }
}

impl<P: Copy> IngestPublisher<P> {
    pub(crate) fn new(queues: Arc<IngestQueues<P>>) -> Self {
        Self { queues }
    }

    /// Publishes one observation for `pid`. With
    /// [`OverflowPolicy::Block`] this waits while the owning shard's ring
    /// is full. Returns `false` — and discards the observation — only when
    /// the engine has closed or replaced its ingest queues.
    pub fn publish(&self, pid: ProcessId, payload: P) -> bool {
        let shard = crate::hash::shard_of(pid.0, self.queues.shards());
        self.queues.push(shard, pid, payload)
    }

    /// Publishes a batch in order. Returns how many observations were
    /// accepted (all of them unless the queues were closed mid-batch).
    pub fn publish_batch(&self, batch: &[(ProcessId, P)]) -> usize {
        let mut accepted = 0;
        for &(pid, payload) in batch {
            if self.publish(pid, payload) {
                accepted += 1;
            }
        }
        accepted
    }

    /// The current ingest counters (shared with the engine's
    /// [`ingest_stats`](crate::ShardedEngine::ingest_stats)).
    pub fn stats(&self) -> IngestStats {
        self.queues.stats()
    }

    /// Whether the engine has closed these queues (publishes are no-ops).
    pub fn is_closed(&self) -> bool {
        self.queues.is_closed()
    }
}

/// Merges per-shard drained responses back into publish order: `seqs[s]`
/// stamps `results[s]` index-for-index, sequence numbers are globally
/// unique, and within a shard they ascend in application order — so the
/// sort reconstructs one valid global serialization (for a single
/// publisher: exactly its publish order).
pub(crate) fn merge_by_seq(
    seqs: &[Vec<u64>],
    results: Vec<Vec<crate::engine::EngineResponse>>,
) -> Vec<crate::engine::EngineResponse> {
    let total = seqs.iter().map(Vec::len).sum();
    let mut stamped: Vec<(u64, crate::engine::EngineResponse)> = Vec::with_capacity(total);
    for (shard_seqs, shard_responses) in seqs.iter().zip(results) {
        debug_assert_eq!(shard_seqs.len(), shard_responses.len());
        stamped.extend(shard_seqs.iter().copied().zip(shard_responses));
    }
    stamped.sort_unstable_by_key(|&(seq, _)| seq);
    stamped.into_iter().map(|(_, response)| response).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Classification::{Benign, Malicious};

    fn drain_all(queues: &IngestQueues) -> Vec<(u64, ProcessId, Classification)> {
        let mut out = Vec::new();
        for shard in 0..queues.shards() {
            let mut work = Vec::new();
            let mut seqs = Vec::new();
            queues.drain_shard_into(shard, &mut work, &mut seqs);
            out.extend(
                seqs.into_iter()
                    .zip(work)
                    .map(|(seq, (pid, cls))| (seq, pid, cls)),
            );
        }
        out.sort_unstable_by_key(|&(seq, _, _)| seq);
        out
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_is_rejected() {
        let _ = IngestQueues::<Classification>::new(4, 0, OverflowPolicy::Block);
    }

    #[test]
    fn publish_then_drain_round_trips_in_order() {
        let queues = IngestQueues::new(4, 16, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        let batch: Vec<(ProcessId, Classification)> = (0..10)
            .map(|i| (ProcessId(i), if i % 2 == 0 { Malicious } else { Benign }))
            .collect();
        assert_eq!(publisher.publish_batch(&batch), 10);
        let drained = drain_all(&queues);
        let got: Vec<(ProcessId, Classification)> = drained
            .into_iter()
            .map(|(_, pid, cls)| (pid, cls))
            .collect();
        assert_eq!(got, batch, "seq order must reconstruct publish order");
        let stats = queues.stats();
        assert_eq!(stats.published, 10);
        assert_eq!(stats.drained, 10);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.queued, 0);
    }

    /// `DropOldest` under a full ring: the oldest observation goes, the
    /// newest survives, and the loss is counted.
    #[test]
    fn drop_oldest_evicts_the_front_and_counts_it() {
        // One shard so every pid shares the ring.
        let queues = IngestQueues::new(1, 3, OverflowPolicy::DropOldest);
        let publisher = IngestPublisher::new(queues.clone());
        for pid in 0..5u64 {
            assert!(publisher.publish(ProcessId(pid), Malicious));
        }
        let stats = queues.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.queued, 3);
        let drained = drain_all(&queues);
        let pids: Vec<u64> = drained.iter().map(|&(_, pid, _)| pid.0).collect();
        assert_eq!(pids, vec![2, 3, 4], "oldest two were evicted");
    }

    /// `Coalesce` under a full ring keeps exactly the newest verdict per
    /// pid: a same-pid publish overwrites in place, a fresh pid falls back
    /// to evicting the oldest entry.
    #[test]
    fn coalesce_keeps_the_newest_verdict_per_pid() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Coalesce);
        let publisher = IngestPublisher::new(queues.clone());
        assert!(publisher.publish(ProcessId(1), Malicious));
        assert!(publisher.publish(ProcessId(2), Malicious));
        // Ring full: same-pid publish coalesces (newer verdict wins) and
        // drops nothing.
        assert!(publisher.publish(ProcessId(1), Benign));
        let stats = queues.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.queued, 2);
        // Ring still full: a fresh pid evicts the oldest entry instead.
        assert!(publisher.publish(ProcessId(3), Malicious));
        let stats = queues.stats();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.queued, 2);

        let drained = drain_all(&queues);
        let got: Vec<(u64, Classification)> =
            drained.iter().map(|&(_, pid, cls)| (pid.0, cls)).collect();
        // Pid 1 kept exactly one entry, holding the newest verdict; pid 2
        // (the oldest) was evicted for pid 3.
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(1, Benign)));
        assert!(got.contains(&(3, Malicious)));
    }

    /// Coalescing stamps the overwritten slot with the newer sequence
    /// number, so a merged drain reports the entry at its newest publish
    /// position.
    #[test]
    fn coalesce_takes_the_newer_sequence_stamp() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Coalesce);
        let publisher = IngestPublisher::new(queues.clone());
        publisher.publish(ProcessId(1), Malicious); // seq 0
        publisher.publish(ProcessId(2), Malicious); // seq 1
        publisher.publish(ProcessId(1), Benign); // coalesced, seq 2
        let drained = drain_all(&queues);
        assert_eq!(drained.len(), 2);
        // Sorted by seq: pid 2 (seq 1) now precedes pid 1 (restamped 2).
        assert_eq!(drained[0].1, ProcessId(2));
        assert_eq!(drained[1].1, ProcessId(1));
        assert_eq!(drained[1].2, Benign);
    }

    #[test]
    fn blocked_publisher_resumes_after_a_drain() {
        let queues = IngestQueues::new(1, 2, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        publisher.publish(ProcessId(1), Malicious);
        publisher.publish(ProcessId(2), Malicious);
        // A third publish must block until the drain below frees space.
        let blocked = {
            let publisher = publisher.clone();
            std::thread::spawn(move || publisher.publish(ProcessId(3), Malicious))
        };
        // Parking on the condvar is not observable from outside; give the
        // publisher a real window to reach the wait so the drain below
        // exercises the wakeup path (the test is correct either way — the
        // drain loop keeps going until the third observation lands).
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut work = Vec::new();
        let mut seqs = Vec::new();
        // Drain until the blocked observation lands (the drain that frees
        // the space races the wakeup, so one drain may see only the first
        // two entries).
        let mut drained = 0;
        while drained < 3 {
            queues.drain_shard_into(0, &mut work, &mut seqs);
            drained = work.len();
            std::thread::yield_now();
        }
        assert!(blocked.join().unwrap());
        assert_eq!(queues.stats().dropped, 0, "Block never loses data");
    }

    #[test]
    fn close_wakes_blocked_publishers_and_rejects_new_ones() {
        let queues = IngestQueues::new(1, 1, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        assert!(publisher.publish(ProcessId(1), Malicious));
        let blocked = {
            let publisher = publisher.clone();
            std::thread::spawn(move || publisher.publish(ProcessId(2), Malicious))
        };
        // Give the publisher a real window to park on the condvar, so the
        // close below exercises the wakeup (not just the early-return)
        // path; either way the publish must come back `false`.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queues.close();
        assert!(!blocked.join().unwrap(), "closed queues reject publishes");
        assert!(!publisher.publish(ProcessId(3), Malicious));
        assert!(publisher.is_closed());
        assert_eq!(queues.stats().queued, 1, "already-queued data survives");
    }

    #[test]
    fn concurrent_publishers_deliver_everything() {
        let queues = IngestQueues::new(4, 4096, OverflowPolicy::Block);
        let publisher = IngestPublisher::new(queues.clone());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let publisher = publisher.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        assert!(publisher.publish(ProcessId(t * 1000 + i), Benign));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let drained = drain_all(&queues);
        assert_eq!(drained.len(), 4 * 256);
        // Sequence stamps are unique.
        let mut seqs: Vec<u64> = drained.iter().map(|&(seq, _, _)| seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 4 * 256);
    }
}
