//! The fleet tier: one response engine for a whole cluster.
//!
//! A [`ShardedEngine`] scales one machine's process population across
//! shards; a [`FleetEngine`] scales a *cluster* across machine groups. The
//! hierarchy is deliberate — rather than one flat shard space over every
//! pid in the fleet, observations are first routed by **machine id** to a
//! group (each group a full `ShardedEngine` with its own shards, scratch,
//! ingest rings and optional worker pool), then by pid within the group.
//! Two properties fall out of that shape:
//!
//! - **The single-machine path is a strict special case.** A fleet of one
//!   group forwards batches verbatim to its inner engine, so a 1-group
//!   fleet observing machine-0 pids is bit-for-bit the existing
//!   [`ShardedEngine`] (pinned by `tests/fleet.rs`).
//! - **Results are invariant to the grouping.** Per-process monitor state
//!   is keyed by the fleet-wide pid and every path applies a pid's
//!   observations in input order, so how machines are partitioned into
//!   groups changes only *where* work runs, never what it computes.
//!
//! Observations are keyed by fleet-packed [`ProcessId`]s
//! ([`ProcessId::from_parts`]): machine id in the high bits, machine-local
//! pid in the low bits. Routing uses the workspace-wide rule
//! [`shard_of`] on the *machine* component, so all
//! of one machine's processes land in one group and a machine
//! decommission touches exactly one group's bookkeeping.
//!
//! # Example
//!
//! ```
//! use valkyrie_core::prelude::*;
//!
//! let config = EngineConfig::builder()
//!     .measurements_required(10)
//!     .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
//!     .build()
//!     .unwrap();
//! let mut fleet = FleetEngine::new(config, 4, 2);
//!
//! // Machine 7's pid 1 and machine 40's pid 1 are distinct processes.
//! let a = ProcessId::from_parts(7, 1);
//! let b = ProcessId::from_parts(40, 1);
//! let responses = fleet.tick(&[(a, Classification::Malicious), (b, Classification::Benign)]);
//! assert_eq!(responses.len(), 2);
//! assert_eq!(fleet.tracked(), 2);
//! ```

use std::sync::Arc;

use crate::actuator::{Actuator, CompositeActuator};
use crate::engine::{EngineConfig, EngineResponse};
use crate::error::ValkyrieError;
use crate::hash::shard_of;
use crate::ingest::{CoalesceKey, IngestDefense, IngestPublisher, OverflowPolicy};
use crate::resource::{ProcessId, ResourceVector};
use crate::sharded::{
    partition_by_into, scatter_to_input_order, shrink_slot, ExecutionMode, ShardedEngine,
};
use crate::state::ProcessState;
use crate::telemetry::{FusionStats, IngestStats};
use crate::threat::{Classification, ThreatIndex, Verdict};

/// A hierarchical response engine for cluster-scale fleets: machine groups
/// of [`ShardedEngine`]s behind the same batch/tick API.
///
/// See the [module docs](self) for the routing rule and the equivalence
/// guarantees.
#[derive(Debug)]
pub struct FleetEngine<A: Actuator + Clone = CompositeActuator> {
    groups: Vec<ShardedEngine<A>>,
    /// Per-group partition scratch (same reuse-and-shrink policy as the
    /// inner engines' shard scratch).
    parts: Vec<Vec<(ProcessId, Classification)>>,
    origins: Vec<Vec<usize>>,
    /// Per-group partition scratch for the fusion tier's verdict batches.
    vparts: Vec<Vec<(ProcessId, Verdict)>>,
    epoch: u64,
}

/// The machine group that owns `machine` among `ngroups`: the
/// workspace-wide routing rule applied to the machine id.
#[inline]
fn group_index(machine: u32, ngroups: usize) -> usize {
    shard_of(u64::from(machine), ngroups)
}

impl<A: Actuator + Clone + Send> FleetEngine<A> {
    /// Creates a fleet engine with `groups` machine groups of
    /// `shards_per_group` shards each.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `shards_per_group` is zero.
    pub fn new(config: EngineConfig<A>, groups: usize, shards_per_group: usize) -> Self {
        Self::with_capacity(config, groups, shards_per_group, 0)
    }

    /// Creates a fleet engine pre-sized for `expected_procs` fleet-wide
    /// processes (split evenly across groups, then shards).
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `shards_per_group` is zero.
    pub fn with_capacity(
        config: EngineConfig<A>,
        groups: usize,
        shards_per_group: usize,
        expected_procs: usize,
    ) -> Self {
        assert!(groups > 0, "a fleet engine needs at least one group");
        let per_group = expected_procs.div_ceil(groups);
        Self {
            groups: (0..groups)
                .map(|_| ShardedEngine::with_capacity(config.clone(), shards_per_group, per_group))
                .collect(),
            parts: vec![Vec::new(); groups],
            origins: vec![Vec::new(); groups],
            vparts: vec![Vec::new(); groups],
            epoch: 0,
        }
    }

    /// Number of machine groups.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Shards per machine group (every group has the same count).
    pub fn shards_per_group(&self) -> usize {
        self.groups[0].shards()
    }

    /// The group that owns `machine`: a pure function of the machine id,
    /// stable across runs and platforms for a fixed group count.
    pub fn group_of(&self, machine: u32) -> usize {
        group_index(machine, self.groups.len())
    }

    /// Epochs driven so far via [`Self::tick`] / [`Self::drain_tick`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Terminated processes evicted so far, summed over groups.
    pub fn purged_total(&self) -> u64 {
        self.groups.iter().map(ShardedEngine::purged_total).sum()
    }

    /// Processes currently tracked fleet-wide, terminated ones included.
    pub fn tracked(&self) -> usize {
        self.groups.iter().map(ShardedEngine::tracked).sum()
    }

    /// Tracked processes that have not terminated, fleet-wide.
    pub fn tracked_live(&self) -> usize {
        self.groups.iter().map(ShardedEngine::tracked_live).sum()
    }

    /// Forwards [`ShardedEngine::set_parallel_threshold`] to every group.
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        for group in &mut self.groups {
            group.set_parallel_threshold(threshold);
        }
    }

    /// Current state of a process, if tracked.
    pub fn state(&self, pid: ProcessId) -> Option<ProcessState> {
        self.groups[self.group_of(pid.machine())].state(pid)
    }

    /// Current threat index of a process, if tracked.
    pub fn threat(&self, pid: ProcessId) -> Option<ThreatIndex> {
        self.groups[self.group_of(pid.machine())].threat(pid)
    }

    /// Current resource shares of a process, if tracked.
    pub fn resources(&self, pid: ProcessId) -> Option<ResourceVector> {
        self.groups[self.group_of(pid.machine())].resources(pid)
    }

    /// Feeds one inference for one process (the compatibility path; batch
    /// embedders should use [`Self::observe_batch`]).
    pub fn observe(&mut self, pid: ProcessId, inference: Classification) -> EngineResponse {
        let group = group_index(pid.machine(), self.groups.len());
        self.groups[group].observe(pid, inference)
    }

    /// Feeds one epoch's detector inferences for the whole fleet and
    /// returns one response per observation, **in input order**.
    ///
    /// The batch is partitioned by machine group (preserving input order
    /// within each group), each group runs its own
    /// [`ShardedEngine::observe_batch`], and the per-group responses are
    /// scattered back to input order. A one-group fleet forwards the batch
    /// verbatim — zero partition/scatter overhead and bit-for-bit the
    /// single-machine path.
    pub fn observe_batch(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let ngroups = self.groups.len();
        if ngroups == 1 {
            return self.groups[0].observe_batch(batch);
        }
        partition_by_into(
            batch,
            |pid| group_index(pid.machine(), ngroups),
            &mut self.parts,
            &mut self.origins,
        );
        let results: Vec<Vec<EngineResponse>> = self
            .groups
            .iter_mut()
            .zip(&self.parts)
            .map(|(group, part)| group.observe_batch(part))
            .collect();
        let out = scatter_to_input_order(&self.origins, results, batch.len());
        self.shrink_scratch();
        out
    }

    /// Feeds one per-detector [`Verdict`] for one process through its
    /// machine group's fusion tier.
    pub fn observe_verdict(&mut self, pid: ProcessId, verdict: Verdict) -> EngineResponse {
        let group = group_index(pid.machine(), self.groups.len());
        self.groups[group].observe_verdict(pid, verdict)
    }

    /// Feeds one tick's per-detector verdicts for the whole fleet through
    /// each group's fusion tier (see
    /// [`ShardedEngine::observe_verdict_batch`]). Responses are one per
    /// *process* with fresh evidence, concatenated in group order.
    pub fn observe_verdict_batch(&mut self, batch: &[(ProcessId, Verdict)]) -> Vec<EngineResponse> {
        let ngroups = self.groups.len();
        if ngroups == 1 {
            return self.groups[0].observe_verdict_batch(batch);
        }
        partition_by_into(
            batch,
            |pid| group_index(pid.machine(), ngroups),
            &mut self.vparts,
            &mut self.origins,
        );
        let mut out = Vec::new();
        for (group, part) in self.groups.iter_mut().zip(&self.vparts) {
            out.extend(group.observe_verdict_batch(part));
        }
        for part in &mut self.vparts {
            let used = part.len();
            shrink_slot(part, used);
        }
        out
    }

    /// The fusion counters merged over every group (see [`FusionStats`]).
    pub fn fusion_stats(&self) -> FusionStats {
        let mut stats = FusionStats::default();
        for group in &self.groups {
            stats.merge(&group.fusion_stats());
        }
        stats
    }

    /// The fleet epoch driver: feeds one tick's batch, advances the fleet
    /// epoch counter, and evicts terminated processes in every group
    /// ([`ShardedEngine::tick`]'s contract, lifted to the fleet).
    pub fn tick(&mut self, batch: &[(ProcessId, Classification)]) -> Vec<EngineResponse> {
        let responses = self.observe_batch(batch);
        self.epoch += 1;
        self.purge_terminated();
        responses
    }

    /// Evicts every terminated process across all groups, returning how
    /// many were dropped (the evictions feed [`Self::purged_total`]).
    pub fn purge_terminated(&mut self) -> usize {
        self.groups
            .iter_mut()
            .map(ShardedEngine::purge_terminated)
            .sum()
    }

    /// Marks a process as completed (Fig. 3: completion terminates it).
    ///
    /// # Errors
    ///
    /// Returns [`ValkyrieError::UnknownProcess`] when `pid` is not tracked.
    pub fn complete(&mut self, pid: ProcessId) -> Result<(), ValkyrieError> {
        let group = group_index(pid.machine(), self.groups.len());
        self.groups[group].complete(pid)
    }

    /// Stops tracking a process and frees its bookkeeping.
    pub fn forget(&mut self, pid: ProcessId) {
        let group = group_index(pid.machine(), self.groups.len());
        self.groups[group].forget(pid)
    }

    /// Builds the async ingest tier in every group and returns a
    /// fleet-wide publisher that routes each observation to its machine
    /// group's rings. `capacity` and `policy` apply per ring, exactly as in
    /// [`ShardedEngine::enable_ingest`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_ingest(&mut self, capacity: usize, policy: OverflowPolicy) -> FleetPublisher {
        self.enable_ingest_defended(capacity, policy, IngestDefense::default())
    }

    /// [`Self::enable_ingest`] with the overload defense configured per
    /// group (see [`ShardedEngine::enable_ingest_defended`]). Each group's
    /// rings get their own [`crate::ingest::ThreatHints`] fed back by that
    /// group's engine — hints never cross machine-group boundaries, which
    /// is fine because neither do a pid's observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_ingest_defended(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
        defense: IngestDefense,
    ) -> FleetPublisher {
        let publishers = self
            .groups
            .iter_mut()
            .map(|group| group.enable_ingest_defended(capacity, policy, defense))
            .collect();
        FleetPublisher {
            publishers: Arc::new(publishers),
        }
    }

    /// Whether [`Self::enable_ingest`] has built the ingest tier.
    pub fn ingest_enabled(&self) -> bool {
        self.groups.iter().all(ShardedEngine::ingest_enabled)
    }

    /// A fresh fleet-wide publisher for the current ingest rings (`None`
    /// before [`Self::enable_ingest`]).
    pub fn publisher(&self) -> Option<FleetPublisher> {
        let publishers: Option<Vec<IngestPublisher>> =
            self.groups.iter().map(ShardedEngine::publisher).collect();
        publishers.map(|publishers| FleetPublisher {
            publishers: Arc::new(publishers),
        })
    }

    /// The ingest tier's counters summed over groups (`None` before
    /// [`Self::enable_ingest`]).
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.groups
            .iter()
            .map(ShardedEngine::ingest_stats)
            .try_fold(IngestStats::default(), |mut acc, stats| {
                acc.merge(&stats?);
                Some(acc)
            })
    }

    /// Builds the fusion tier's verdict rings in every group and returns a
    /// fleet-wide verdict publisher — the per-detector twin of
    /// [`Self::enable_ingest`]. One [`Self::drain_tick`] serves both queue
    /// sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_verdict_ingest(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> FleetPublisher<Verdict> {
        self.enable_verdict_ingest_defended(capacity, policy, IngestDefense::default())
    }

    /// [`Self::enable_verdict_ingest`] with the overload defense configured
    /// per group (see [`ShardedEngine::enable_verdict_ingest_defended`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_verdict_ingest_defended(
        &mut self,
        capacity: usize,
        policy: OverflowPolicy,
        defense: IngestDefense,
    ) -> FleetPublisher<Verdict> {
        let publishers = self
            .groups
            .iter_mut()
            .map(|group| group.enable_verdict_ingest_defended(capacity, policy, defense))
            .collect();
        FleetPublisher {
            publishers: Arc::new(publishers),
        }
    }

    /// Whether [`Self::enable_verdict_ingest`] has built the verdict rings.
    pub fn verdict_ingest_enabled(&self) -> bool {
        self.groups
            .iter()
            .all(ShardedEngine::verdict_ingest_enabled)
    }

    /// A fresh fleet-wide publisher for the current verdict rings (`None`
    /// before [`Self::enable_verdict_ingest`]).
    pub fn verdict_publisher(&self) -> Option<FleetPublisher<Verdict>> {
        let publishers: Option<Vec<IngestPublisher<Verdict>>> = self
            .groups
            .iter()
            .map(ShardedEngine::verdict_publisher)
            .collect();
        publishers.map(|publishers| FleetPublisher {
            publishers: Arc::new(publishers),
        })
    }

    /// The verdict rings' counters summed over groups (`None` before
    /// [`Self::enable_verdict_ingest`]).
    pub fn verdict_ingest_stats(&self) -> Option<IngestStats> {
        self.groups
            .iter()
            .map(ShardedEngine::verdict_ingest_stats)
            .try_fold(IngestStats::default(), |mut acc, stats| {
                acc.merge(&stats?);
                Some(acc)
            })
    }

    /// Drains every group's ingest rings and returns the drained
    /// responses, concatenated **in group order**.
    ///
    /// Within a group the order is publish order (per publisher, merged by
    /// sequence stamp exactly as [`ShardedEngine::drain_batch`]); *across*
    /// groups no global order exists — each group's rings stamp sequence
    /// numbers independently, so the fleet drain is a concatenation, not a
    /// merge. Per-process semantics are unaffected: all of a pid's
    /// observations live in one group.
    ///
    /// # Panics
    ///
    /// Panics if ingest was never enabled.
    pub fn drain_batch(&mut self) -> Vec<EngineResponse> {
        let mut out = Vec::new();
        for group in &mut self.groups {
            out.append(&mut group.drain_batch());
        }
        out
    }

    /// The async fleet epoch driver: drains every group's rings, advances
    /// the fleet epoch counter, and evicts terminated processes
    /// ([`Self::tick`]'s contract fed by the detector threads' queues).
    ///
    /// # Panics
    ///
    /// Panics if ingest was never enabled.
    pub fn drain_tick(&mut self) -> Vec<EngineResponse> {
        let responses = self.drain_batch();
        self.epoch += 1;
        self.purge_terminated();
        responses
    }

    /// Returns partition-scratch outliers to steady state (the policy of
    /// the inner engines' scratch, applied to the group-routing slots).
    fn shrink_scratch(&mut self) {
        for part in &mut self.parts {
            let used = part.len();
            shrink_slot(part, used);
        }
        for origin in &mut self.origins {
            let used = origin.len();
            shrink_slot(origin, used);
        }
    }

    /// Iterates over `(pid, state, threat)` of all tracked processes,
    /// group by group (no global ordering).
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, ProcessState, ThreatIndex)> + '_ {
        self.groups.iter().flat_map(ShardedEngine::iter)
    }
}

impl<A: Actuator + Clone + Send + 'static> FleetEngine<A> {
    /// Switches every group's execution mode in place (see
    /// [`ShardedEngine::set_execution_mode`]). Note the worker budget
    /// multiplies: `groups × min(shards_per_group, cores)` persistent
    /// threads in [`ExecutionMode::Pool`].
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) {
        for group in &mut self.groups {
            group.set_execution_mode(mode);
        }
    }

    /// (Re)builds every group's pool with `workers` threads each (see
    /// [`ShardedEngine::set_pool_workers`]).
    pub fn set_pool_workers(&mut self, workers: usize) {
        for group in &mut self.groups {
            group.set_pool_workers(workers);
        }
    }
}

/// A cluster-wide publisher handle: routes each observation to its machine
/// group's ingest rings (same machine-id rule as the engine, so publish
/// and drain can never disagree on placement). Clone freely — clones share
/// the underlying group publishers. Carries [`Classification`]s by default
/// and per-detector [`Verdict`]s on the fusion path (see
/// [`FleetEngine::enable_verdict_ingest`]).
#[derive(Debug)]
pub struct FleetPublisher<P = Classification> {
    publishers: Arc<Vec<IngestPublisher<P>>>,
}

impl<P> Clone for FleetPublisher<P> {
    fn clone(&self) -> Self {
        Self {
            publishers: Arc::clone(&self.publishers),
        }
    }
}

impl<P: CoalesceKey> FleetPublisher<P> {
    /// Publishes one observation for `pid` into its group's rings.
    /// Returns `false` — discarding the observation — only when that
    /// group's engine has closed or replaced its rings.
    pub fn publish(&self, pid: ProcessId, payload: P) -> bool {
        let group = group_index(pid.machine(), self.publishers.len());
        self.publishers[group].publish(pid, payload)
    }

    /// Publishes a batch in order. Returns how many observations were
    /// accepted.
    pub fn publish_batch(&self, batch: &[(ProcessId, P)]) -> usize {
        let mut accepted = 0;
        for &(pid, payload) in batch {
            if self.publish(pid, payload) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Whether every group's rings have been closed (publishes are no-ops).
    pub fn is_closed(&self) -> bool {
        self.publishers.iter().all(IngestPublisher::is_closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ShareActuator;
    use Classification::{Benign, Malicious};

    fn config(n_star: u64) -> EngineConfig {
        EngineConfig::builder()
            .measurements_required(n_star)
            .actuator(ShareActuator::cpu_percent_point(0.10, 0.01))
            .build()
            .unwrap()
    }

    fn fleet_batch(machines: u32, procs_per_machine: u64) -> Vec<(ProcessId, Classification)> {
        let mut batch = Vec::new();
        for m in 0..machines {
            for p in 1..=procs_per_machine {
                let cls = if (u64::from(m) + p).is_multiple_of(5) {
                    Malicious
                } else {
                    Benign
                };
                batch.push((ProcessId::from_parts(m, p), cls));
            }
        }
        batch
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_is_rejected() {
        let _ = FleetEngine::new(config(5), 0, 2);
    }

    #[test]
    fn batch_responses_are_in_input_order() {
        let mut fleet = FleetEngine::new(config(100), 3, 2);
        let batch = fleet_batch(8, 5);
        let responses = fleet.observe_batch(&batch);
        assert_eq!(responses.len(), batch.len());
        for ((pid, _), response) in batch.iter().zip(&responses) {
            assert_eq!(response.pid, *pid);
        }
    }

    #[test]
    fn same_local_pid_on_two_machines_is_two_processes() {
        let mut fleet = FleetEngine::new(config(2), 4, 2);
        let a = ProcessId::from_parts(1, 7);
        let b = ProcessId::from_parts(2, 7);
        for _ in 0..3 {
            fleet.observe_batch(&[(a, Malicious), (b, Benign)]);
        }
        // Same local pid, different machines: `a` is killed while `b` —
        // decision-ready after its N* measurements, but never flagged —
        // stays alive with a zero threat index.
        assert_eq!(fleet.state(a), Some(ProcessState::Terminated));
        assert_eq!(fleet.state(b), Some(ProcessState::Terminable));
        assert_eq!(fleet.threat(b), Some(ThreatIndex::zero()));
        assert_eq!(fleet.tracked(), 2);
        assert_eq!(fleet.tracked_live(), 1);
    }

    #[test]
    fn tick_purges_and_counts_epochs() {
        let mut fleet = FleetEngine::new(config(2), 2, 2);
        let pid = ProcessId::from_parts(9, 1);
        fleet.tick(&[(pid, Malicious)]);
        fleet.tick(&[(pid, Malicious)]);
        let r = fleet.tick(&[(pid, Malicious)]);
        assert_eq!(r[0].state, ProcessState::Terminated);
        assert_eq!(fleet.epoch(), 3);
        assert_eq!(fleet.purged_total(), 1);
        assert_eq!(fleet.tracked(), 0);
    }

    #[test]
    fn machine_routing_is_stable_and_fleet_wide() {
        let fleet = FleetEngine::new(config(5), 5, 2);
        for m in 0..1000u32 {
            let g = fleet.group_of(m);
            assert!(g < 5);
            // Every pid of a machine routes to the machine's group.
            assert_eq!(fleet.group_of(ProcessId::from_parts(m, 12345).machine()), g);
        }
    }

    #[test]
    fn forget_decommissions_one_machines_pids() {
        let mut fleet = FleetEngine::new(config(100), 3, 2);
        let batch = fleet_batch(4, 10);
        fleet.observe_batch(&batch);
        assert_eq!(fleet.tracked(), 40);
        for p in 1..=10u64 {
            fleet.forget(ProcessId::from_parts(2, p));
        }
        assert_eq!(fleet.tracked(), 30);
        assert_eq!(fleet.state(ProcessId::from_parts(2, 3)), None);
        assert!(fleet.state(ProcessId::from_parts(1, 3)).is_some());
    }

    #[test]
    fn ingest_publish_then_drain_matches_batch_semantics() {
        let mut fleet = FleetEngine::new(config(4), 3, 2);
        let publisher = fleet.enable_ingest(64, OverflowPolicy::Block);
        let batch = fleet_batch(6, 4);
        assert_eq!(publisher.publish_batch(&batch), batch.len());
        let responses = fleet.drain_tick();
        assert_eq!(responses.len(), batch.len());
        assert_eq!(fleet.epoch(), 1);
        let stats = fleet.ingest_stats().expect("ingest enabled");
        assert_eq!(stats.published, batch.len() as u64);
        assert_eq!(stats.drained, batch.len() as u64);
        assert_eq!(stats.dropped, 0);

        // A mirror fleet fed synchronously reaches the same per-pid state.
        let mut mirror = FleetEngine::new(config(4), 3, 2);
        mirror.tick(&batch);
        for &(pid, _) in &batch {
            assert_eq!(fleet.state(pid), mirror.state(pid), "{pid}");
            assert_eq!(fleet.threat(pid), mirror.threat(pid), "{pid}");
        }
    }

    /// Verdicts published over the fleet's verdict rings reach the same
    /// per-pid state as the synchronous fleet verdict batch, and the
    /// fusion counters aggregate across groups.
    #[test]
    fn verdict_ingest_matches_verdict_batch_across_groups() {
        let mut fleet = FleetEngine::new(config(2), 3, 2);
        let publisher = fleet.enable_verdict_ingest(64, OverflowPolicy::Block);
        let batch: Vec<(ProcessId, Verdict)> = (0..6u32)
            .flat_map(|m| {
                (1..=4u64).map(move |p| {
                    let conf = if (u64::from(m) + p).is_multiple_of(3) {
                        1.0
                    } else {
                        0.0
                    };
                    (ProcessId::from_parts(m, p), Verdict::new(0, conf))
                })
            })
            .collect();
        for _ in 0..2 {
            assert_eq!(publisher.publish_batch(&batch), batch.len());
            fleet.drain_tick();
        }
        assert_eq!(fleet.epoch(), 2);
        assert_eq!(fleet.fusion_stats().verdicts, 2 * batch.len() as u64);
        let stats = fleet.verdict_ingest_stats().expect("verdict ingest on");
        assert_eq!(stats.published, stats.drained);

        let mut mirror = FleetEngine::new(config(2), 3, 2);
        for _ in 0..2 {
            mirror.observe_verdict_batch(&batch);
            mirror.purge_terminated();
        }
        for &(pid, _) in &batch {
            assert_eq!(fleet.state(pid), mirror.state(pid), "{pid}");
            assert_eq!(fleet.threat(pid), mirror.threat(pid), "{pid}");
        }
    }

    #[test]
    fn complete_terminates_and_unknown_pid_errors() {
        let mut fleet = FleetEngine::new(config(10), 2, 2);
        let pid = ProcessId::from_parts(3, 1);
        fleet.observe(pid, Benign);
        fleet.complete(pid).expect("tracked");
        assert_eq!(fleet.state(pid), Some(ProcessState::Terminated));
        assert!(fleet.complete(ProcessId::from_parts(3, 99)).is_err());
    }

    #[test]
    fn iter_covers_all_groups() {
        let mut fleet = FleetEngine::new(config(100), 4, 2);
        let batch = fleet_batch(16, 3);
        fleet.observe_batch(&batch);
        let mut pids: Vec<ProcessId> = fleet.iter().map(|(pid, _, _)| pid).collect();
        pids.sort_unstable();
        let mut expected: Vec<ProcessId> = batch.iter().map(|&(pid, _)| pid).collect();
        expected.sort_unstable();
        assert_eq!(pids, expected);
    }
}
