//! A fast, deterministic hasher for [`ProcessId`](crate::ProcessId)-keyed
//! maps.
//!
//! The engine's hot path is a hash-map lookup per observation, and the
//! standard library's default SipHash is built for HashDoS resistance the
//! engine does not need: process ids are assigned by the embedder (the OS
//! or the simulator), not by the adversary the detector watches. [`FxHasher`]
//! is the multiply-xor scheme used by the Rust compiler's `FxHashMap` —
//! a few instructions per `u64` key — and is **deterministic across runs
//! and platforms**, which the sharded engine relies on for reproducible
//! shard placement (see [`crate::sharded`]).

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (rustc's `FxHasher`): fast on small fixed-size keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// SplitMix64 finalizer: a full-avalanche bit mixer.
///
/// Used for shard selection, where — unlike inside a `HashMap`, which mixes
/// the hash further — the raw multiply hash of a *sequential* pid range
/// would land consecutive pids on biased shards. The finalizer spreads any
/// key pattern uniformly, and is deterministic across runs.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The owning partition for a `u64` key among `nparts`: `mix64(key) %
/// nparts`, a pure function of the key — stable across runs, platforms and
/// execution modes.
///
/// This is **the** routing rule of the scaling tier, defined once so the
/// placement used by the batch path
/// ([`ShardedEngine`](crate::ShardedEngine)), the async ingest rings
/// ([`IngestPublisher`](crate::IngestPublisher)) and the fleet tier's
/// machine-group routing ([`FleetEngine`](crate::FleetEngine)) cannot
/// silently drift apart: an observation published through a ring must land
/// on the same shard the batch path would have picked, or the per-process
/// monitor state would split across shards.
///
/// # Panics
///
/// Panics in debug builds if `nparts` is zero.
#[inline]
pub fn shard_of(key: u64, nparts: usize) -> usize {
    debug_assert!(nparts > 0, "cannot route among zero partitions");
    (mix64(key) % nparts as u64) as usize
}

/// Deterministic bounded jitter from a `(key, time)` coordinate pair:
/// uniformly-ish distributed in `0..=bound`, identical across runs and
/// platforms. The one definition shared by every latency model in the
/// workspace (`valkyrie_detect::LatencyModel`, the multi-tenant
/// experiment's async detector tier), so their notions of "jitter" cannot
/// silently drift apart.
#[inline]
pub fn jitter64(key: u64, time: u64, bound: u64) -> u64 {
    if bound == 0 {
        return 0;
    }
    // splitmix64's golden-ratio increment decorrelates the coordinates
    // before the full-avalanche mix.
    mix64(key ^ time.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (bound + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&crate::ProcessId(7)), hash_of(&crate::ProcessId(7)));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&0u64), hash_of(&u64::MAX));
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        // Consecutive pids must not collapse onto a few shards.
        for shards in [2usize, 7, 16] {
            let mut counts = vec![0u32; shards];
            for pid in 0..10_000u64 {
                counts[(mix64(pid) % shards as u64) as usize] += 1;
            }
            let expected = 10_000 / shards as u32;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    c > expected / 2 && c < expected * 2,
                    "shard {i}/{shards} got {c} of ~{expected}"
                );
            }
        }
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
        assert_ne!(mix64(1), mix64(2));
    }

    /// Pins the routing rule itself. These literals are the placement every
    /// persisted shard-keyed artifact assumes; if this test fails, the
    /// change re-routes live per-process state and is **not** a refactor.
    #[test]
    fn shard_of_routing_is_pinned() {
        const KEYS: [u64; 14] = [
            0,
            1,
            2,
            3,
            4,
            5,
            6,
            7,
            41,
            1000,
            1_000_000,
            (3 << 40) | 7,        // fleet-packed: machine 3, local pid 7
            (123_456 << 40) | 42, // fleet-packed: machine 123456, local pid 42
            u64::MAX,
        ];
        let expect4: [usize; 14] = [3, 1, 2, 1, 2, 2, 0, 3, 1, 0, 3, 2, 2, 0];
        let expect7: [usize; 14] = [2, 2, 4, 2, 6, 3, 3, 2, 6, 0, 4, 3, 3, 0];
        let expect16: [usize; 14] = [15, 1, 14, 13, 10, 10, 0, 7, 9, 8, 7, 6, 2, 0];
        for (i, &k) in KEYS.iter().enumerate() {
            assert_eq!(shard_of(k, 1), 0);
            assert_eq!(shard_of(k, 4), expect4[i], "key {k} among 4");
            assert_eq!(shard_of(k, 7), expect7[i], "key {k} among 7");
            assert_eq!(shard_of(k, 16), expect16[i], "key {k} among 16");
        }
    }
}
