//! Load-store-buffer timing model with store-to-load forwarding.
//!
//! Substrate of the paper's "Fill-and-Forward Timed Speculative Attack"
//! (Chakraborty et al., DAC 2022): a covert channel that encodes bits in the
//! timing difference between loads that are *forwarded* from an in-flight
//! store and loads that suffer a 4 KiB-aliasing stall, bypassing all
//! cache-based countermeasures.

/// Load-store-buffer geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsbConfig {
    /// Number of in-flight store-buffer entries.
    pub store_entries: usize,
    /// Latency of a load forwarded from the store buffer, in cycles.
    pub forward_latency: u32,
    /// Latency of a load that 4K-aliases an in-flight store (false
    /// dependency stall + re-issue), in cycles.
    pub alias_stall_latency: u32,
    /// Latency of an ordinary load with no buffer interaction, in cycles.
    pub normal_latency: u32,
}

impl LsbConfig {
    /// A Skylake-like store buffer: 56 entries, fast forwarding, expensive
    /// aliasing stalls.
    pub fn skylake() -> Self {
        Self {
            store_entries: 56,
            forward_latency: 5,
            alias_stall_latency: 22,
            normal_latency: 9,
        }
    }

    fn validate(&self) {
        assert!(self.store_entries > 0, "store buffer must have entries");
        assert!(
            self.alias_stall_latency > self.normal_latency
                && self.normal_latency > self.forward_latency,
            "latencies must order forward < normal < alias-stall"
        );
    }
}

/// What a load observed in the store buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Exact-address match: the store's data was forwarded.
    Forwarded,
    /// Same low 12 address bits but a different address: false dependency.
    AliasStall,
    /// No interaction with buffered stores.
    Normal,
}

/// A FIFO store buffer with store-to-load forwarding and 4 KiB-alias
/// detection.
///
/// # Examples
///
/// ```
/// use valkyrie_uarch::{LoadStoreBuffer, LsbConfig};
/// use valkyrie_uarch::lsb::LoadKind;
/// let mut lsb = LoadStoreBuffer::new(LsbConfig::skylake());
/// lsb.store(0x11234);
/// let (kind, fast) = (lsb.load(0x11234).0, lsb.load(0x11234).1);
/// assert_eq!(kind, LoadKind::Forwarded);
/// // A different page with the same page offset stalls:
/// let (kind, slow) = lsb.load(0x22234);
/// assert_eq!(kind, LoadKind::AliasStall);
/// assert!(slow > fast);
/// ```
#[derive(Debug, Clone)]
pub struct LoadStoreBuffer {
    config: LsbConfig,
    /// In-flight stores, oldest first.
    stores: Vec<u64>,
}

impl LoadStoreBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration.
    pub fn new(config: LsbConfig) -> Self {
        config.validate();
        Self {
            config,
            stores: Vec::with_capacity(config.store_entries),
        }
    }

    /// The buffer configuration.
    pub fn config(&self) -> &LsbConfig {
        &self.config
    }

    /// Issues a store to `addr`; the oldest entry retires if the buffer is
    /// full.
    pub fn store(&mut self, addr: u64) {
        if self.stores.len() == self.config.store_entries {
            self.stores.remove(0);
        }
        self.stores.push(addr);
    }

    /// Issues a load from `addr`; returns what it matched and its latency.
    ///
    /// Matching follows real store-buffer behaviour: the *youngest* matching
    /// store wins; an exact address match forwards, while a match on only
    /// the low 12 bits (4 KiB page offset) triggers a false-dependency
    /// stall.
    pub fn load(&self, addr: u64) -> (LoadKind, u32) {
        for &s in self.stores.iter().rev() {
            if s == addr {
                return (LoadKind::Forwarded, self.config.forward_latency);
            }
            if s & 0xfff == addr & 0xfff {
                return (LoadKind::AliasStall, self.config.alias_stall_latency);
            }
        }
        (LoadKind::Normal, self.config.normal_latency)
    }

    /// Retires `n` oldest stores (models draining between channel rounds).
    pub fn retire(&mut self, n: usize) {
        let n = n.min(self.stores.len());
        self.stores.drain(0..n);
    }

    /// Drops all in-flight stores.
    pub fn drain(&mut self) {
        self.stores.clear();
    }

    /// Number of in-flight stores.
    pub fn in_flight(&self) -> usize {
        self.stores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_beats_normal_beats_alias() {
        let mut lsb = LoadStoreBuffer::new(LsbConfig::skylake());
        lsb.store(0x1_0100);
        let (k1, l1) = lsb.load(0x1_0100);
        let (k2, l2) = lsb.load(0x9_9000);
        let (k3, l3) = lsb.load(0x2_0100);
        assert_eq!(k1, LoadKind::Forwarded);
        assert_eq!(k2, LoadKind::Normal);
        assert_eq!(k3, LoadKind::AliasStall);
        assert!(l1 < l2 && l2 < l3);
    }

    #[test]
    fn youngest_store_wins() {
        let mut lsb = LoadStoreBuffer::new(LsbConfig::skylake());
        lsb.store(0x2_0200); // aliases 0x1_0200
        lsb.store(0x1_0200); // exact match, younger
        assert_eq!(lsb.load(0x1_0200).0, LoadKind::Forwarded);
    }

    #[test]
    fn buffer_is_bounded_fifo() {
        let cfg = LsbConfig {
            store_entries: 2,
            forward_latency: 1,
            alias_stall_latency: 10,
            normal_latency: 5,
        };
        let mut lsb = LoadStoreBuffer::new(cfg);
        // Distinct page offsets so evicted entries cannot alias-match.
        lsb.store(0x1008);
        lsb.store(0x2010);
        lsb.store(0x3020); // evicts 0x1008
        assert_eq!(lsb.in_flight(), 2);
        assert_eq!(lsb.load(0x1008).0, LoadKind::Normal);
        assert_eq!(lsb.load(0x3020).0, LoadKind::Forwarded);
    }

    #[test]
    fn retire_and_drain() {
        let mut lsb = LoadStoreBuffer::new(LsbConfig::skylake());
        for i in 0..10 {
            lsb.store(i * 0x1000);
        }
        lsb.retire(4);
        assert_eq!(lsb.in_flight(), 6);
        lsb.drain();
        assert_eq!(lsb.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "latencies")]
    fn invalid_latency_order_panics() {
        let _ = LoadStoreBuffer::new(LsbConfig {
            store_entries: 4,
            forward_latency: 10,
            alias_stall_latency: 5,
            normal_latency: 7,
        });
    }
}
