//! Set-associative, true-LRU cache timing model.

/// Geometry and latencies of a cache level.
///
/// # Examples
///
/// ```
/// use valkyrie_uarch::CacheConfig;
/// let cfg = CacheConfig::l1d();
/// assert_eq!(cfg.capacity_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
    /// Latency of a hit, in cycles.
    pub hit_latency: u32,
    /// Latency of a miss (fill from the next level), in cycles.
    pub miss_latency: u32,
}

impl CacheConfig {
    /// 32 KiB, 8-way, 64 B lines — an Intel L1 data cache.
    pub fn l1d() -> Self {
        Self {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            hit_latency: 4,
            miss_latency: 40,
        }
    }

    /// 32 KiB, 8-way, 64 B lines — an Intel L1 instruction cache.
    pub fn l1i() -> Self {
        Self {
            sets: 64,
            ways: 8,
            line_bytes: 64,
            hit_latency: 4,
            miss_latency: 40,
        }
    }

    /// 8 MiB, 16-way, 64 B lines — a shared inclusive last-level cache.
    pub fn llc() -> Self {
        Self {
            sets: 8192,
            ways: 16,
            line_bytes: 64,
            hit_latency: 40,
            miss_latency: 250,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be non-zero");
        assert!(
            self.miss_latency > self.hit_latency,
            "a miss must cost more than a hit"
        );
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was present.
    pub hit: bool,
    /// Cycles taken by the access.
    pub latency: u32,
    /// Line address evicted to make room, if any.
    pub evicted: Option<u64>,
}

/// Aggregate hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses so far (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache tracks line addresses
/// (`addr / line_bytes`). Each set keeps its lines in MRU-first order.
///
/// # Examples
///
/// Classic Prime+Probe on one set:
///
/// ```
/// use valkyrie_uarch::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d());
/// let set = 5;
/// // Prime: fill the set with attacker lines.
/// for way in 0..c.config().ways {
///     c.access(c.address_in_set(set, 1000 + way as u64));
/// }
/// // Victim touches the set, evicting one attacker line.
/// c.access(c.address_in_set(set, 1));
/// // Probe: at least one attacker access now misses.
/// let mut misses = 0;
/// for way in 0..c.config().ways {
///     if !c.access(c.address_in_set(set, 1000 + way as u64)).hit {
///         misses += 1;
///     }
/// }
/// assert!(misses >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: line addresses in MRU-first order.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-power-of-two geometry,
    /// zero ways, or miss latency not exceeding hit latency).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Self {
            config,
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate statistics since creation (or the last [`Cache::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the statistics counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Set index of a byte address.
    pub fn set_index(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes as u64) % self.config.sets as u64) as usize
    }

    /// A byte address guaranteed to map to `set`, distinct per `tag`.
    ///
    /// Attackers use this to build eviction sets: different `tag` values
    /// yield lines that all collide in `set`.
    pub fn address_in_set(&self, set: usize, tag: u64) -> u64 {
        let line = tag * self.config.sets as u64 + (set % self.config.sets) as u64;
        line * self.config.line_bytes as u64
    }

    /// True if the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        self.sets[self.set_index(addr)].contains(&line)
    }

    /// Accesses `addr`, filling on a miss and updating LRU state.
    pub fn access(&mut self, addr: u64) -> Access {
        let set_idx = self.set_index(addr);
        let line = addr / self.config.line_bytes as u64;
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.stats.hits += 1;
            return Access {
                hit: true,
                latency: self.config.hit_latency,
                evicted: None,
            };
        }
        self.stats.misses += 1;
        let evicted = if set.len() == ways {
            let victim = set.pop().expect("non-empty set");
            self.stats.evictions += 1;
            Some(victim * self.config.line_bytes as u64)
        } else {
            None
        };
        set.insert(0, line);
        Access {
            hit: false,
            latency: self.config.miss_latency,
            evicted,
        }
    }

    /// Flushes the line containing `addr` (like `clflush`); returns whether
    /// it was resident.
    pub fn flush(&mut self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        let line = addr / self.config.line_bytes as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Fills `set` with `ways` attacker lines tagged from `tag_base`
    /// (the *prime* step); returns total latency.
    pub fn prime_set(&mut self, set: usize, tag_base: u64) -> u32 {
        let mut latency = 0;
        for way in 0..self.config.ways {
            latency += self
                .access(self.address_in_set(set, tag_base + way as u64))
                .latency;
        }
        latency
    }

    /// Re-accesses the same attacker lines (the *probe* step); returns
    /// `(misses, total_latency)`.
    pub fn probe_set(&mut self, set: usize, tag_base: u64) -> (usize, u32) {
        let mut misses = 0;
        let mut latency = 0;
        for way in 0..self.config.ways {
            let a = self.access(self.address_in_set(set, tag_base + way as u64));
            if !a.hit {
                misses += 1;
            }
            latency += a.latency;
        }
        (misses, latency)
    }

    /// Number of resident lines (for invariants/tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1d());
        let a = c.access(0x40);
        assert!(!a.hit);
        assert_eq!(a.latency, 40);
        let a = c.access(0x40);
        assert!(a.hit);
        assert_eq!(a.latency, 4);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x100);
        assert!(c.access(0x13F).hit); // same 64-byte line
        assert!(!c.access(0x140).hit); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 10,
        };
        let mut c = Cache::new(cfg);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A: B is now LRU
        let a = c.access(128); // line C evicts B
        assert_eq!(a.evicted, Some(64));
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn set_index_and_address_round_trip() {
        let c = Cache::new(CacheConfig::llc());
        for set in [0, 1, 17, 8191] {
            for tag in [0, 5, 99] {
                let addr = c.address_in_set(set, tag);
                assert_eq!(c.set_index(addr), set);
            }
        }
    }

    #[test]
    fn prime_probe_detects_victim_access() {
        let mut c = Cache::new(CacheConfig::l1d());
        let set = 12;
        c.prime_set(set, 100);
        // No victim: probing hits everywhere.
        let (misses, _) = c.probe_set(set, 100);
        assert_eq!(misses, 0);
        // Victim touches the set.
        c.prime_set(set, 100);
        c.access(c.address_in_set(set, 7));
        let (misses, lat_with_victim) = c.probe_set(set, 100);
        assert!(misses >= 1);
        c.prime_set(set, 100);
        let (_, lat_quiet) = c.probe_set(set, 100);
        assert!(lat_with_victim > lat_quiet);
    }

    #[test]
    fn flush_removes_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x2000);
        assert!(c.flush(0x2000));
        assert!(!c.contains(0x2000));
        assert!(!c.flush(0x2000));
        assert!(!c.access(0x2000).hit);
    }

    #[test]
    fn capacity_is_respected() {
        let cfg = CacheConfig::l1d();
        let mut c = Cache::new(cfg);
        // Touch far more distinct lines than the cache can hold.
        for i in 0..(4 * cfg.sets * cfg.ways) {
            c.access((i * cfg.line_bytes) as u64);
        }
        assert!(c.resident_lines() <= cfg.sets * cfg.ways);
    }

    #[test]
    fn miss_ratio_reported() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            miss_latency: 10,
        });
    }
}
