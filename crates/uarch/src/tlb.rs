//! Set-associative TLB timing model (substrate of the TLB covert channel,
//! Gras et al.'s TLBleed-style Evict+Time).

/// TLB geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: usize,
    /// Latency of a TLB hit, in cycles.
    pub hit_latency: u32,
    /// Latency of a page-table walk on a miss, in cycles.
    pub miss_latency: u32,
}

impl TlbConfig {
    /// A typical L1 dTLB: 16 sets, 4 ways, 4 KiB pages.
    pub fn dtlb() -> Self {
        Self {
            sets: 16,
            ways: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_latency: 100,
        }
    }

    /// Number of page translations the TLB can hold.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            self.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be non-zero");
    }
}

/// A set-associative, LRU translation lookaside buffer.
///
/// Operates on virtual byte addresses; internally tracks virtual page
/// numbers. The set index is the page number modulo the set count (the
/// linear indexing Gras et al. demonstrate for Intel L1 dTLBs).
///
/// # Examples
///
/// ```
/// use valkyrie_uarch::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig::dtlb());
/// let (hit, _) = tlb.translate(0x5000);
/// assert!(!hit);
/// let (hit, lat) = tlb.translate(0x5fff); // same page
/// assert!(hit);
/// assert_eq!(lat, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// Per set: virtual page numbers in MRU-first order.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry.
    pub fn new(config: TlbConfig) -> Self {
        config.validate();
        Self {
            config,
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// TLB set index for a virtual address.
    pub fn set_index(&self, vaddr: u64) -> usize {
        ((vaddr / self.config.page_bytes as u64) % self.config.sets as u64) as usize
    }

    /// A virtual address on a page mapping to `set`, distinct per `tag`.
    pub fn address_in_set(&self, set: usize, tag: u64) -> u64 {
        let vpn = tag * self.config.sets as u64 + (set % self.config.sets) as u64;
        vpn * self.config.page_bytes as u64
    }

    /// Translates `vaddr`, returning `(hit, latency)` and updating LRU state.
    pub fn translate(&mut self, vaddr: u64) -> (bool, u32) {
        let set_idx = self.set_index(vaddr);
        let vpn = vaddr / self.config.page_bytes as u64;
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&p| p == vpn) {
            let p = set.remove(pos);
            set.insert(0, p);
            self.hits += 1;
            return (true, self.config.hit_latency);
        }
        self.misses += 1;
        if set.len() == ways {
            set.pop();
        }
        set.insert(0, vpn);
        (false, self.config.miss_latency)
    }

    /// True if the page containing `vaddr` has a cached translation.
    pub fn contains(&self, vaddr: u64) -> bool {
        let vpn = vaddr / self.config.page_bytes as u64;
        self.sets[self.set_index(vaddr)].contains(&vpn)
    }

    /// Fills one TLB set with `ways` attacker pages (the *evict* step).
    pub fn evict_set(&mut self, set: usize, tag_base: u64) -> u32 {
        let mut latency = 0;
        for way in 0..self.config.ways {
            latency += self
                .translate(self.address_in_set(set, tag_base + way as u64))
                .1;
        }
        latency
    }

    /// Re-translates the attacker pages; returns `(misses, total_latency)`.
    pub fn probe_set(&mut self, set: usize, tag_base: u64) -> (usize, u32) {
        let mut misses = 0;
        let mut latency = 0;
        for way in 0..self.config.ways {
            let (hit, lat) = self.translate(self.address_in_set(set, tag_base + way as u64));
            if !hit {
                misses += 1;
            }
            latency += lat;
        }
        (misses, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::dtlb());
        assert!(!tlb.translate(0x1234).0);
        assert!(tlb.translate(0x1000).0); // same page
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn lru_within_set() {
        let cfg = TlbConfig {
            sets: 1,
            ways: 2,
            page_bytes: 4096,
            hit_latency: 1,
            miss_latency: 50,
        };
        let mut tlb = Tlb::new(cfg);
        tlb.translate(0); // page A
        tlb.translate(4096); // page B
        tlb.translate(0); // refresh A
        tlb.translate(8192); // page C evicts B
        assert!(tlb.contains(0));
        assert!(!tlb.contains(4096));
    }

    #[test]
    fn evict_probe_detects_victim_translation() {
        let mut tlb = Tlb::new(TlbConfig::dtlb());
        let set = 3;
        tlb.evict_set(set, 10);
        let (misses, _) = tlb.probe_set(set, 10);
        assert_eq!(misses, 0);
        tlb.evict_set(set, 10);
        tlb.translate(tlb.address_in_set(set, 99));
        let (misses, _) = tlb.probe_set(set, 10);
        assert!(misses >= 1);
    }

    #[test]
    fn address_in_set_round_trips() {
        let tlb = Tlb::new(TlbConfig::dtlb());
        for set in 0..16 {
            assert_eq!(tlb.set_index(tlb.address_in_set(set, 42)), set);
        }
    }
}
