//! Micro-architecture substrate: timing models of the shared hardware
//! resources that micro-architectural attacks contend on.
//!
//! The paper's case studies replay six attacks — Prime+Probe on the L1
//! data/instruction caches and the LLC, Evict+Time on the TLB, and a
//! load-store-buffer covert channel — against real hardware. This crate is
//! the simulated stand-in: set-associative LRU [`cache::Cache`]s, a
//! [`tlb::Tlb`] and a [`lsb::LoadStoreBuffer`] whose access latencies expose
//! exactly the contention the attacks measure. The attack implementations in
//! `valkyrie-attacks` drive victims and spies through these models, so a
//! throttled spy genuinely loses measurement bandwidth.
//!
//! # Examples
//!
//! ```
//! use valkyrie_uarch::cache::{Cache, CacheConfig};
//! let mut l1d = Cache::new(CacheConfig::l1d());
//! let first = l1d.access(0x1000);
//! let second = l1d.access(0x1000);
//! assert!(!first.hit && second.hit);
//! assert!(second.latency < first.latency);
//! ```

pub mod cache;
pub mod lsb;
pub mod tlb;

pub use cache::{Access, Cache, CacheConfig, CacheStats};
pub use lsb::{LoadStoreBuffer, LsbConfig};
pub use tlb::{Tlb, TlbConfig};
