//! The simulated machine: scheduler + controllers + devices driving
//! [`Workload`]s epoch by epoch.
//!
//! A [`Machine`] is the substrate every experiment runs on. Each epoch
//! (100 ms) it:
//!
//! 1. runs the CFS scheduler to split the epoch's CPU ticks across runnable
//!    processes;
//! 2. applies per-process cgroup-style limits (CPU quota, memory limit,
//!    network cap, file-rate share);
//! 3. calls every live workload's [`Workload::advance`] with the granted
//!    resources, collecting per-epoch progress and HPC samples;
//! 4. advances shared devices (DRAM refresh windows).
//!
//! Valkyrie's engine plugs in through [`Machine::apply_resources`] (mapping a
//! [`ResourceVector`] onto scheduler weight / quotas) and
//! [`Machine::terminate`].
//!
//! Processes live in a dense slab of reusable slots (pids are handed out
//! sequentially and **never** reused; a pid finds its slot through a
//! constant-time map). Terminated and completed entries stay inspectable
//! in place until the embedder calls [`Machine::reap_dead`], which frees
//! their slots for later spawns — under service churn the slab stays
//! bounded by the peak *live* population instead of growing with every
//! process that ever ran. The hot epoch loop is
//! [`Machine::run_epoch_into`], which fills a caller-owned scratch buffer
//! in ascending-pid order without allocating; [`Machine::run_epoch`] wraps
//! it for map-shaped compatibility.

use crate::cgroup::{CpuController, FileRateLimiter, MemoryController};
use crate::clock::{Tick, EPOCH_TICKS};
use crate::dram::{Dram, DramConfig};
use crate::fs::SimFs;
use crate::net::NetController;
use crate::pid::{GlobalPid, MachineId, Pid};
use crate::sched::{CfsScheduler, SchedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use valkyrie_core::hash::FxBuildHasher;
use valkyrie_core::ResourceVector;
use valkyrie_hpc::HpcSample;

/// Per-epoch execution context handed to a workload.
///
/// Everything a workload may touch during one epoch: its granted CPU time,
/// the efficiency/budget effects of the resource controllers, the shared
/// devices and a deterministic RNG.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// The workload's process id.
    pub pid: Pid,
    /// Current epoch index (0-based).
    pub epoch: u64,
    /// CPU ticks granted this epoch (after scheduler + quota).
    pub cpu_ticks: u64,
    /// Ticks in a full epoch.
    pub epoch_ticks: u64,
    /// Memory-thrashing efficiency factor in `(0, 1]`.
    pub mem_efficiency: f64,
    /// Files the workload may open this epoch.
    pub fs_file_budget: f64,
    /// Network controller (hard cap + shaping).
    pub net: &'a mut NetController,
    /// Shared DRAM bank.
    pub dram: &'a mut Dram,
    /// Shared victim filesystem.
    pub fs: &'a mut SimFs,
    /// Deterministic per-machine RNG.
    pub rng: &'a mut StdRng,
}

impl EpochCtx<'_> {
    /// Fraction of the epoch the workload was allowed to run.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_ticks as f64 / self.epoch_ticks as f64
    }
}

/// What a workload accomplished in one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Progress in workload-specific units (bytes encrypted, hashes
    /// computed, samples captured, …). `B_i(R_i)` in the paper.
    pub progress: f64,
    /// The HPC measurement the detector will see for this epoch.
    pub hpc: HpcSample,
    /// True when the workload finished its work this epoch.
    pub completed: bool,
}

impl EpochReport {
    /// A report with no progress and an all-zero HPC sample.
    pub fn idle() -> Self {
        Self {
            progress: 0.0,
            hpc: HpcSample::zero(),
            completed: false,
        }
    }
}

/// Looks up one process's report in a [`Machine::run_epoch_into`] buffer.
/// The buffer is sorted by ascending pid, so this is a binary search.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::machine::{report_for, EpochReport};
/// use valkyrie_sim::Pid;
/// let reports = vec![(Pid(1), EpochReport::idle()), (Pid(4), EpochReport::idle())];
/// assert!(report_for(&reports, Pid(4)).is_some());
/// assert!(report_for(&reports, Pid(2)).is_none());
/// ```
pub fn report_for(reports: &[(Pid, EpochReport)], pid: Pid) -> Option<&EpochReport> {
    reports
        .binary_search_by_key(&pid, |&(p, _)| p)
        .ok()
        .map(|i| &reports[i].1)
}

/// A simulated process: advances once per epoch under granted resources.
pub trait Workload: std::any::Any {
    /// Human-readable name (benchmark or attack identifier).
    fn name(&self) -> &str;

    /// Executes one epoch under the granted resources.
    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport;

    /// Working-set size in bytes (used by the memory controller); `None`
    /// means the workload is insensitive to memory limits.
    fn working_set_bytes(&self) -> Option<u64> {
        None
    }

    /// Type-erased self, so embedders can inspect concrete workload state
    /// (e.g. an attack's guessing entropy) while it runs on a machine.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Machine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Ticks per epoch (default 100 = 100 ms).
    pub epoch_ticks: u64,
    /// Scheduler tuning.
    pub sched: SchedConfig,
    /// DRAM model parameters.
    pub dram: DramConfig,
    /// Unrestricted file-open rate, files/second.
    pub default_files_per_sec: f64,
    /// RNG seed (the whole simulation is deterministic given this).
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            epoch_ticks: EPOCH_TICKS,
            sched: SchedConfig::default(),
            dram: DramConfig::ddr3_1333(),
            default_files_per_sec: 100.0,
            seed: 0x7A1C_F00D,
        }
    }
}

#[derive(Debug)]
struct ProcEntry {
    pid: Pid,
    workload: Box<dyn Workload>,
    cpu: CpuController,
    mem_limit_frac: f64,
    net: NetController,
    fs_share: f64,
    alive: bool,
    completed: bool,
}

impl std::fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::machine::{EpochCtx, EpochReport, Machine, MachineConfig, Workload};
/// use valkyrie_hpc::HpcSample;
///
/// struct Spin;
/// impl Workload for Spin {
///     fn name(&self) -> &str { "spin" }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
///         EpochReport { progress: ctx.cpu_share(), hpc: HpcSample::zero(), completed: false }
///     }
/// }
///
/// let mut m = Machine::new(MachineConfig::default());
/// let pid = m.spawn(Box::new(Spin));
/// let reports = m.run_epoch();
/// assert!((reports[&pid].progress - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    /// This machine's cluster-wide identity (`MachineId(0)` for standalone
    /// machines, so their [`GlobalPid`]s pack to bare pids).
    id: MachineId,
    sched: CfsScheduler,
    /// Dense process slab. Slots hold entries in place until
    /// [`Machine::reap_dead`] frees them; freed slots are reused by later
    /// spawns, so pids (never reused) locate their slot via `pid_slot`.
    procs: Vec<Option<ProcEntry>>,
    /// Freed slab slots awaiting reuse (LIFO).
    free: Vec<u32>,
    /// pid → slab slot for every entry currently in the slab.
    pid_slot: HashMap<u64, u32, FxBuildHasher>,
    dram: Dram,
    fs: SimFs,
    rng: StdRng,
    epoch: u64,
    next_pid: u64,
}

impl Machine {
    /// Boots an empty machine with identity [`MachineId`]`(0)`.
    pub fn new(config: MachineConfig) -> Self {
        Self::with_id(config, MachineId(0))
    }

    /// Boots an empty machine with an explicit cluster identity (the
    /// [`Cluster`](crate::Cluster) boot path).
    pub fn with_id(config: MachineConfig, id: MachineId) -> Self {
        Self {
            config,
            id,
            sched: CfsScheduler::new(config.sched),
            procs: Vec::new(),
            free: Vec::new(),
            pid_slot: HashMap::default(),
            dram: Dram::new(config.dram),
            fs: SimFs::new(),
            rng: StdRng::seed_from_u64(config.seed),
            epoch: 0,
            next_pid: 1,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// This machine's cluster-wide identity.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The cluster-wide name of a local pid on this machine.
    pub fn global_pid(&self, pid: Pid) -> GlobalPid {
        GlobalPid {
            machine: self.id,
            pid,
        }
    }

    /// Replaces the victim filesystem (for ransomware scenarios).
    pub fn set_filesystem(&mut self, fs: SimFs) {
        self.fs = fs;
    }

    /// Read access to the victim filesystem.
    pub fn filesystem(&self) -> &SimFs {
        &self.fs
    }

    /// Write access to the victim filesystem (embedder-side mutation, e.g.
    /// cluster tests poking per-machine encryption state).
    pub fn filesystem_mut(&mut self) -> &mut SimFs {
        &mut self.fs
    }

    /// Cheap snapshot of the victim filesystem: the SoA layout shares the
    /// (potentially huge) size table and copies only the encrypted bitset
    /// and counters. Sweeps that measure many configurations against the
    /// same corpus snapshot once and [`Machine::restore_fs`] per run
    /// instead of regenerating millions of files.
    pub fn fs_snapshot(&self) -> SimFs {
        self.fs.clone()
    }

    /// Restores a filesystem snapshot taken with [`Machine::fs_snapshot`]
    /// (or any prebuilt [`SimFs`]).
    pub fn restore_fs(&mut self, snapshot: &SimFs) {
        self.fs = snapshot.clone();
    }

    /// Read access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn entry(&self, pid: Pid) -> Option<&ProcEntry> {
        let &slot = self.pid_slot.get(&pid.0)?;
        let p = self.procs[slot as usize].as_ref()?;
        debug_assert_eq!(p.pid, pid, "slab invariant: pid_slot maps to owner");
        Some(p)
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        let &slot = self.pid_slot.get(&pid.0)?;
        let p = self.procs[slot as usize].as_mut()?;
        debug_assert_eq!(p.pid, pid, "slab invariant: pid_slot maps to owner");
        Some(p)
    }

    /// Spawns a workload at nice level 0; returns its pid.
    ///
    /// The entry takes a slot freed by [`Machine::reap_dead`] when one is
    /// available, growing the slab only past its high-water mark of
    /// concurrent entries.
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.sched.add(pid, 0);
        let entry = ProcEntry {
            pid,
            workload,
            cpu: CpuController::default(),
            mem_limit_frac: 1.0,
            net: NetController::unlimited(),
            fs_share: 1.0,
            alive: true,
            completed: false,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.procs[slot as usize].is_none(), "free slot occupied");
                self.procs[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.procs.push(Some(entry));
                (self.procs.len() - 1) as u32
            }
        };
        self.pid_slot.insert(pid.0, slot);
        pid
    }

    /// Frees the slab slots of every dead (terminated or completed)
    /// process, returning how many were reaped. Their pids stop resolving
    /// — post-mortem inspection ([`Machine::is_completed`],
    /// [`Machine::workload_as`], …) must happen before the reap — and the
    /// freed slots are reused by later [`Machine::spawn`]s, so a machine
    /// under arrival/departure churn holds memory for its peak *live*
    /// population, not for everything that ever ran.
    pub fn reap_dead(&mut self) -> usize {
        let mut reaped = 0;
        for (i, slot) in self.procs.iter_mut().enumerate() {
            if slot.as_ref().is_some_and(|p| !p.alive) {
                let p = slot.take().expect("checked above");
                self.pid_slot.remove(&p.pid.0);
                self.free.push(i as u32);
                reaped += 1;
            }
        }
        reaped
    }

    /// Number of live (spawned, not yet terminated or completed) processes.
    pub fn tracked_live(&self) -> usize {
        self.procs.iter().flatten().filter(|p| p.alive).count()
    }

    /// Total slab slots (occupied + free): the slab's high-water mark of
    /// concurrent entries. Exposed so churn tests can pin that slot reuse
    /// actually bounds the slab.
    pub fn slab_slots(&self) -> usize {
        self.procs.len()
    }

    /// Slab slots currently free for reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Appends the pid of every live process to `out` (the decommission
    /// path: a cluster driver forgets these in its response engine before
    /// the machine is dropped).
    pub fn live_pids_into(&self, out: &mut Vec<Pid>) {
        out.extend(
            self.procs
                .iter()
                .flatten()
                .filter(|p| p.alive)
                .map(|p| p.pid),
        );
    }

    /// Whether a process is still alive (spawned, not terminated).
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.entry(pid).is_some_and(|p| p.alive)
    }

    /// Whether a process has completed its work.
    pub fn is_completed(&self, pid: Pid) -> bool {
        self.entry(pid).is_some_and(|p| p.completed)
    }

    /// Name of a process's workload, if it exists.
    pub fn name_of(&self, pid: Pid) -> Option<&str> {
        self.entry(pid).map(|p| p.workload.name())
    }

    /// Downcasts a process's workload to a concrete type for inspection
    /// (terminated processes remain inspectable).
    pub fn workload_as<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.entry(pid)
            .and_then(|p| p.workload.as_any().downcast_ref::<T>())
    }

    /// Terminates a process (Valkyrie's terminal response).
    pub fn terminate(&mut self, pid: Pid) {
        let Some(p) = self.entry_mut(pid) else {
            return;
        };
        p.alive = false;
        self.sched.remove(pid);
    }

    /// Maps a Valkyrie [`ResourceVector`] onto the machine's levers:
    /// CPU share → scheduler weight scale, memory share → cgroup limit,
    /// network share → bandwidth cap scale, fs share → file-rate share.
    pub fn apply_resources(&mut self, pid: Pid, r: &ResourceVector) {
        let Some(p) = self.entry_mut(pid) else {
            return;
        };
        p.cpu = CpuController::new(1.0); // weight-based throttling only
        p.mem_limit_frac = r.mem;
        if r.net < 1.0 || p.net.base_cap().is_some() {
            // Throttle, or restore a previously throttled cap to its base.
            // A never-throttled unlimited controller stays unshaped: a full
            // share must not materialise a nominal cap on it.
            p.net.apply_share(r.net);
        }
        p.fs_share = r.fs;
        self.sched.set_weight_scale(pid, r.cpu.max(1e-6));
    }

    /// Directly sets a CPU quota (cgroup `cpu.max` style), bypassing the
    /// scheduler-weight lever. Used by cgroup-actuator case studies.
    pub fn set_cpu_quota(&mut self, pid: Pid, quota: f64) {
        if let Some(p) = self.entry_mut(pid) {
            p.cpu = CpuController::new(quota);
        }
    }

    /// Sets the scheduler weight scale directly (Eq. 8 lever).
    pub fn set_weight_scale(&mut self, pid: Pid, scale: f64) {
        self.sched.set_weight_scale(pid, scale);
    }

    /// Sets the memory limit as a fraction of the workload's working set.
    pub fn set_memory_limit(&mut self, pid: Pid, frac: f64) {
        if let Some(p) = self.entry_mut(pid) {
            p.mem_limit_frac = frac.max(0.0);
        }
    }

    /// Caps the process's network bandwidth in bytes/second.
    pub fn set_network_cap(&mut self, pid: Pid, bytes_per_sec: f64) {
        if let Some(p) = self.entry_mut(pid) {
            p.net = NetController::with_cap(bytes_per_sec);
        }
    }

    /// Sets the file-access rate share in `[0, 1]`.
    pub fn set_fs_share(&mut self, pid: Pid, share: f64) {
        if let Some(p) = self.entry_mut(pid) {
            p.fs_share = share.clamp(0.0, 1.0);
        }
    }

    /// Runs one epoch, filling `out` with each live process's report in
    /// ascending-pid order. Allocation-free in steady state: the scheduler
    /// writes grants into its own scratch and `out` is reused by the caller.
    pub fn run_epoch_into(&mut self, out: &mut Vec<(Pid, EpochReport)>) {
        out.clear();
        let epoch_ticks = self.config.epoch_ticks;
        self.sched.run_ticks(epoch_ticks);
        let file_rate = FileRateLimiter::new(self.config.default_files_per_sec);
        let epoch = self.epoch;

        let sched = &mut self.sched;
        let dram = &mut self.dram;
        let fs = &mut self.fs;
        let rng = &mut self.rng;
        for p in self.procs.iter_mut().flatten() {
            if !p.alive {
                continue;
            }
            let pid = p.pid;
            let sched_grant = sched.granted(pid);
            let cpu_ticks = p.cpu.cap_ticks(epoch_ticks, sched_grant);
            let mem_eff = MemoryController::new(p.mem_limit_frac).efficiency();
            let fs_budget = file_rate
                .with_share(p.fs_share)
                .files_per_epoch(epoch_ticks);
            let mut ctx = EpochCtx {
                pid,
                epoch,
                cpu_ticks,
                epoch_ticks,
                mem_efficiency: mem_eff,
                fs_file_budget: fs_budget,
                net: &mut p.net,
                dram,
                fs,
                rng,
            };
            let report = p.workload.advance(&mut ctx);
            if report.completed {
                p.completed = true;
                p.alive = false;
                sched.remove(pid);
            }
            out.push((pid, report));
        }
        // Slab order is spawn order only until slots are reused; the
        // buffer's ascending-pid contract (`report_for` binary-searches it)
        // holds regardless. In-place and O(n) on an already-sorted buffer,
        // so the no-churn path pays next to nothing.
        out.sort_unstable_by_key(|&(pid, _)| pid);

        // Shared devices advance with wall-clock time.
        dram.advance_ms(epoch_ticks, rng);
        self.epoch += 1;
    }

    /// Runs one epoch and returns each live process's report. Thin
    /// allocating wrapper over [`Machine::run_epoch_into`], kept for API
    /// compatibility.
    pub fn run_epoch(&mut self) -> BTreeMap<Pid, EpochReport> {
        let mut out = Vec::with_capacity(self.procs.len());
        self.run_epoch_into(&mut out);
        out.into_iter().collect()
    }

    /// Runs `n` epochs, returning the final epoch's reports.
    pub fn run_epochs(&mut self, n: u64) -> BTreeMap<Pid, EpochReport> {
        let mut out = Vec::with_capacity(self.procs.len());
        for _ in 0..n {
            self.run_epoch_into(&mut out);
        }
        out.into_iter().collect()
    }

    /// Simulated time at the start of the current epoch.
    pub fn now(&self) -> Tick {
        Tick(self.epoch * self.config.epoch_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Spin {
        done_after: Option<u64>,
        epochs: u64,
    }

    impl Spin {
        fn forever() -> Self {
            Self {
                done_after: None,
                epochs: 0,
            }
        }
        fn for_epochs(n: u64) -> Self {
            Self {
                done_after: Some(n),
                epochs: 0,
            }
        }
    }

    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
            self.epochs += 1;
            EpochReport {
                progress: ctx.cpu_share(),
                hpc: HpcSample::zero(),
                completed: self.done_after.is_some_and(|n| self.epochs >= n),
            }
        }
    }

    #[test]
    fn lone_process_gets_full_epoch() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        let r = m.run_epoch();
        assert!((r[&pid].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_processes_share_the_cpu() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.spawn(Box::new(Spin::forever()));
        let b = m.spawn(Box::new(Spin::forever()));
        // Average over some epochs to smooth slicing.
        let mut pa = 0.0;
        let mut pb = 0.0;
        for _ in 0..10 {
            let r = m.run_epoch();
            pa += r[&a].progress;
            pb += r[&b].progress;
        }
        assert!((pa - 5.0).abs() < 1.0, "a got {pa}");
        assert!((pb - 5.0).abs() < 1.0, "b got {pb}");
    }

    #[test]
    fn weight_scale_starves_suspect() {
        let mut m = Machine::new(MachineConfig::default());
        let suspect = m.spawn(Box::new(Spin::forever()));
        let victim = m.spawn(Box::new(Spin::forever()));
        m.set_weight_scale(suspect, 0.01);
        let mut ps = 0.0;
        let mut pv = 0.0;
        for _ in 0..20 {
            let r = m.run_epoch();
            ps += r[&suspect].progress;
            pv += r[&victim].progress;
        }
        assert!(ps < pv / 5.0, "suspect {ps} vs victim {pv}");
    }

    #[test]
    fn cpu_quota_caps_lone_process() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        m.set_cpu_quota(pid, 0.25);
        let r = m.run_epoch();
        assert!(r[&pid].progress <= 0.25 + 1e-9);
    }

    #[test]
    fn apply_resources_maps_to_levers() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.spawn(Box::new(Spin::forever()));
        let _b = m.spawn(Box::new(Spin::forever()));
        m.apply_resources(a, &ResourceVector::new(0.1, 1.0, 1.0, 0.5));
        let mut pa = 0.0;
        for _ in 0..20 {
            pa += m.run_epoch()[&a].progress;
        }
        // Weight 0.1 vs 1.0 → expected share ≈ 0.1/1.1 ≈ 0.09.
        assert!(pa / 20.0 < 0.2, "share {}", pa / 20.0);
    }

    #[test]
    fn apply_resources_throttles_and_restores_the_net_cap() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        // A never-throttled process stays unshaped under a full share.
        m.apply_resources(pid, &ResourceVector::full());
        assert_eq!(m.entry(pid).unwrap().net.cap(), None);
        // Throttling every epoch holds the cap at base × share (no
        // geometric decay), and a full share restores the base cap.
        m.apply_resources(pid, &ResourceVector::new(1.0, 1.0, 0.5, 1.0));
        m.apply_resources(pid, &ResourceVector::new(1.0, 1.0, 0.5, 1.0));
        assert_eq!(m.entry(pid).unwrap().net.cap(), Some(0.5 * 1.024e12));
        m.apply_resources(pid, &ResourceVector::full());
        assert_eq!(m.entry(pid).unwrap().net.cap(), Some(1.024e12));
    }

    #[test]
    fn completion_removes_process() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::for_epochs(3)));
        for _ in 0..3 {
            m.run_epoch();
        }
        assert!(m.is_completed(pid));
        assert!(!m.is_alive(pid));
        let r = m.run_epoch();
        assert!(!r.contains_key(&pid));
    }

    #[test]
    fn termination_stops_scheduling() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        m.terminate(pid);
        assert!(!m.is_alive(pid));
        let r = m.run_epoch();
        assert!(r.is_empty());
    }

    #[test]
    fn epochs_advance_clock() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_epochs(5);
        assert_eq!(m.epoch(), 5);
        assert_eq!(m.now().as_millis(), 500);
    }

    #[test]
    fn run_epoch_into_reuses_the_buffer_and_sorts_by_pid() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.spawn(Box::new(Spin::forever()));
        let b = m.spawn(Box::new(Spin::forever()));
        let mut out = Vec::new();
        m.run_epoch_into(&mut out);
        let cap = out.capacity();
        assert_eq!(out.len(), 2);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(report_for(&out, a).is_some());
        assert!(report_for(&out, b).is_some());
        for _ in 0..50 {
            m.run_epoch_into(&mut out);
        }
        assert_eq!(out.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn machine_identity_names_global_pids() {
        let m = Machine::with_id(MachineConfig::default(), MachineId(7));
        assert_eq!(m.id(), MachineId(7));
        let gpid = m.global_pid(Pid(3));
        assert_eq!(gpid.machine, MachineId(7));
        assert_eq!(gpid.pid, Pid(3));
        // The default constructor is machine 0 — bare-pid compatible.
        assert_eq!(Machine::new(MachineConfig::default()).id(), MachineId(0));
    }

    /// Satellite regression: across many arrival/departure cycles the slab
    /// must neither leak slots (every dead entry's slot comes back) nor
    /// alias them (a reused slot must serve its new pid only, and reaped
    /// pids must stop resolving).
    #[test]
    fn slab_reuse_under_churn_neither_leaks_nor_aliases() {
        let mut m = Machine::new(MachineConfig::default());
        let mut out = Vec::new();
        let mut live: Vec<Pid> = Vec::new();
        let mut reaped_pids: Vec<Pid> = Vec::new();
        for cycle in 0..100u64 {
            // Arrivals: 4 per cycle.
            for _ in 0..4 {
                live.push(m.spawn(Box::new(Spin::forever())));
            }
            m.run_epoch_into(&mut out);
            assert_eq!(out.len(), live.len(), "cycle {cycle}");
            // Departures: terminate half, reap, and spawn replacements.
            let departing: Vec<Pid> = live.drain(..live.len() / 2).collect();
            for &pid in &departing {
                m.terminate(pid);
                assert!(!m.is_alive(pid));
            }
            assert_eq!(m.reap_dead(), departing.len());
            reaped_pids.extend(departing);
            assert_eq!(m.tracked_live(), live.len());
        }
        // No leak: the slab never grew past the peak concurrent population.
        let peak = live.len() + 4 + 2; // survivors + one cycle's arrivals, slack
        assert!(
            m.slab_slots() <= peak,
            "slab leaked: {} slots for {} live",
            m.slab_slots(),
            live.len()
        );
        assert_eq!(m.slab_slots() - m.tracked_live(), m.free_slots());
        // No alias: every reaped pid is gone, every live pid resolves to
        // its own entry, and pids were never reused.
        for pid in reaped_pids {
            assert!(!m.is_alive(pid), "{pid} resurrected");
            assert!(m.name_of(pid).is_none(), "{pid} still resolves");
        }
        let mut seen = std::collections::HashSet::new();
        for &pid in &live {
            assert!(m.is_alive(pid));
            assert!(seen.insert(pid), "duplicate pid {pid}");
        }
        // The epoch report covers exactly the live pids, sorted ascending.
        m.run_epoch_into(&mut out);
        assert_eq!(out.len(), live.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        let mut expected = live.clone();
        expected.sort_unstable();
        assert_eq!(out.iter().map(|&(p, _)| p).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn reaped_completed_process_frees_its_slot() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::for_epochs(1)));
        m.run_epoch();
        assert!(m.is_completed(pid)); // inspectable until the reap…
        assert_eq!(m.reap_dead(), 1);
        assert!(!m.is_completed(pid)); // …gone after it.
        assert_eq!(m.free_slots(), 1);
        // The freed slot is reused; the pid is not.
        let next = m.spawn(Box::new(Spin::forever()));
        assert_eq!(m.free_slots(), 0);
        assert_eq!(m.slab_slots(), 1);
        assert!(next.0 > pid.0, "pids must never be reused");
    }

    #[test]
    fn fs_snapshot_restores_encryption_state() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_filesystem(SimFs::uniform("/f", 100, 1000));
        let snap = m.fs_snapshot();
        assert_eq!(snap.len(), 100);
        // Mutate through a workload-style path.
        m.set_filesystem({
            let mut fs = snap.clone();
            fs.encrypt_file(3);
            fs
        });
        assert_eq!(m.filesystem().encrypted_files(), 1);
        m.restore_fs(&snap);
        assert_eq!(m.filesystem().encrypted_files(), 0);
        assert_eq!(m.filesystem().total_bytes(), 100 * 1000);
    }
}
