//! The simulated machine: scheduler + controllers + devices driving
//! [`Workload`]s epoch by epoch.
//!
//! A [`Machine`] is the substrate every experiment runs on. Each epoch
//! (100 ms) it:
//!
//! 1. runs the CFS scheduler to split the epoch's CPU ticks across runnable
//!    processes;
//! 2. applies per-process cgroup-style limits (CPU quota, memory limit,
//!    network cap, file-rate share);
//! 3. calls every live workload's [`Workload::advance`] with the granted
//!    resources, collecting per-epoch progress and HPC samples;
//! 4. advances shared devices (DRAM refresh windows).
//!
//! Valkyrie's engine plugs in through [`Machine::apply_resources`] (mapping a
//! [`ResourceVector`] onto scheduler weight / quotas) and
//! [`Machine::terminate`].

use crate::cgroup::{CpuController, FileRateLimiter, MemoryController};
use crate::clock::{Tick, EPOCH_TICKS};
use crate::dram::{Dram, DramConfig};
use crate::fs::SimFs;
use crate::net::NetController;
use crate::pid::Pid;
use crate::sched::{CfsScheduler, SchedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use valkyrie_core::ResourceVector;
use valkyrie_hpc::HpcSample;

/// Per-epoch execution context handed to a workload.
///
/// Everything a workload may touch during one epoch: its granted CPU time,
/// the efficiency/budget effects of the resource controllers, the shared
/// devices and a deterministic RNG.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// The workload's process id.
    pub pid: Pid,
    /// Current epoch index (0-based).
    pub epoch: u64,
    /// CPU ticks granted this epoch (after scheduler + quota).
    pub cpu_ticks: u64,
    /// Ticks in a full epoch.
    pub epoch_ticks: u64,
    /// Memory-thrashing efficiency factor in `(0, 1]`.
    pub mem_efficiency: f64,
    /// Files the workload may open this epoch.
    pub fs_file_budget: f64,
    /// Network controller (hard cap + shaping).
    pub net: &'a mut NetController,
    /// Shared DRAM bank.
    pub dram: &'a mut Dram,
    /// Shared victim filesystem.
    pub fs: &'a mut SimFs,
    /// Deterministic per-machine RNG.
    pub rng: &'a mut StdRng,
}

impl EpochCtx<'_> {
    /// Fraction of the epoch the workload was allowed to run.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_ticks as f64 / self.epoch_ticks as f64
    }
}

/// What a workload accomplished in one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Progress in workload-specific units (bytes encrypted, hashes
    /// computed, samples captured, …). `B_i(R_i)` in the paper.
    pub progress: f64,
    /// The HPC measurement the detector will see for this epoch.
    pub hpc: HpcSample,
    /// True when the workload finished its work this epoch.
    pub completed: bool,
}

impl EpochReport {
    /// A report with no progress and an all-zero HPC sample.
    pub fn idle() -> Self {
        Self {
            progress: 0.0,
            hpc: HpcSample::zero(),
            completed: false,
        }
    }
}

/// A simulated process: advances once per epoch under granted resources.
pub trait Workload: std::any::Any {
    /// Human-readable name (benchmark or attack identifier).
    fn name(&self) -> &str;

    /// Executes one epoch under the granted resources.
    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport;

    /// Working-set size in bytes (used by the memory controller); `None`
    /// means the workload is insensitive to memory limits.
    fn working_set_bytes(&self) -> Option<u64> {
        None
    }

    /// Type-erased self, so embedders can inspect concrete workload state
    /// (e.g. an attack's guessing entropy) while it runs on a machine.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Machine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Ticks per epoch (default 100 = 100 ms).
    pub epoch_ticks: u64,
    /// Scheduler tuning.
    pub sched: SchedConfig,
    /// DRAM model parameters.
    pub dram: DramConfig,
    /// Unrestricted file-open rate, files/second.
    pub default_files_per_sec: f64,
    /// RNG seed (the whole simulation is deterministic given this).
    pub seed: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            epoch_ticks: EPOCH_TICKS,
            sched: SchedConfig::default(),
            dram: DramConfig::ddr3_1333(),
            default_files_per_sec: 100.0,
            seed: 0x7A1C_F00D,
        }
    }
}

#[derive(Debug)]
struct ProcEntry {
    workload: Box<dyn Workload>,
    cpu: CpuController,
    mem_limit_frac: f64,
    net: NetController,
    fs_share: f64,
    alive: bool,
    completed: bool,
}

impl std::fmt::Debug for dyn Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({})", self.name())
    }
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::machine::{EpochCtx, EpochReport, Machine, MachineConfig, Workload};
/// use valkyrie_hpc::HpcSample;
///
/// struct Spin;
/// impl Workload for Spin {
///     fn name(&self) -> &str { "spin" }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
///         EpochReport { progress: ctx.cpu_share(), hpc: HpcSample::zero(), completed: false }
///     }
/// }
///
/// let mut m = Machine::new(MachineConfig::default());
/// let pid = m.spawn(Box::new(Spin));
/// let reports = m.run_epoch();
/// assert!((reports[&pid].progress - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    sched: CfsScheduler,
    procs: BTreeMap<Pid, ProcEntry>,
    dram: Dram,
    fs: SimFs,
    rng: StdRng,
    epoch: u64,
    next_pid: u64,
}

impl Machine {
    /// Boots an empty machine.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            config,
            sched: CfsScheduler::new(config.sched),
            procs: BTreeMap::new(),
            dram: Dram::new(config.dram),
            fs: SimFs::new(),
            rng: StdRng::seed_from_u64(config.seed),
            epoch: 0,
            next_pid: 1,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Replaces the victim filesystem (for ransomware scenarios).
    pub fn set_filesystem(&mut self, fs: SimFs) {
        self.fs = fs;
    }

    /// Read access to the victim filesystem.
    pub fn filesystem(&self) -> &SimFs {
        &self.fs
    }

    /// Read access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Spawns a workload at nice level 0; returns its pid.
    pub fn spawn(&mut self, workload: Box<dyn Workload>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.sched.add(pid, 0);
        self.procs.insert(
            pid,
            ProcEntry {
                workload,
                cpu: CpuController::default(),
                mem_limit_frac: 1.0,
                net: NetController::unlimited(),
                fs_share: 1.0,
                alive: true,
                completed: false,
            },
        );
        pid
    }

    /// Whether a process is still alive (spawned, not terminated).
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(|p| p.alive)
    }

    /// Whether a process has completed its work.
    pub fn is_completed(&self, pid: Pid) -> bool {
        self.procs.get(&pid).is_some_and(|p| p.completed)
    }

    /// Name of a process's workload, if it exists.
    pub fn name_of(&self, pid: Pid) -> Option<&str> {
        self.procs.get(&pid).map(|p| p.workload.name())
    }

    /// Downcasts a process's workload to a concrete type for inspection
    /// (terminated processes remain inspectable).
    pub fn workload_as<T: 'static>(&self, pid: Pid) -> Option<&T> {
        self.procs
            .get(&pid)
            .and_then(|p| p.workload.as_any().downcast_ref::<T>())
    }

    /// Terminates a process (Valkyrie's terminal response).
    pub fn terminate(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.alive = false;
            self.sched.remove(pid);
        }
    }

    /// Maps a Valkyrie [`ResourceVector`] onto the machine's levers:
    /// CPU share → scheduler weight scale, memory share → cgroup limit,
    /// network share → bandwidth cap scale, fs share → file-rate share.
    pub fn apply_resources(&mut self, pid: Pid, r: &ResourceVector) {
        if let Some(p) = self.procs.get_mut(&pid) {
            self.sched.set_weight_scale(pid, r.cpu.max(1e-6));
            p.cpu = CpuController::new(1.0); // weight-based throttling only
            p.mem_limit_frac = r.mem;
            if r.net < 1.0 {
                p.net.apply_share(r.net);
            }
            p.fs_share = r.fs;
        }
    }

    /// Directly sets a CPU quota (cgroup `cpu.max` style), bypassing the
    /// scheduler-weight lever. Used by cgroup-actuator case studies.
    pub fn set_cpu_quota(&mut self, pid: Pid, quota: f64) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.cpu = CpuController::new(quota);
        }
    }

    /// Sets the scheduler weight scale directly (Eq. 8 lever).
    pub fn set_weight_scale(&mut self, pid: Pid, scale: f64) {
        self.sched.set_weight_scale(pid, scale);
    }

    /// Sets the memory limit as a fraction of the workload's working set.
    pub fn set_memory_limit(&mut self, pid: Pid, frac: f64) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.mem_limit_frac = frac.max(0.0);
        }
    }

    /// Caps the process's network bandwidth in bytes/second.
    pub fn set_network_cap(&mut self, pid: Pid, bytes_per_sec: f64) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.net = NetController::with_cap(bytes_per_sec);
        }
    }

    /// Sets the file-access rate share in `[0, 1]`.
    pub fn set_fs_share(&mut self, pid: Pid, share: f64) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.fs_share = share.clamp(0.0, 1.0);
        }
    }

    /// Runs one epoch and returns each live process's report.
    pub fn run_epoch(&mut self) -> BTreeMap<Pid, EpochReport> {
        let epoch_ticks = self.config.epoch_ticks;
        let granted = self.sched.run(epoch_ticks);
        let mut reports = BTreeMap::new();
        let file_rate = FileRateLimiter::new(self.config.default_files_per_sec);

        let pids: Vec<Pid> = self
            .procs
            .iter()
            .filter(|(_, p)| p.alive)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in pids {
            let p = self.procs.get_mut(&pid).expect("pid filtered above");
            let sched_grant = granted.get(&pid).copied().unwrap_or(0);
            let cpu_ticks = p.cpu.cap_ticks(epoch_ticks, sched_grant);
            let mem_eff = MemoryController::new(p.mem_limit_frac).efficiency();
            let fs_budget = file_rate
                .with_share(p.fs_share)
                .files_per_epoch(epoch_ticks);
            let mut ctx = EpochCtx {
                pid,
                epoch: self.epoch,
                cpu_ticks,
                epoch_ticks,
                mem_efficiency: mem_eff,
                fs_file_budget: fs_budget,
                net: &mut p.net,
                dram: &mut self.dram,
                fs: &mut self.fs,
                rng: &mut self.rng,
            };
            let report = p.workload.advance(&mut ctx);
            if report.completed {
                p.completed = true;
                p.alive = false;
                self.sched.remove(pid);
            }
            reports.insert(pid, report);
        }

        // Shared devices advance with wall-clock time.
        self.dram.advance_ms(epoch_ticks, &mut self.rng);
        self.epoch += 1;
        reports
    }

    /// Runs `n` epochs, returning the final epoch's reports.
    pub fn run_epochs(&mut self, n: u64) -> BTreeMap<Pid, EpochReport> {
        let mut last = BTreeMap::new();
        for _ in 0..n {
            last = self.run_epoch();
        }
        last
    }

    /// Simulated time at the start of the current epoch.
    pub fn now(&self) -> Tick {
        Tick(self.epoch * self.config.epoch_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Spin {
        done_after: Option<u64>,
        epochs: u64,
    }

    impl Spin {
        fn forever() -> Self {
            Self {
                done_after: None,
                epochs: 0,
            }
        }
        fn for_epochs(n: u64) -> Self {
            Self {
                done_after: Some(n),
                epochs: 0,
            }
        }
    }

    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
            self.epochs += 1;
            EpochReport {
                progress: ctx.cpu_share(),
                hpc: HpcSample::zero(),
                completed: self.done_after.is_some_and(|n| self.epochs >= n),
            }
        }
    }

    #[test]
    fn lone_process_gets_full_epoch() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        let r = m.run_epoch();
        assert!((r[&pid].progress - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_processes_share_the_cpu() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.spawn(Box::new(Spin::forever()));
        let b = m.spawn(Box::new(Spin::forever()));
        // Average over some epochs to smooth slicing.
        let mut pa = 0.0;
        let mut pb = 0.0;
        for _ in 0..10 {
            let r = m.run_epoch();
            pa += r[&a].progress;
            pb += r[&b].progress;
        }
        assert!((pa - 5.0).abs() < 1.0, "a got {pa}");
        assert!((pb - 5.0).abs() < 1.0, "b got {pb}");
    }

    #[test]
    fn weight_scale_starves_suspect() {
        let mut m = Machine::new(MachineConfig::default());
        let suspect = m.spawn(Box::new(Spin::forever()));
        let victim = m.spawn(Box::new(Spin::forever()));
        m.set_weight_scale(suspect, 0.01);
        let mut ps = 0.0;
        let mut pv = 0.0;
        for _ in 0..20 {
            let r = m.run_epoch();
            ps += r[&suspect].progress;
            pv += r[&victim].progress;
        }
        assert!(ps < pv / 5.0, "suspect {ps} vs victim {pv}");
    }

    #[test]
    fn cpu_quota_caps_lone_process() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        m.set_cpu_quota(pid, 0.25);
        let r = m.run_epoch();
        assert!(r[&pid].progress <= 0.25 + 1e-9);
    }

    #[test]
    fn apply_resources_maps_to_levers() {
        let mut m = Machine::new(MachineConfig::default());
        let a = m.spawn(Box::new(Spin::forever()));
        let _b = m.spawn(Box::new(Spin::forever()));
        m.apply_resources(a, &ResourceVector::new(0.1, 1.0, 1.0, 0.5));
        let mut pa = 0.0;
        for _ in 0..20 {
            pa += m.run_epoch()[&a].progress;
        }
        // Weight 0.1 vs 1.0 → expected share ≈ 0.1/1.1 ≈ 0.09.
        assert!(pa / 20.0 < 0.2, "share {}", pa / 20.0);
    }

    #[test]
    fn completion_removes_process() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::for_epochs(3)));
        for _ in 0..3 {
            m.run_epoch();
        }
        assert!(m.is_completed(pid));
        assert!(!m.is_alive(pid));
        let r = m.run_epoch();
        assert!(!r.contains_key(&pid));
    }

    #[test]
    fn termination_stops_scheduling() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Spin::forever()));
        m.terminate(pid);
        assert!(!m.is_alive(pid));
        let r = m.run_epoch();
        assert!(r.is_empty());
    }

    #[test]
    fn epochs_advance_clock() {
        let mut m = Machine::new(MachineConfig::default());
        m.run_epochs(5);
        assert_eq!(m.epoch(), 5);
        assert_eq!(m.now().as_millis(), 500);
    }
}
