//! The cluster: a slab of [`Machine`]s under one pid namespace.
//!
//! A [`Cluster`] scales the substrate from one machine to a fleet. Three
//! design points make machine populations of 100k+ practical:
//!
//! - **Shared corpora.** Booting a machine does not regenerate its victim
//!   filesystem: the cluster holds one prebuilt [`SimFs`] template and
//!   every boot restores it through the [`Machine::restore_fs`] snapshot
//!   path — the SoA layout `Arc`-shares the (potentially huge) size table
//!   and copies only the per-machine encryption state, so a boot costs
//!   microseconds however large the corpus is.
//! - **Slot reuse, fresh identities.** Decommissioned machines free their
//!   slab slot for later boots, bounding memory by the peak live machine
//!   count under churn — but [`MachineId`]s are handed out sequentially
//!   and never reused (the 24-bit id space of
//!   [`ProcessId::from_parts`](valkyrie_core::ProcessId::from_parts)
//!   allows 16.7 M boots), so a process of a decommissioned machine can
//!   never be confused with one of the machine that inherited its slot.
//! - **One pid namespace.** Every process is named by a [`GlobalPid`];
//!   [`Cluster::run_epoch_into`] reports the whole fleet's epoch in
//!   ascending `(machine, pid)` order, ready to feed a
//!   `FleetEngine` keyed by packed
//!   [`ProcessId`](valkyrie_core::ProcessId)s.
//!
//! Determinism: each machine derives its RNG seed from the cluster seed
//! and its (never-reused) id via [`Cluster::seed_for`], so a fleet run is
//! reproducible under any boot/decommission history, and a machine's
//! behaviour is independent of which slot it landed in.

use crate::fs::SimFs;
use crate::machine::{EpochReport, Machine, MachineConfig, Workload};
use crate::pid::{GlobalPid, MachineId, Pid};
use std::collections::HashMap;
use valkyrie_core::hash::{mix64, FxBuildHasher};

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Template for every machine's configuration. The per-machine `seed`
    /// is overridden by [`Cluster::seed_for`]; everything else applies
    /// verbatim.
    pub machine: MachineConfig,
    /// Prebuilt victim filesystem installed (via the snapshot path) on
    /// every booted machine; `None` boots machines with an empty
    /// filesystem.
    pub fs_template: Option<SimFs>,
    /// Cluster RNG seed, mixed into every machine's seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            fs_template: None,
            seed: 0xC1_05_7E_12,
        }
    }
}

/// A slab of simulated machines sharing one filesystem corpus and one
/// cluster-wide pid namespace.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::cluster::{Cluster, ClusterConfig};
/// use valkyrie_sim::fs::SimFs;
///
/// let mut cluster = Cluster::new(ClusterConfig {
///     fs_template: Some(SimFs::uniform("/srv", 1000, 4096)),
///     ..ClusterConfig::default()
/// });
/// let a = cluster.boot();
/// let b = cluster.boot();
/// assert_ne!(a, b);
/// assert_eq!(cluster.live_machines(), 2);
/// assert_eq!(cluster.machine(a).unwrap().filesystem().len(), 1000);
/// cluster.decommission(a);
/// assert_eq!(cluster.live_machines(), 1);
/// ```
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    /// Machine slab; decommissions free slots for later boots.
    slots: Vec<Option<Machine>>,
    /// Freed slab slots awaiting reuse (LIFO).
    free: Vec<u32>,
    /// Machine id → slab slot for every live machine.
    id_slot: HashMap<u32, u32, FxBuildHasher>,
    next_id: u32,
    booted_total: u64,
    decommissioned_total: u64,
    /// Per-machine report scratch reused across [`Cluster::run_epoch_into`]
    /// calls.
    scratch: Vec<(Pid, EpochReport)>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            slots: Vec::new(),
            free: Vec::new(),
            id_slot: HashMap::default(),
            next_id: 0,
            booted_total: 0,
            decommissioned_total: 0,
            scratch: Vec::new(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The RNG seed machine `id` boots with: a pure function of the
    /// cluster seed and the machine id, so any machine's behaviour can be
    /// reproduced standalone by building a [`Machine`] with this seed.
    pub fn seed_for(&self, id: MachineId) -> u64 {
        mix64(self.config.seed ^ u64::from(id.0).rotate_left(32))
    }

    /// Boots a fresh machine and returns its (never reused) id. The
    /// machine takes a decommissioned slot when one is free, and starts
    /// with the cluster's filesystem template installed through the cheap
    /// snapshot path.
    pub fn boot(&mut self) -> MachineId {
        let id = MachineId(self.next_id);
        self.next_id += 1;
        self.booted_total += 1;
        let machine_config = MachineConfig {
            seed: self.seed_for(id),
            ..self.config.machine
        };
        let mut machine = Machine::with_id(machine_config, id);
        if let Some(template) = &self.config.fs_template {
            machine.restore_fs(template);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none(), "free slot occupied");
                self.slots[slot as usize] = Some(machine);
                slot
            }
            None => {
                self.slots.push(Some(machine));
                (self.slots.len() - 1) as u32
            }
        };
        self.id_slot.insert(id.0, slot);
        id
    }

    /// Decommissions a machine, freeing its slot (and every process on
    /// it). Returns the machine so the caller can run post-mortems — e.g.
    /// collect its live pids to forget in a response engine. A no-op
    /// returning `None` for unknown or already-decommissioned ids.
    pub fn decommission(&mut self, id: MachineId) -> Option<Machine> {
        let slot = self.id_slot.remove(&id.0)?;
        let machine = self.slots[slot as usize].take();
        debug_assert!(machine.is_some(), "id_slot maps to live machines only");
        self.free.push(slot);
        self.decommissioned_total += 1;
        machine
    }

    /// Read access to a live machine.
    pub fn machine(&self, id: MachineId) -> Option<&Machine> {
        let &slot = self.id_slot.get(&id.0)?;
        self.slots[slot as usize].as_ref()
    }

    /// Write access to a live machine.
    pub fn machine_mut(&mut self, id: MachineId) -> Option<&mut Machine> {
        let &slot = self.id_slot.get(&id.0)?;
        self.slots[slot as usize].as_mut()
    }

    /// Spawns a workload on machine `id`, returning the process's
    /// cluster-wide name (`None` if the machine is not live).
    pub fn spawn(&mut self, id: MachineId, workload: Box<dyn Workload>) -> Option<GlobalPid> {
        let machine = self.machine_mut(id)?;
        let pid = machine.spawn(workload);
        Some(GlobalPid { machine: id, pid })
    }

    /// Machines currently live.
    pub fn live_machines(&self) -> usize {
        self.id_slot.len()
    }

    /// Machines booted over the cluster's lifetime.
    pub fn booted_total(&self) -> u64 {
        self.booted_total
    }

    /// Machines decommissioned over the cluster's lifetime.
    pub fn decommissioned_total(&self) -> u64 {
        self.decommissioned_total
    }

    /// Machine slab slots (live + free): the peak concurrent machine
    /// count, pinned by churn tests the same way as the process slab.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the live machines in slab order.
    pub fn machines(&self) -> impl Iterator<Item = &Machine> {
        self.slots.iter().flatten()
    }

    /// Iterates mutably over the live machines in slab order.
    pub fn machines_mut(&mut self) -> impl Iterator<Item = &mut Machine> {
        self.slots.iter_mut().flatten()
    }

    /// Runs one epoch on every live machine, filling `out` with the whole
    /// fleet's reports in ascending [`GlobalPid`] order (machine-major).
    /// Reuses internal per-machine scratch; `out` is reused by the caller,
    /// so the steady state allocates nothing.
    pub fn run_epoch_into(&mut self, out: &mut Vec<(GlobalPid, EpochReport)>) {
        out.clear();
        for machine in self.slots.iter_mut().flatten() {
            machine.run_epoch_into(&mut self.scratch);
            let id = machine.id();
            out.extend(
                self.scratch
                    .iter()
                    .map(|&(pid, report)| (GlobalPid { machine: id, pid }, report)),
            );
        }
        // Slab order is boot order only until slots are reused; the
        // machine-major contract must hold regardless. In-place and cheap
        // when already sorted (each machine's run is ascending already).
        out.sort_unstable_by_key(|&(gpid, _)| gpid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::EpochCtx;
    use valkyrie_hpc::HpcSample;

    struct Spin;
    impl Workload for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
            EpochReport {
                progress: ctx.cpu_share(),
                hpc: HpcSample::zero(),
                completed: false,
            }
        }
    }

    #[test]
    fn boot_ids_are_fresh_even_when_slots_recycle() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let a = cluster.boot();
        let b = cluster.boot();
        cluster.decommission(a);
        let c = cluster.boot(); // reuses a's slot…
        assert_eq!(cluster.slab_slots(), 2);
        assert!(c.0 > b.0, "…but not a's id");
        assert!(cluster.machine(a).is_none());
        assert!(cluster.machine(c).is_some());
        assert_eq!(cluster.booted_total(), 3);
        assert_eq!(cluster.decommissioned_total(), 1);
    }

    #[test]
    fn machines_share_the_corpus_but_not_encryption_state() {
        let mut cluster = Cluster::new(ClusterConfig {
            fs_template: Some(SimFs::uniform("/srv", 50, 1000)),
            ..ClusterConfig::default()
        });
        let a = cluster.boot();
        let b = cluster.boot();
        cluster
            .machine_mut(a)
            .unwrap()
            .filesystem_mut()
            .encrypt_file(0);
        assert_eq!(
            cluster.machine(a).unwrap().filesystem().encrypted_files(),
            1
        );
        assert_eq!(
            cluster.machine(b).unwrap().filesystem().encrypted_files(),
            0
        );
    }

    #[test]
    fn epoch_reports_are_global_pid_sorted_across_churn() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let a = cluster.boot();
        let b = cluster.boot();
        let ga = cluster.spawn(a, Box::new(Spin)).unwrap();
        let gb = cluster.spawn(b, Box::new(Spin)).unwrap();
        let mut out = Vec::new();
        cluster.run_epoch_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, ga);
        assert_eq!(out[1].0, gb);
        // Churn: drop machine a, boot c into its slot. Slab order now
        // disagrees with id order; the output must still be sorted.
        cluster.decommission(a);
        let c = cluster.boot();
        cluster.spawn(c, Box::new(Spin)).unwrap();
        cluster.run_epoch_into(&mut out);
        assert_eq!(out.len(), 2);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(out[0].0.machine, b);
        assert_eq!(out[1].0.machine, c);
        let _ = gb;
    }

    #[test]
    fn seeds_are_reproducible_and_per_machine() {
        let cluster = Cluster::new(ClusterConfig::default());
        let other = Cluster::new(ClusterConfig::default());
        assert_eq!(cluster.seed_for(MachineId(5)), other.seed_for(MachineId(5)));
        assert_ne!(
            cluster.seed_for(MachineId(5)),
            cluster.seed_for(MachineId(6))
        );
        // A machine's seed survives slot recycling: it depends on the id,
        // not the slot.
        let mut churned = Cluster::new(ClusterConfig::default());
        let a = churned.boot();
        churned.decommission(a);
        let b = churned.boot();
        assert_eq!(
            churned.machine(b).unwrap().config().seed,
            churned.seed_for(b)
        );
        assert_ne!(churned.seed_for(a), churned.seed_for(b));
    }

    #[test]
    fn decommission_returns_the_machine_for_post_mortem() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let id = cluster.boot();
        cluster.spawn(id, Box::new(Spin)).unwrap();
        let machine = cluster.decommission(id).expect("was live");
        let mut pids = Vec::new();
        machine.live_pids_into(&mut pids);
        assert_eq!(pids.len(), 1);
        assert!(cluster.decommission(id).is_none(), "double decommission");
    }
}
