//! A Completely-Fair-Scheduler (CFS) model.
//!
//! Mirrors the Linux CFS behaviour Valkyrie's OS-scheduler actuator relies
//! on (paper Section VI-A): runnable entities carry a *weight*; timeslices
//! are allocated in proportion to relative weight (Eq. 7,
//! `Δ_ts = Δ_tl · w_t / Σ w`), and the entity with the minimum virtual
//! runtime runs next. Weights follow the kernel's 40-level nice table
//! (×1.25 per level). Valkyrie throttles a process by scaling its weight
//! ([`CfsScheduler::set_weight_scale`], the lever behind Eq. 8).

use crate::pid::Pid;
use std::collections::BTreeMap;

/// Weight of nice level 0 in the kernel's table.
pub const NICE_0_WEIGHT: f64 = 1024.0;

/// Number of discrete nice levels (-20 ..= 19).
pub const NICE_LEVELS: i32 = 40;

/// Kernel weight law: each nice level changes the weight by ×1.25.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::sched::nice_to_weight;
/// assert_eq!(nice_to_weight(0), 1024.0);
/// assert!(nice_to_weight(-5) > nice_to_weight(0));
/// assert!(nice_to_weight(19) < nice_to_weight(0));
/// ```
pub fn nice_to_weight(nice: i32) -> f64 {
    let nice = nice.clamp(-20, 19);
    NICE_0_WEIGHT / 1.25_f64.powi(nice)
}

/// Scheduler tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Target latency `Δ_tl` in ticks: every runnable entity runs once per
    /// period of this length (when possible).
    pub target_latency: u64,
    /// Minimum timeslice in ticks, preventing over-slicing with many tasks.
    pub min_granularity: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            target_latency: 24,
            min_granularity: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct SchedEntity {
    base_weight: f64,
    /// Valkyrie's lever: relative weight scale `s` in `(0, 1]`.
    scale: f64,
    vruntime: f64,
    runnable: bool,
}

impl SchedEntity {
    fn weight(&self) -> f64 {
        (self.base_weight * self.scale).max(1e-9)
    }
}

/// The CFS scheduler model.
///
/// # Examples
///
/// Two equal-priority tasks split the CPU evenly; scaling one task's weight
/// to 10 % starves it proportionally:
///
/// ```
/// use valkyrie_sim::sched::{CfsScheduler, SchedConfig};
/// use valkyrie_sim::pid::Pid;
/// let mut s = CfsScheduler::new(SchedConfig::default());
/// s.add(Pid(1), 0);
/// s.add(Pid(2), 0);
/// let granted = s.run(1000);
/// assert!((granted[&Pid(1)] as f64 - 500.0).abs() < 50.0);
///
/// s.set_weight_scale(Pid(1), 0.1);
/// let granted = s.run(1100);
/// assert!(granted[&Pid(1)] < granted[&Pid(2)] / 5);
/// ```
#[derive(Debug, Clone)]
pub struct CfsScheduler {
    config: SchedConfig,
    entities: BTreeMap<Pid, SchedEntity>,
}

impl CfsScheduler {
    /// Creates an empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        Self {
            config,
            entities: BTreeMap::new(),
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Registers a runnable process at the given nice level.
    ///
    /// New entities start at the current minimum vruntime, as in the kernel,
    /// so they cannot monopolise the CPU to "catch up".
    pub fn add(&mut self, pid: Pid, nice: i32) {
        let min_vr = self.min_vruntime();
        self.entities.insert(
            pid,
            SchedEntity {
                base_weight: nice_to_weight(nice),
                scale: 1.0,
                vruntime: min_vr,
                runnable: true,
            },
        );
    }

    /// Deregisters a process.
    pub fn remove(&mut self, pid: Pid) {
        self.entities.remove(&pid);
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when no process is registered.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Sets the relative weight scale `s ∈ (0, 1]` of a process — the lever
    /// Valkyrie's Eq. 8 actuator drives. Values are clamped to
    /// `[1e-6, 1.0]`.
    pub fn set_weight_scale(&mut self, pid: Pid, scale: f64) {
        if let Some(e) = self.entities.get_mut(&pid) {
            e.scale = scale.clamp(1e-6, 1.0);
        }
    }

    /// Current weight scale of a process (1.0 if unknown).
    pub fn weight_scale(&self, pid: Pid) -> f64 {
        self.entities.get(&pid).map_or(1.0, |e| e.scale)
    }

    /// Marks a process runnable or blocked.
    pub fn set_runnable(&mut self, pid: Pid, runnable: bool) {
        if let Some(e) = self.entities.get_mut(&pid) {
            e.runnable = runnable;
        }
    }

    /// Eq. 7 timeslice for `pid` given the current runnable set.
    pub fn timeslice(&self, pid: Pid) -> u64 {
        let total: f64 = self
            .entities
            .values()
            .filter(|e| e.runnable)
            .map(SchedEntity::weight)
            .sum();
        let Some(e) = self.entities.get(&pid) else {
            return 0;
        };
        if !e.runnable || total <= 0.0 {
            return 0;
        }
        let slice = self.config.target_latency as f64 * e.weight() / total;
        (slice.round() as u64).max(self.config.min_granularity)
    }

    /// Runs the simulated CPU for `ticks`, returning the ticks granted to
    /// each process. Idle time (no runnable entity) is simply lost.
    pub fn run(&mut self, ticks: u64) -> BTreeMap<Pid, u64> {
        let mut granted: BTreeMap<Pid, u64> = BTreeMap::new();
        let mut remaining = ticks;
        while remaining > 0 {
            // Pick the runnable entity with minimum vruntime.
            let Some((&pid, _)) =
                self.entities
                    .iter()
                    .filter(|(_, e)| e.runnable)
                    .min_by(|a, b| {
                        a.1.vruntime
                            .partial_cmp(&b.1.vruntime)
                            .expect("vruntime is finite")
                    })
            else {
                break; // idle
            };
            let slice = self.timeslice(pid).min(remaining).max(1);
            let e = self.entities.get_mut(&pid).expect("entity exists");
            e.vruntime += slice as f64 * (NICE_0_WEIGHT / e.weight());
            *granted.entry(pid).or_insert(0) += slice;
            remaining -= slice;
        }
        granted
    }

    fn min_vruntime(&self) -> f64 {
        self.entities
            .values()
            .map(|e| e.vruntime)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler_with(n: usize) -> CfsScheduler {
        let mut s = CfsScheduler::new(SchedConfig::default());
        for i in 0..n {
            s.add(Pid(i as u64 + 1), 0);
        }
        s
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut s = scheduler_with(4);
        let granted = s.run(4000);
        for pid in 1..=4 {
            let g = granted[&Pid(pid)];
            assert!((g as i64 - 1000).unsigned_abs() < 100, "pid {pid}: {g}");
        }
    }

    #[test]
    fn grants_conserve_cpu_time() {
        let mut s = scheduler_with(3);
        let granted = s.run(997);
        let total: u64 = granted.values().sum();
        assert_eq!(total, 997);
    }

    #[test]
    fn nice_levels_shift_share() {
        let mut s = CfsScheduler::new(SchedConfig::default());
        s.add(Pid(1), 0);
        s.add(Pid(2), 5); // lower priority
        let granted = s.run(4000);
        // weight ratio = 1.25^5 ≈ 3.05
        let ratio = granted[&Pid(1)] as f64 / granted[&Pid(2)] as f64;
        assert!((ratio - 3.05).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn weight_scale_throttles_proportionally() {
        let mut s = scheduler_with(2);
        s.set_weight_scale(Pid(1), 0.1);
        let granted = s.run(11_000);
        // Expected shares: 0.1/1.1 vs 1.0/1.1.
        let share = granted[&Pid(1)] as f64 / 11_000.0;
        assert!((share - 0.0909).abs() < 0.03, "share {share}");
    }

    #[test]
    fn blocked_entities_get_nothing() {
        let mut s = scheduler_with(2);
        s.set_runnable(Pid(2), false);
        let granted = s.run(500);
        assert_eq!(granted.get(&Pid(2)), None);
        assert_eq!(granted[&Pid(1)], 500);
    }

    #[test]
    fn idle_when_nothing_runnable() {
        let mut s = scheduler_with(1);
        s.set_runnable(Pid(1), false);
        let granted = s.run(100);
        assert!(granted.is_empty());
    }

    #[test]
    fn new_task_starts_at_min_vruntime() {
        let mut s = scheduler_with(1);
        s.run(10_000);
        s.add(Pid(99), 0);
        let granted = s.run(1000);
        // The newcomer must not monopolise the CPU: roughly half each.
        let g = granted[&Pid(99)];
        assert!(g < 700, "newcomer got {g}/1000");
    }

    #[test]
    fn timeslice_matches_eq7() {
        let mut s = CfsScheduler::new(SchedConfig {
            target_latency: 20,
            min_granularity: 1,
        });
        s.add(Pid(1), 0);
        s.add(Pid(2), 0);
        s.add(Pid(3), 0);
        s.add(Pid(4), 0);
        // Equal weights: Δ_ts = 20 / 4 = 5.
        assert_eq!(s.timeslice(Pid(1)), 5);
        s.set_weight_scale(Pid(1), 0.5);
        // w = 0.5, Σw = 3.5 → 20 * 0.5/3.5 ≈ 2.86 → 3.
        assert_eq!(s.timeslice(Pid(1)), 3);
    }

    #[test]
    fn min_granularity_floors_timeslice() {
        let mut s = CfsScheduler::new(SchedConfig {
            target_latency: 10,
            min_granularity: 4,
        });
        for i in 0..10 {
            s.add(Pid(i), 0);
        }
        assert_eq!(s.timeslice(Pid(0)), 4);
    }

    #[test]
    fn scale_is_clamped() {
        let mut s = scheduler_with(1);
        s.set_weight_scale(Pid(1), 7.0);
        assert_eq!(s.weight_scale(Pid(1)), 1.0);
        s.set_weight_scale(Pid(1), -3.0);
        assert!(s.weight_scale(Pid(1)) > 0.0);
    }

    #[test]
    fn remove_stops_scheduling() {
        let mut s = scheduler_with(2);
        s.remove(Pid(1));
        let granted = s.run(100);
        assert!(!granted.contains_key(&Pid(1)));
        assert_eq!(s.len(), 1);
    }
}
