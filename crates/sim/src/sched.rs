//! A Completely-Fair-Scheduler (CFS) model.
//!
//! Mirrors the Linux CFS behaviour Valkyrie's OS-scheduler actuator relies
//! on (paper Section VI-A): runnable entities carry a *weight*; timeslices
//! are allocated in proportion to relative weight (Eq. 7,
//! `Δ_ts = Δ_tl · w_t / Σ w`), and the entity with the minimum virtual
//! runtime runs next. Weights follow the kernel's 40-level nice table
//! (×1.25 per level). Valkyrie throttles a process by scaling its weight
//! ([`CfsScheduler::set_weight_scale`], the lever behind Eq. 8).
//!
//! Entities live in a pid-sorted slab (binary-searched on mutation, scanned
//! linearly when picking the next task — ties on vruntime break towards the
//! lowest pid, exactly as the previous `BTreeMap` layout did), and each
//! epoch's grants are written into a per-entity scratch field by
//! [`CfsScheduler::run_ticks`] instead of a freshly allocated map —
//! [`CfsScheduler::run`] remains as a thin map-returning wrapper.

use crate::pid::Pid;
use std::collections::BTreeMap;

/// Weight of nice level 0 in the kernel's table.
pub const NICE_0_WEIGHT: f64 = 1024.0;

/// Number of discrete nice levels (-20 ..= 19).
pub const NICE_LEVELS: i32 = 40;

/// Kernel weight law: each nice level changes the weight by ×1.25.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::sched::nice_to_weight;
/// assert_eq!(nice_to_weight(0), 1024.0);
/// assert!(nice_to_weight(-5) > nice_to_weight(0));
/// assert!(nice_to_weight(19) < nice_to_weight(0));
/// ```
pub fn nice_to_weight(nice: i32) -> f64 {
    let nice = nice.clamp(-20, 19);
    NICE_0_WEIGHT / 1.25_f64.powi(nice)
}

/// Scheduler tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedConfig {
    /// Target latency `Δ_tl` in ticks: every runnable entity runs once per
    /// period of this length (when possible).
    pub target_latency: u64,
    /// Minimum timeslice in ticks, preventing over-slicing with many tasks.
    pub min_granularity: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            target_latency: 24,
            min_granularity: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct SchedEntity {
    pid: Pid,
    base_weight: f64,
    /// Valkyrie's lever: relative weight scale `s` in `(0, 1]`.
    scale: f64,
    vruntime: f64,
    runnable: bool,
    /// Ticks granted by the most recent [`CfsScheduler::run_ticks`].
    granted: u64,
}

impl SchedEntity {
    fn weight(&self) -> f64 {
        (self.base_weight * self.scale).max(1e-9)
    }
}

/// The CFS scheduler model.
///
/// # Examples
///
/// Two equal-priority tasks split the CPU evenly; scaling one task's weight
/// to 10 % starves it proportionally:
///
/// ```
/// use valkyrie_sim::sched::{CfsScheduler, SchedConfig};
/// use valkyrie_sim::pid::Pid;
/// let mut s = CfsScheduler::new(SchedConfig::default());
/// s.add(Pid(1), 0);
/// s.add(Pid(2), 0);
/// let granted = s.run(1000);
/// assert!((granted[&Pid(1)] as f64 - 500.0).abs() < 50.0);
///
/// s.set_weight_scale(Pid(1), 0.1);
/// let granted = s.run(1100);
/// assert!(granted[&Pid(1)] < granted[&Pid(2)] / 5);
/// ```
#[derive(Debug, Clone)]
pub struct CfsScheduler {
    config: SchedConfig,
    /// Entities sorted by ascending pid.
    entities: Vec<SchedEntity>,
}

impl CfsScheduler {
    /// Creates an empty scheduler.
    pub fn new(config: SchedConfig) -> Self {
        Self {
            config,
            entities: Vec::new(),
        }
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    fn idx_of(&self, pid: Pid) -> Option<usize> {
        self.entities.binary_search_by_key(&pid, |e| e.pid).ok()
    }

    /// Registers a runnable process at the given nice level.
    ///
    /// New entities start at the current minimum vruntime, as in the kernel,
    /// so they cannot monopolise the CPU to "catch up".
    pub fn add(&mut self, pid: Pid, nice: i32) {
        let min_vr = self.min_vruntime();
        let entity = SchedEntity {
            pid,
            base_weight: nice_to_weight(nice),
            scale: 1.0,
            vruntime: min_vr,
            runnable: true,
            granted: 0,
        };
        match self.entities.binary_search_by_key(&pid, |e| e.pid) {
            Ok(i) => self.entities[i] = entity,
            Err(i) => self.entities.insert(i, entity),
        }
    }

    /// Deregisters a process.
    pub fn remove(&mut self, pid: Pid) {
        if let Some(i) = self.idx_of(pid) {
            self.entities.remove(i);
        }
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when no process is registered.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Sets the relative weight scale `s ∈ (0, 1]` of a process — the lever
    /// Valkyrie's Eq. 8 actuator drives. Values are clamped to
    /// `[1e-6, 1.0]`.
    pub fn set_weight_scale(&mut self, pid: Pid, scale: f64) {
        if let Some(i) = self.idx_of(pid) {
            self.entities[i].scale = scale.clamp(1e-6, 1.0);
        }
    }

    /// Current weight scale of a process (1.0 if unknown).
    pub fn weight_scale(&self, pid: Pid) -> f64 {
        self.idx_of(pid).map_or(1.0, |i| self.entities[i].scale)
    }

    /// Marks a process runnable or blocked.
    pub fn set_runnable(&mut self, pid: Pid, runnable: bool) {
        if let Some(i) = self.idx_of(pid) {
            self.entities[i].runnable = runnable;
        }
    }

    /// Total weight of the runnable set (pid-ascending summation order).
    fn total_runnable_weight(&self) -> f64 {
        self.entities
            .iter()
            .filter(|e| e.runnable)
            .map(SchedEntity::weight)
            .sum()
    }

    /// Eq. 7 timeslice for `pid` given the current runnable set.
    pub fn timeslice(&self, pid: Pid) -> u64 {
        let total = self.total_runnable_weight();
        let Some(e) = self.idx_of(pid).map(|i| &self.entities[i]) else {
            return 0;
        };
        if !e.runnable || total <= 0.0 {
            return 0;
        }
        self.config.slice(e.base_weight, e.scale, total)
    }

    /// Runs the simulated CPU for `ticks`, writing each entity's grant into
    /// the scheduler's scratch (read back with [`CfsScheduler::granted`]).
    /// Idle time (no runnable entity) is simply lost. Allocation-free.
    pub fn run_ticks(&mut self, ticks: u64) {
        for e in &mut self.entities {
            e.granted = 0;
        }
        // Weights cannot change mid-run, so Σw is computed once (same
        // pid-ascending summation order as `timeslice`).
        let total = self.total_runnable_weight();
        if total <= 0.0 {
            return;
        }
        // Single-runnable fast path: the scan has exactly one candidate and
        // `slice()` sees the same inputs every round, so both hoist out of
        // the tick loop. The per-slice `min`/`max` clamps and the repeated
        // vruntime additions replay the general loop's exact arithmetic
        // sequence, so grants and vruntime stay bit-identical.
        let mut sole = None;
        for (i, e) in self.entities.iter().enumerate() {
            if e.runnable {
                if sole.is_some() {
                    sole = None;
                    break;
                }
                sole = Some(i);
            }
        }
        if let Some(i) = sole {
            let (base_weight, scale) = {
                let e = &self.entities[i];
                (e.base_weight, e.scale)
            };
            let slice = self.config.slice(base_weight, scale, total);
            let e = &mut self.entities[i];
            let per_tick = NICE_0_WEIGHT / e.weight();
            let mut remaining = ticks;
            while remaining > 0 {
                let s = slice.min(remaining).max(1);
                e.vruntime += s as f64 * per_tick;
                e.granted += s;
                remaining -= s;
            }
            return;
        }
        let mut remaining = ticks;
        while remaining > 0 {
            // Pick the runnable entity with minimum vruntime; ties break
            // towards the lowest pid (first strict minimum in slab order).
            let mut best: Option<usize> = None;
            for (i, e) in self.entities.iter().enumerate() {
                if !e.runnable {
                    continue;
                }
                match best {
                    Some(b) if self.entities[b].vruntime <= e.vruntime => {}
                    _ => best = Some(i),
                }
            }
            let Some(i) = best else {
                break; // idle
            };
            let e = &mut self.entities[i];
            let slice = self
                .config
                .slice(e.base_weight, e.scale, total)
                .min(remaining)
                .max(1);
            e.vruntime += slice as f64 * (NICE_0_WEIGHT / e.weight());
            e.granted += slice;
            remaining -= slice;
        }
    }

    /// Ticks granted to `pid` by the most recent [`CfsScheduler::run_ticks`].
    pub fn granted(&self, pid: Pid) -> u64 {
        self.idx_of(pid).map_or(0, |i| self.entities[i].granted)
    }

    /// Runs the simulated CPU for `ticks`, returning the ticks granted to
    /// each process. Thin allocating wrapper over
    /// [`CfsScheduler::run_ticks`], kept for API compatibility.
    pub fn run(&mut self, ticks: u64) -> BTreeMap<Pid, u64> {
        self.run_ticks(ticks);
        self.entities
            .iter()
            .filter(|e| e.granted > 0)
            .map(|e| (e.pid, e.granted))
            .collect()
    }

    fn min_vruntime(&self) -> f64 {
        self.entities
            .iter()
            .map(|e| e.vruntime)
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))))
            .unwrap_or(0.0)
    }
}

impl SchedConfig {
    fn slice(&self, base_weight: f64, scale: f64, total_weight: f64) -> u64 {
        let weight = (base_weight * scale).max(1e-9);
        let slice = self.target_latency as f64 * weight / total_weight;
        (slice.round() as u64).max(self.min_granularity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheduler_with(n: usize) -> CfsScheduler {
        let mut s = CfsScheduler::new(SchedConfig::default());
        for i in 0..n {
            s.add(Pid(i as u64 + 1), 0);
        }
        s
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut s = scheduler_with(4);
        let granted = s.run(4000);
        for pid in 1..=4 {
            let g = granted[&Pid(pid)];
            assert!((g as i64 - 1000).unsigned_abs() < 100, "pid {pid}: {g}");
        }
    }

    #[test]
    fn grants_conserve_cpu_time() {
        let mut s = scheduler_with(3);
        let granted = s.run(997);
        let total: u64 = granted.values().sum();
        assert_eq!(total, 997);
    }

    #[test]
    fn nice_levels_shift_share() {
        let mut s = CfsScheduler::new(SchedConfig::default());
        s.add(Pid(1), 0);
        s.add(Pid(2), 5); // lower priority
        let granted = s.run(4000);
        // weight ratio = 1.25^5 ≈ 3.05
        let ratio = granted[&Pid(1)] as f64 / granted[&Pid(2)] as f64;
        assert!((ratio - 3.05).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn weight_scale_throttles_proportionally() {
        let mut s = scheduler_with(2);
        s.set_weight_scale(Pid(1), 0.1);
        let granted = s.run(11_000);
        // Expected shares: 0.1/1.1 vs 1.0/1.1.
        let share = granted[&Pid(1)] as f64 / 11_000.0;
        assert!((share - 0.0909).abs() < 0.03, "share {share}");
    }

    #[test]
    fn blocked_entities_get_nothing() {
        let mut s = scheduler_with(2);
        s.set_runnable(Pid(2), false);
        let granted = s.run(500);
        assert_eq!(granted.get(&Pid(2)), None);
        assert_eq!(granted[&Pid(1)], 500);
    }

    #[test]
    fn idle_when_nothing_runnable() {
        let mut s = scheduler_with(1);
        s.set_runnable(Pid(1), false);
        let granted = s.run(100);
        assert!(granted.is_empty());
    }

    #[test]
    fn new_task_starts_at_min_vruntime() {
        let mut s = scheduler_with(1);
        s.run(10_000);
        s.add(Pid(99), 0);
        let granted = s.run(1000);
        // The newcomer must not monopolise the CPU: roughly half each.
        let g = granted[&Pid(99)];
        assert!(g < 700, "newcomer got {g}/1000");
    }

    #[test]
    fn timeslice_matches_eq7() {
        let mut s = CfsScheduler::new(SchedConfig {
            target_latency: 20,
            min_granularity: 1,
        });
        s.add(Pid(1), 0);
        s.add(Pid(2), 0);
        s.add(Pid(3), 0);
        s.add(Pid(4), 0);
        // Equal weights: Δ_ts = 20 / 4 = 5.
        assert_eq!(s.timeslice(Pid(1)), 5);
        s.set_weight_scale(Pid(1), 0.5);
        // w = 0.5, Σw = 3.5 → 20 * 0.5/3.5 ≈ 2.86 → 3.
        assert_eq!(s.timeslice(Pid(1)), 3);
    }

    #[test]
    fn min_granularity_floors_timeslice() {
        let mut s = CfsScheduler::new(SchedConfig {
            target_latency: 10,
            min_granularity: 4,
        });
        for i in 0..10 {
            s.add(Pid(i), 0);
        }
        assert_eq!(s.timeslice(Pid(0)), 4);
    }

    #[test]
    fn scale_is_clamped() {
        let mut s = scheduler_with(1);
        s.set_weight_scale(Pid(1), 7.0);
        assert_eq!(s.weight_scale(Pid(1)), 1.0);
        s.set_weight_scale(Pid(1), -3.0);
        assert!(s.weight_scale(Pid(1)) > 0.0);
    }

    #[test]
    fn remove_stops_scheduling() {
        let mut s = scheduler_with(2);
        s.remove(Pid(1));
        let granted = s.run(100);
        assert!(!granted.contains_key(&Pid(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn run_ticks_scratch_matches_map_wrapper() {
        let mut a = scheduler_with(5);
        let mut b = a.clone();
        a.set_weight_scale(Pid(2), 0.2);
        b.set_weight_scale(Pid(2), 0.2);
        let map = a.run(997);
        b.run_ticks(997);
        for pid in (1..=5).map(Pid) {
            assert_eq!(map.get(&pid).copied().unwrap_or(0), b.granted(pid));
        }
    }

    #[test]
    fn interleaved_add_remove_keeps_pid_order() {
        let mut s = CfsScheduler::new(SchedConfig::default());
        for pid in [5, 1, 9, 3] {
            s.add(Pid(pid), 0);
        }
        s.remove(Pid(5));
        s.add(Pid(2), 0);
        let granted = s.run(1000);
        let pids: Vec<u64> = granted.keys().map(|p| p.0).collect();
        assert_eq!(pids, vec![1, 2, 3, 9]);
    }
}
