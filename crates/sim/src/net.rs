//! Network bandwidth controller: token bucket + HTB-style shaping overhead.
//!
//! Table II throttles the example exfiltration attack's network with cgroup
//! bandwidth caps. Two effects are visible in the paper's measurements:
//!
//! 1. a hard cap — traffic can never exceed the configured bandwidth;
//! 2. a *shaping overhead* — even caps far above the application's demand
//!    reduce throughput (halving a 1 TB/s cap to 512 GB/s already costs
//!    11.4 %), because shaped traffic pays queueing/burst-regulation costs
//!    that grow as the cap shrinks.
//!
//! The hard cap is a classic token bucket. The shaping overhead is an
//! empirical factor calibrated in log-log space against the paper's three
//! measured points (512G → 0.886, 512M → 0.251, 512K → 2.2e-4 of default
//! throughput); see `DESIGN.md` for the calibration table.

/// Calibration anchors: `(cap_bytes_per_sec, throughput_factor)`.
const SHAPING_ANCHORS: [(f64, f64); 4] = [
    (5.12e5, 2.2e-4), // 512 KB/s
    (5.12e8, 0.251),  // 512 MB/s
    (5.12e11, 0.886), // 512 GB/s
    (1.024e12, 1.0),  // 1 TB/s — the paper's "default" (unshaped)
];

/// Multiplicative throughput factor imposed by traffic shaping at a given
/// bandwidth cap (1.0 = no overhead).
///
/// Piecewise log-log linear between the calibration anchors; extrapolated
/// with the boundary slopes and clamped to `[1e-9, 1.0]`.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::net::shaping_factor;
/// assert!((shaping_factor(5.12e11) - 0.886).abs() < 1e-6);
/// assert!(shaping_factor(5.12e5) < 1e-3);
/// assert_eq!(shaping_factor(f64::INFINITY), 1.0);
/// ```
pub fn shaping_factor(cap_bytes_per_sec: f64) -> f64 {
    if !cap_bytes_per_sec.is_finite() || cap_bytes_per_sec >= SHAPING_ANCHORS[3].0 {
        return 1.0;
    }
    let cap = cap_bytes_per_sec.max(1.0);
    let lx = cap.log10();
    // Locate the surrounding anchors (extrapolate below the first pair).
    let (lo, hi) = if cap < SHAPING_ANCHORS[1].0 {
        (SHAPING_ANCHORS[0], SHAPING_ANCHORS[1])
    } else if cap < SHAPING_ANCHORS[2].0 {
        (SHAPING_ANCHORS[1], SHAPING_ANCHORS[2])
    } else {
        (SHAPING_ANCHORS[2], SHAPING_ANCHORS[3])
    };
    let (x0, y0) = (lo.0.log10(), lo.1.log10());
    let (x1, y1) = (hi.0.log10(), hi.1.log10());
    let ly = y0 + (y1 - y0) * (lx - x0) / (x1 - x0);
    10f64.powf(ly).clamp(1e-9, 1.0)
}

/// A per-process network bandwidth controller.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::net::NetController;
/// let mut unlimited = NetController::unlimited();
/// assert_eq!(unlimited.send(100, 1_000_000.0), 1_000_000.0);
///
/// // A 1 KB/s cap delivers at most ~100 bytes in a 100 ms epoch.
/// let mut tight = NetController::with_cap(1024.0);
/// assert!(tight.send(100, 1_000_000.0) <= 110.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetController {
    /// Base (unthrottled) cap in bytes/second; `None` = unshaped.
    base_cap: Option<f64>,
    /// Effective cap in bytes/second (`base_cap × share`); `None` =
    /// unshaped.
    cap: Option<f64>,
    /// Accumulated unused tokens (bytes), bounded by one epoch of burst.
    tokens: f64,
}

impl NetController {
    /// No shaping at all.
    pub fn unlimited() -> Self {
        Self {
            base_cap: None,
            cap: None,
            tokens: 0.0,
        }
    }

    /// Shaped with a cap of `bytes_per_sec`.
    pub fn with_cap(bytes_per_sec: f64) -> Self {
        let cap = Some(bytes_per_sec.max(0.0));
        Self {
            base_cap: cap,
            cap,
            tokens: 0.0,
        }
    }

    /// The effective cap, if any.
    pub fn cap(&self) -> Option<f64> {
        self.cap
    }

    /// The base (unthrottled) cap [`NetController::apply_share`] scales,
    /// if any.
    pub fn base_cap(&self) -> Option<f64> {
        self.base_cap
    }

    /// Applies a share in `[0, 1]` of the **base** cap (Valkyrie's network
    /// actuator lever). Idempotent: the effective cap is always
    /// `base × share`, so re-applying the same share every epoch — as
    /// `Machine::apply_resources` does — holds the cap steady instead of
    /// compounding it geometrically (0.5, 0.25, 0.125, … was the old bug).
    /// A share of 1 restores the base cap. Unlimited controllers are given
    /// a nominal 1 TB/s base cap first so they become throttleable.
    pub fn apply_share(&mut self, share: f64) {
        let share = share.clamp(0.0, 1.0);
        let base = *self.base_cap.get_or_insert(1.024e12);
        self.cap = Some(base * share);
    }

    /// Attempts to transmit `demand_bytes` within an epoch of `epoch_ticks`
    /// (1 tick = 1 ms); returns the bytes actually delivered.
    pub fn send(&mut self, epoch_ticks: u64, demand_bytes: f64) -> f64 {
        let demand = demand_bytes.max(0.0);
        match self.cap {
            None => demand,
            Some(cap) => {
                let epoch_secs = epoch_ticks as f64 / 1000.0;
                let budget = cap * epoch_secs + self.tokens;
                let shaped_demand = demand * shaping_factor(cap);
                let delivered = shaped_demand.min(budget);
                // Unused tokens roll over, bounded to one epoch of burst.
                self.tokens = (budget - delivered).min(cap * epoch_secs);
                delivered
            }
        }
    }
}

impl Default for NetController {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaping_matches_paper_anchors() {
        assert!((shaping_factor(5.12e11) - 0.886).abs() < 1e-9);
        assert!((shaping_factor(5.12e8) - 0.251).abs() < 1e-9);
        assert!((shaping_factor(5.12e5) - 2.2e-4).abs() < 1e-8);
    }

    #[test]
    fn shaping_is_monotone_in_cap() {
        let mut prev = 0.0;
        for exp in 3..13 {
            let f = shaping_factor(10f64.powi(exp));
            assert!(f >= prev, "shaping must grow with cap");
            prev = f;
        }
    }

    #[test]
    fn unlimited_passes_demand_through() {
        let mut n = NetController::unlimited();
        assert_eq!(n.send(100, 42.0), 42.0);
    }

    #[test]
    fn hard_cap_bounds_delivery() {
        let mut n = NetController::with_cap(10_000.0); // 10 KB/s
        let delivered = n.send(1000, 1.0e9); // 1 s epoch
        assert!(delivered <= 10_000.0);
    }

    #[test]
    fn tokens_roll_over_once() {
        let mut n = NetController::with_cap(1000.0);
        let first = n.send(1000, 0.0);
        assert_eq!(first, 0.0);
        // Second epoch can use this epoch's + rolled-over tokens.
        let second = n.send(1000, 1.0e9);
        assert!(second > 1000.0 * shaping_factor(1000.0) * 0.5);
        assert!(second <= 2000.0);
    }

    #[test]
    fn apply_share_scales_cap() {
        let mut n = NetController::with_cap(1000.0);
        n.apply_share(0.5);
        assert_eq!(n.cap(), Some(500.0));
        let mut u = NetController::unlimited();
        u.apply_share(0.5);
        assert_eq!(u.cap(), Some(5.12e11));
    }

    #[test]
    fn apply_share_is_idempotent_over_epochs() {
        // `Machine::apply_resources` re-applies the engine's share every
        // epoch; the cap must hold at base × share, not decay
        // geometrically.
        let mut n = NetController::with_cap(1000.0);
        for _ in 0..100 {
            n.apply_share(0.5);
        }
        assert_eq!(n.cap(), Some(500.0));
        assert_eq!(n.base_cap(), Some(1000.0));

        // Different shares always scale the same base.
        n.apply_share(0.25);
        assert_eq!(n.cap(), Some(250.0));
        // A share of 1 restores the base cap.
        n.apply_share(1.0);
        assert_eq!(n.cap(), Some(1000.0));
    }

    #[test]
    fn table2_network_rows_reproduce() {
        // The exfiltration attack demands 225.7 KB/s. Delivered rate under
        // each of the paper's caps should match Table II's slowdowns in
        // shape: 512G → ~11 %, 512M → ~75 %, 512K → ~99.98 %.
        let demand_per_epoch = 225.7e3 * 0.1; // bytes per 100 ms
        let deliver = |cap: f64| {
            let mut n = NetController::with_cap(cap);
            let mut total = 0.0;
            for _ in 0..100 {
                total += n.send(100, demand_per_epoch);
            }
            total / 10.0 // bytes/s over 10 s
        };
        let base = 225.7e3;
        let s512g = 1.0 - deliver(5.12e11) / base;
        let s512m = 1.0 - deliver(5.12e8) / base;
        let s512k = 1.0 - deliver(5.12e5) / base;
        assert!((s512g - 0.114).abs() < 0.02, "512G slowdown {s512g}");
        assert!((s512m - 0.749).abs() < 0.03, "512M slowdown {s512m}");
        assert!(s512k > 0.999, "512K slowdown {s512k}");
    }
}
