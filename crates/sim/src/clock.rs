//! Discrete simulation time.
//!
//! One tick is one millisecond of simulated time; an epoch is the paper's
//! 100 ms measurement interval ("a typical HPC monitoring tool captures
//! hardware events every 100 ms").

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds per simulation tick.
pub const MS_PER_TICK: u64 = 1;

/// Ticks per measurement epoch (100 ms).
pub const EPOCH_TICKS: u64 = 100;

/// A point in simulated time, measured in ticks since boot.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::clock::{Tick, EPOCH_TICKS};
/// let t = Tick(0) + Tick(EPOCH_TICKS);
/// assert_eq!(t.as_millis(), 100);
/// assert_eq!(t.epoch(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// Simulated milliseconds since boot.
    pub fn as_millis(self) -> u64 {
        self.0 * MS_PER_TICK
    }

    /// Simulated seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.as_millis() as f64 / 1000.0
    }

    /// Index of the epoch containing this tick.
    pub fn epoch(self) -> u64 {
        self.0 / EPOCH_TICKS
    }

    /// Tick at the start of epoch `e`.
    pub fn at_epoch(e: u64) -> Self {
        Tick(e * EPOCH_TICKS)
    }
}

impl Add for Tick {
    type Output = Tick;
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    fn sub(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_boundaries() {
        assert_eq!(Tick(0).epoch(), 0);
        assert_eq!(Tick(99).epoch(), 0);
        assert_eq!(Tick(100).epoch(), 1);
        assert_eq!(Tick::at_epoch(3), Tick(300));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Tick(5) + Tick(7), Tick(12));
        assert_eq!(Tick(5) - Tick(7), Tick(0)); // saturating
        let mut t = Tick(1);
        t += Tick(2);
        assert_eq!(t, Tick(3));
    }

    #[test]
    fn conversions() {
        assert_eq!(Tick(1500).as_millis(), 1500);
        assert!((Tick(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
