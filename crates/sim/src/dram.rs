//! DRAM disturbance (rowhammer) model.
//!
//! Rowhammer flips bits in a victim row when its neighbours are *activated*
//! more than a disturbance threshold within one refresh interval (Kim et
//! al., ISCA 2014). This model tracks per-row activation counts inside a
//! 64 ms refresh window; when the combined activations of a row's neighbours
//! exceed the threshold, every excess activation flips a bit with a small
//! calibrated probability.
//!
//! The property Valkyrie exploits is structural: a CPU-throttled attacker
//! cannot reach the activation threshold inside *any* refresh window, so the
//! flip count stays at exactly zero no matter how long the attack runs
//! (paper Fig. 6a: "no bit-flips are observed even after a day of
//! execution").

use rand::Rng;
use std::collections::HashMap;

/// DRAM geometry and disturbance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of rows in the modelled bank.
    pub rows: u64,
    /// Refresh interval in milliseconds (DDR3: 64 ms).
    pub refresh_interval_ms: u64,
    /// Minimum neighbour activations within one refresh window before any
    /// disturbance occurs (first-flip threshold).
    pub disturbance_threshold: u64,
    /// Probability that one activation beyond the threshold flips a bit.
    pub flip_prob_per_excess: f64,
    /// Maximum activations one row pair can issue per millisecond
    /// (bounded by the row-cycle time tRC).
    pub max_activations_per_ms: u64,
}

impl DramConfig {
    /// A DDR3-1333 module like the paper's Transcend DIMM: 32K rows, 64 ms
    /// refresh, 139 K-activation first-flip threshold (Kim et al.), tRC
    /// ≈ 50 ns → ~20 K activations/ms for an alternating hammer pair.
    pub fn ddr3_1333() -> Self {
        Self {
            rows: 32 * 1024,
            refresh_interval_ms: 64,
            disturbance_threshold: 139_000,
            flip_prob_per_excess: 2.4e-8,
            max_activations_per_ms: 20_000,
        }
    }
}

/// The DRAM disturbance model.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::dram::{Dram, DramConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut dram = Dram::new(DramConfig::ddr3_1333());
/// // A full-speed double-sided hammer for one refresh window:
/// dram.hammer_pair(100, 102, 64 * 20_000, &mut rng);
/// dram.advance_ms(64, &mut rng);
/// // A throttled attacker (1% CPU) cannot cross the threshold — ever.
/// for _ in 0..1000 {
///     dram.hammer_pair(100, 102, 64 * 200, &mut rng);
///     dram.advance_ms(64, &mut rng);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Activations per row within the current refresh window.
    window_activations: HashMap<u64, u64>,
    window_elapsed_ms: u64,
    flipped_bits: u64,
    total_activations: u64,
}

impl Dram {
    /// Creates a DRAM model with all counters clear.
    pub fn new(config: DramConfig) -> Self {
        Self {
            config,
            window_activations: HashMap::new(),
            window_elapsed_ms: 0,
            flipped_bits: 0,
            total_activations: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Total bit flips induced so far.
    pub fn flipped_bits(&self) -> u64 {
        self.flipped_bits
    }

    /// Total row activations issued so far.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Activates `row` `count` times within the current window.
    pub fn activate(&mut self, row: u64, count: u64) {
        let row = row % self.config.rows;
        *self.window_activations.entry(row).or_insert(0) += count;
        self.total_activations += count;
    }

    /// Double-sided hammer: alternately activates the two aggressor rows
    /// `count` times *in total* (count/2 each), as the classic
    /// `rowhammer-test` loop does.
    pub fn hammer_pair<R: Rng + ?Sized>(
        &mut self,
        row_a: u64,
        row_b: u64,
        count: u64,
        _rng: &mut R,
    ) {
        self.activate(row_a, count / 2);
        self.activate(row_b, count - count / 2);
    }

    /// Advances simulated time; every completed refresh window evaluates
    /// disturbance errors and clears the activation counters.
    pub fn advance_ms<R: Rng + ?Sized>(&mut self, ms: u64, rng: &mut R) {
        let mut remaining = ms;
        while remaining > 0 {
            let step = remaining.min(self.config.refresh_interval_ms - self.window_elapsed_ms);
            self.window_elapsed_ms += step;
            remaining -= step;
            if self.window_elapsed_ms >= self.config.refresh_interval_ms {
                self.close_window(rng);
            }
        }
    }

    fn close_window<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // For every potential victim row, sum the activations of its two
        // neighbours; excess beyond the threshold can flip bits.
        let mut neighbour_acts: HashMap<u64, u64> = HashMap::new();
        for (&row, &acts) in &self.window_activations {
            if row > 0 {
                *neighbour_acts.entry(row - 1).or_insert(0) += acts;
            }
            if row + 1 < self.config.rows {
                *neighbour_acts.entry(row + 1).or_insert(0) += acts;
            }
        }
        for (_victim, acts) in neighbour_acts {
            if acts > self.config.disturbance_threshold {
                let excess = acts - self.config.disturbance_threshold;
                let expected = excess as f64 * self.config.flip_prob_per_excess;
                // Poisson-approximate sampling via per-window Bernoulli on
                // the fractional part plus the integer part.
                let mut flips = expected.floor() as u64;
                if rng.gen::<f64>() < expected.fract() {
                    flips += 1;
                }
                self.flipped_bits += flips;
            }
        }
        self.window_activations.clear();
        self.window_elapsed_ms = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn below_threshold_never_flips() {
        let mut rng = rng();
        let mut dram = Dram::new(DramConfig::ddr3_1333());
        // 1000 windows of sub-threshold hammering.
        for _ in 0..1000 {
            dram.hammer_pair(10, 12, 100_000, &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        assert_eq!(dram.flipped_bits(), 0);
    }

    #[test]
    fn sustained_full_speed_hammering_flips_bits() {
        let mut rng = rng();
        let cfg = DramConfig::ddr3_1333();
        let mut dram = Dram::new(cfg);
        let acts_per_window = cfg.max_activations_per_ms * cfg.refresh_interval_ms;
        // Simulate ~30 s of full-speed double-sided hammering.
        for _ in 0..470 {
            dram.hammer_pair(100, 102, acts_per_window, &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        assert!(
            dram.flipped_bits() > 0,
            "full-speed hammering must flip bits"
        );
    }

    #[test]
    fn activations_reset_each_window() {
        let mut rng = rng();
        let cfg = DramConfig::ddr3_1333();
        let mut dram = Dram::new(cfg);
        // Spread the same huge activation count over many windows: never
        // crosses the per-window threshold, so no flips accumulate.
        for _ in 0..200 {
            dram.hammer_pair(5, 7, cfg.disturbance_threshold / 2, &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        assert_eq!(dram.flipped_bits(), 0);
        assert!(dram.total_activations() > 10 * cfg.disturbance_threshold);
    }

    #[test]
    fn partial_windows_accumulate() {
        let mut rng = rng();
        let cfg = DramConfig::ddr3_1333();
        let mut dram = Dram::new(cfg);
        let acts = cfg.max_activations_per_ms * 16;
        // Four 16 ms bursts inside one window sum to full-speed hammering.
        for _ in 0..4 {
            dram.hammer_pair(50, 52, acts, &mut rng);
            dram.advance_ms(16, &mut rng);
        }
        // One more window at the same rate to be safe.
        let mut flipped = dram.flipped_bits();
        for _ in 0..100 {
            dram.hammer_pair(50, 52, acts * 4, &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        flipped = dram.flipped_bits() - flipped + flipped;
        assert!(flipped > 0 || dram.flipped_bits() > 0);
    }

    #[test]
    fn flip_rate_is_roughly_calibrated() {
        // Expected flips per window at full speed:
        // excess = 20k*64 - 139k = 1.141e6; E = excess * 2.4e-8 ≈ 0.0274
        // → ~1 flip every 36 windows ≈ 2.3 s. The paper reports one flip
        // every 29 hammer iterations; the attack crate maps iterations to
        // windows. Here we sanity-check the order of magnitude.
        let mut rng = rng();
        let cfg = DramConfig::ddr3_1333();
        let mut dram = Dram::new(cfg);
        let acts = cfg.max_activations_per_ms * cfg.refresh_interval_ms;
        let windows = 4000;
        for _ in 0..windows {
            dram.hammer_pair(100, 102, acts, &mut rng);
            dram.advance_ms(64, &mut rng);
        }
        let per_window = dram.flipped_bits() as f64 / windows as f64;
        assert!(
            per_window > 0.01 && per_window < 0.08,
            "flips/window = {per_window}"
        );
    }
}
