//! A simulated filesystem tree for ransomware / exfiltration workloads.
//!
//! Stored structure-of-arrays for speed: one `u64` size per file (shared
//! between snapshots via [`Arc`]), an encrypted *bitset*, and O(1)
//! incremental byte/file counters. Paths are never materialised in the hot
//! loops — they are generated on demand by [`SimFs::path`] from a compact
//! naming scheme, with explicit overrides only for files added through
//! [`SimFs::push`]. This is what lets `table2`'s million-file sweeps build
//! and snapshot the victim filesystem without a single per-file heap
//! allocation.

use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the lazily generated paths of a [`SimFs`] are named.
#[derive(Debug, Clone, Default)]
enum PathScheme {
    /// `/home/victim/doc_{i:05}.dat` — the [`SimFs::generate`] corpus.
    #[default]
    VictimDocs,
    /// `{prefix}{i}` — the [`SimFs::uniform`] corpus.
    Prefixed(String),
}

/// A flat view of a victim filesystem (files only; directory structure is
/// irrelevant to the modelled attacks, which walk recursively anyway).
///
/// # Examples
///
/// ```
/// use valkyrie_sim::fs::SimFs;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let fs = SimFs::generate(&mut rng, 100, 1 << 20);
/// assert_eq!(fs.len(), 100);
/// assert!(fs.total_bytes() > 0);
/// assert_eq!(fs.path(0).unwrap(), "/home/victim/doc_00000.dat");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    /// Per-file sizes in bytes. Shared between snapshots: cloning a `SimFs`
    /// bumps a refcount instead of copying megabytes of sizes.
    sizes: Arc<Vec<u64>>,
    /// Encrypted flags, one bit per file (64 files per word).
    encrypted: Vec<u64>,
    /// Incremental counters — kept exact by [`SimFs::push`] and
    /// [`SimFs::encrypt_file`] so the totals are O(1), not O(n) scans.
    total_bytes: u64,
    encrypted_bytes: u64,
    encrypted_files: usize,
    scheme: PathScheme,
    /// Explicit paths for files added via [`SimFs::push`].
    path_overrides: BTreeMap<usize, String>,
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates `n_files` files with log-normal-ish sizes around
    /// `mean_size` bytes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, n_files: usize, mean_size: u64) -> Self {
        let mut sizes = Vec::with_capacity(n_files);
        let mut total = 0u64;
        for _ in 0..n_files {
            // Log-normal via exp of a uniform-sum approximation to a normal.
            let z: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0; // ~N(0, 0.7)
            let size = (mean_size as f64 * (0.9 * z).exp()).max(512.0) as u64;
            sizes.push(size);
            total += size;
        }
        Self {
            encrypted: vec![0; n_files.div_ceil(64)],
            sizes: Arc::new(sizes),
            total_bytes: total,
            encrypted_bytes: 0,
            encrypted_files: 0,
            scheme: PathScheme::VictimDocs,
            path_overrides: BTreeMap::new(),
        }
    }

    /// `n_files` files of identical `size` named `{prefix}{index}` — the
    /// calibrated Table II corpus, built without per-file allocation.
    pub fn uniform(prefix: &str, n_files: usize, size: u64) -> Self {
        Self {
            sizes: Arc::new(vec![size; n_files]),
            encrypted: vec![0; n_files.div_ceil(64)],
            total_bytes: size * n_files as u64,
            encrypted_bytes: 0,
            encrypted_files: 0,
            scheme: PathScheme::Prefixed(prefix.to_string()),
            path_overrides: BTreeMap::new(),
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the filesystem holds no files.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size in bytes of the `idx`-th file.
    pub fn size_of(&self, idx: usize) -> Option<u64> {
        self.sizes.get(idx).copied()
    }

    /// All file sizes, in creation order.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Whether the `idx`-th file has been encrypted (false when out of
    /// bounds).
    pub fn is_encrypted(&self, idx: usize) -> bool {
        idx < self.sizes.len() && self.encrypted[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Path of the `idx`-th file, generated on demand — nothing in the
    /// simulation's hot loops reads paths, so they are never stored for
    /// generated corpora.
    pub fn path(&self, idx: usize) -> Option<String> {
        if idx >= self.sizes.len() {
            return None;
        }
        if let Some(p) = self.path_overrides.get(&idx) {
            return Some(p.clone());
        }
        Some(match &self.scheme {
            PathScheme::VictimDocs => format!("/home/victim/doc_{idx:05}.dat"),
            PathScheme::Prefixed(prefix) => format!("{prefix}{idx}"),
        })
    }

    /// Total bytes across all files — O(1), maintained incrementally.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes already encrypted by an attacker — O(1), maintained
    /// incrementally.
    pub fn encrypted_bytes(&self) -> u64 {
        self.encrypted_bytes
    }

    /// Number of files already encrypted — O(1), maintained incrementally.
    pub fn encrypted_files(&self) -> usize {
        self.encrypted_files
    }

    /// Marks the `idx`-th file as encrypted; returns its size, or `None` if
    /// the index is out of bounds or the file was already encrypted.
    pub fn encrypt_file(&mut self, idx: usize) -> Option<u64> {
        let size = self.sizes.get(idx).copied()?;
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if self.encrypted[word] & bit != 0 {
            return None;
        }
        self.encrypted[word] |= bit;
        self.encrypted_bytes += size;
        self.encrypted_files += 1;
        Some(size)
    }

    /// Adds one file (used by tests and custom scenarios).
    pub fn push(&mut self, path: impl Into<String>, size: u64) {
        let idx = self.sizes.len();
        Arc::make_mut(&mut self.sizes).push(size);
        if self.encrypted.len() * 64 < self.sizes.len() {
            self.encrypted.push(0);
        }
        self.total_bytes += size;
        self.path_overrides.insert(idx, path.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_produces_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let fs = SimFs::generate(&mut rng, 50, 4096);
        assert_eq!(fs.len(), 50);
        assert!(!fs.is_empty());
        assert!(fs.sizes().iter().all(|&s| s >= 512));
    }

    #[test]
    fn sizes_center_near_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let fs = SimFs::generate(&mut rng, 2000, 1 << 20);
        let mean = fs.total_bytes() as f64 / fs.len() as f64;
        // Log-normal mean is e^{σ²/2} above the median; just check the
        // order of magnitude.
        assert!(mean > 0.5 * (1 << 20) as f64 && mean < 3.0 * (1 << 20) as f64);
    }

    #[test]
    fn encryption_bookkeeping() {
        let mut fs = SimFs::new();
        fs.push("/a", 100);
        fs.push("/b", 200);
        assert_eq!(fs.encrypt_file(0), Some(100));
        assert_eq!(fs.encrypt_file(0), None); // already encrypted
        assert_eq!(fs.encrypt_file(9), None); // out of bounds
        assert!(fs.is_encrypted(0));
        assert!(!fs.is_encrypted(1));
        assert!(!fs.is_encrypted(99));
        assert_eq!(fs.encrypted_bytes(), 100);
        assert_eq!(fs.encrypted_files(), 1);
        assert_eq!(fs.total_bytes(), 300);
    }

    #[test]
    fn uniform_corpus_has_constant_sizes_and_prefixed_paths() {
        let fs = SimFs::uniform("/data/f", 1000, 2257);
        assert_eq!(fs.len(), 1000);
        assert_eq!(fs.total_bytes(), 2257 * 1000);
        assert_eq!(fs.size_of(999), Some(2257));
        assert_eq!(fs.path(42).unwrap(), "/data/f42");
        assert_eq!(fs.path(1000), None);
    }

    #[test]
    fn pushed_paths_override_the_scheme() {
        let mut fs = SimFs::uniform("/data/f", 2, 10);
        fs.push("/custom/name", 30);
        assert_eq!(fs.path(0).unwrap(), "/data/f0");
        assert_eq!(fs.path(2).unwrap(), "/custom/name");
        assert_eq!(fs.total_bytes(), 50);
    }

    #[test]
    fn snapshots_share_sizes_but_not_encryption_state() {
        let mut fs = SimFs::uniform("/f", 200, 100);
        let snapshot = fs.clone();
        assert_eq!(fs.encrypt_file(7), Some(100));
        assert!(fs.is_encrypted(7));
        assert!(!snapshot.is_encrypted(7));
        assert_eq!(snapshot.encrypted_bytes(), 0);
        assert_eq!(snapshot.total_bytes(), fs.total_bytes());
    }

    #[test]
    fn push_after_snapshot_does_not_alias() {
        let mut fs = SimFs::uniform("/f", 65, 10); // beyond one bitset word
        let snapshot = fs.clone();
        fs.push("/x", 5);
        assert_eq!(fs.len(), 66);
        assert_eq!(snapshot.len(), 65);
        assert_eq!(fs.encrypt_file(65), Some(5));
        assert_eq!(fs.encrypted_files(), 1);
        assert_eq!(snapshot.encrypted_files(), 0);
    }
}
