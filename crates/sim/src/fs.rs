//! A simulated filesystem tree for ransomware / exfiltration workloads.

use rand::Rng;

/// One file in the simulated filesystem.
#[derive(Debug, Clone, PartialEq)]
pub struct FileNode {
    /// Path-like identifier.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
    /// Set once a ransomware workload has encrypted the file.
    pub encrypted: bool,
}

/// A flat view of a victim filesystem (files only; directory structure is
/// irrelevant to the modelled attacks, which walk recursively anyway).
///
/// # Examples
///
/// ```
/// use valkyrie_sim::fs::SimFs;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let fs = SimFs::generate(&mut rng, 100, 1 << 20);
/// assert_eq!(fs.len(), 100);
/// assert!(fs.total_bytes() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    files: Vec<FileNode>,
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates `n_files` files with log-normal-ish sizes around
    /// `mean_size` bytes.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, n_files: usize, mean_size: u64) -> Self {
        let mut files = Vec::with_capacity(n_files);
        for i in 0..n_files {
            // Log-normal via exp of a uniform-sum approximation to a normal.
            let z: f64 = (0..6).map(|_| rng.gen::<f64>()).sum::<f64>() - 3.0; // ~N(0, 0.7)
            let size = (mean_size as f64 * (0.9 * z).exp()).max(512.0) as u64;
            files.push(FileNode {
                path: format!("/home/victim/doc_{i:05}.dat"),
                size,
                encrypted: false,
            });
        }
        Self { files }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the filesystem holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// All files, in creation order.
    pub fn files(&self) -> &[FileNode] {
        &self.files
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Bytes already encrypted by an attacker.
    pub fn encrypted_bytes(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.encrypted)
            .map(|f| f.size)
            .sum()
    }

    /// Number of files already encrypted.
    pub fn encrypted_files(&self) -> usize {
        self.files.iter().filter(|f| f.encrypted).count()
    }

    /// Read-only access to the `idx`-th file.
    pub fn file(&self, idx: usize) -> Option<&FileNode> {
        self.files.get(idx)
    }

    /// Marks the `idx`-th file as encrypted; returns its size, or `None` if
    /// the index is out of bounds or the file was already encrypted.
    pub fn encrypt_file(&mut self, idx: usize) -> Option<u64> {
        let f = self.files.get_mut(idx)?;
        if f.encrypted {
            return None;
        }
        f.encrypted = true;
        Some(f.size)
    }

    /// Adds one file (used by tests and custom scenarios).
    pub fn push(&mut self, path: impl Into<String>, size: u64) {
        self.files.push(FileNode {
            path: path.into(),
            size,
            encrypted: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_produces_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let fs = SimFs::generate(&mut rng, 50, 4096);
        assert_eq!(fs.len(), 50);
        assert!(!fs.is_empty());
        assert!(fs.files().iter().all(|f| f.size >= 512));
    }

    #[test]
    fn sizes_center_near_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let fs = SimFs::generate(&mut rng, 2000, 1 << 20);
        let mean = fs.total_bytes() as f64 / fs.len() as f64;
        // Log-normal mean is e^{σ²/2} above the median; just check the
        // order of magnitude.
        assert!(mean > 0.5 * (1 << 20) as f64 && mean < 3.0 * (1 << 20) as f64);
    }

    #[test]
    fn encryption_bookkeeping() {
        let mut fs = SimFs::new();
        fs.push("/a", 100);
        fs.push("/b", 200);
        assert_eq!(fs.encrypt_file(0), Some(100));
        assert_eq!(fs.encrypt_file(0), None); // already encrypted
        assert_eq!(fs.encrypt_file(9), None); // out of bounds
        assert_eq!(fs.encrypted_bytes(), 100);
        assert_eq!(fs.encrypted_files(), 1);
        assert_eq!(fs.total_bytes(), 300);
    }
}
