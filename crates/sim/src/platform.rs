//! Evaluation platforms (paper Table IV).
//!
//! The paper measures false-positive slowdowns on three machines: an Intel
//! i7-3770 (Ivy Bridge, Ubuntu 16.04, Linux 4.19.2), an i7-7700 (Kaby Lake,
//! Ubuntu 20.04, Linux 4.19.265) and an i9-11900 (Rocket Lake, Ubuntu
//! 20.04). In the simulation a platform is a bundle of scheduler tuning and
//! detector noisiness: the i7-7700 exhibits the noisiest counters in the
//! paper (2.2 % mean slowdown) while the i9-11900 is the cleanest (<1 %).

use crate::machine::MachineConfig;
use crate::sched::SchedConfig;

/// One evaluation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Marketing name of the CPU.
    pub name: &'static str,
    /// OS/kernel string (documentation only).
    pub os: &'static str,
    /// Relative single-core speed (i7-7700 = 1.0).
    pub speed_factor: f64,
    /// Multiplier on the statistical detector's false-positive propensity.
    pub detector_noise: f64,
    /// Scheduler tuning for this kernel.
    pub sched: SchedConfig,
}

impl Platform {
    /// Intel Core i7-3770, Ubuntu 16.04, Linux 4.19.2.
    pub fn i7_3770() -> Self {
        Self {
            name: "i7-3770",
            os: "Ubuntu 16.04, Linux 4.19.2",
            speed_factor: 0.7,
            detector_noise: 1.0,
            sched: SchedConfig {
                target_latency: 24,
                min_granularity: 3,
            },
        }
    }

    /// Intel Core i7-7700, Ubuntu 20.04, Linux 4.19.265.
    pub fn i7_7700() -> Self {
        Self {
            name: "i7-7700",
            os: "Ubuntu 20.04, Linux 4.19.265",
            speed_factor: 1.0,
            detector_noise: 1.9,
            sched: SchedConfig {
                target_latency: 24,
                min_granularity: 3,
            },
        }
    }

    /// Intel Core i9-11900, Ubuntu 20.04, Linux 4.19.265.
    pub fn i9_11900() -> Self {
        Self {
            name: "i9-11900",
            os: "Ubuntu 20.04, Linux 4.19.265",
            speed_factor: 1.35,
            detector_noise: 0.7,
            sched: SchedConfig {
                target_latency: 24,
                min_granularity: 3,
            },
        }
    }

    /// The three Table IV platforms.
    pub fn all() -> Vec<Platform> {
        vec![Self::i7_3770(), Self::i7_7700(), Self::i9_11900()]
    }

    /// A machine configuration for this platform with the given seed.
    pub fn machine_config(&self, seed: u64) -> MachineConfig {
        MachineConfig {
            sched: self.sched,
            seed,
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_platforms() {
        let all = Platform::all();
        assert_eq!(all.len(), 3);
        let names: Vec<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["i7-3770", "i7-7700", "i9-11900"]);
    }

    #[test]
    fn noise_ordering_matches_table4() {
        // Table IV: i7-7700 slowest (2.2 %), i9-11900 fastest (<1 %).
        let noisiest = Platform::i7_7700();
        assert!(noisiest.detector_noise > Platform::i7_3770().detector_noise);
        assert!(Platform::i7_3770().detector_noise > Platform::i9_11900().detector_noise);
    }

    #[test]
    fn machine_config_carries_seed() {
        let cfg = Platform::i9_11900().machine_config(42);
        assert_eq!(cfg.seed, 42);
    }
}
