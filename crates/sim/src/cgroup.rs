//! Cgroup-style resource controllers.
//!
//! The paper throttles processes "using management features in the Linux
//! kernel" (cgroup v2, Section IV-B): CPU bandwidth, memory limits, network
//! bandwidth and file-access rates. This module reproduces each controller's
//! *response curve* — the mapping from granted resource share to attack
//! progress measured in Table II:
//!
//! * CPU and filesystem shares affect progress proportionally;
//! * network bandwidth affects progress linearly (with shaping overhead);
//! * memory limits collapse progress sharply and non-linearly as soon as the
//!   working set no longer fits (thrashing).

/// CPU bandwidth controller (`cpu.max`-style quota).
///
/// A quota is the maximum fraction of the epoch a process may run,
/// independent of what the scheduler would grant.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::cgroup::CpuController;
/// let c = CpuController::new(0.5);
/// assert_eq!(c.cap_ticks(1000, 700), 500);
/// assert_eq!(c.cap_ticks(1000, 300), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuController {
    quota: f64,
}

impl CpuController {
    /// A controller limiting the process to `quota` of each epoch
    /// (clamped to `[0, 1]`).
    pub fn new(quota: f64) -> Self {
        Self {
            quota: quota.clamp(0.0, 1.0),
        }
    }

    /// The configured quota.
    pub fn quota(&self) -> f64 {
        self.quota
    }

    /// Applies the quota to a scheduler grant within an epoch of
    /// `epoch_ticks`.
    pub fn cap_ticks(&self, epoch_ticks: u64, granted: u64) -> u64 {
        let cap = (self.quota * epoch_ticks as f64).floor() as u64;
        granted.min(cap)
    }
}

impl Default for CpuController {
    fn default() -> Self {
        Self { quota: 1.0 }
    }
}

/// Memory controller with a thrashing model.
///
/// Table II shows the sharp non-linearity of memory throttling: capping the
/// example attack at 93.6 % of its working set slows it by 99.96 %, and at
/// 89.4 % by 99.99 %. The mechanism is classic thrashing — once the limit is
/// below the working set, cyclic/streaming accesses miss continuously and
/// every miss pays a page-fault + reclaim cost that grows with memory
/// pressure.
///
/// The efficiency model is
/// `eff(r) = 1 / (1 + F0 · exp(k · (1 − r)))` for `r < 1` and `1` otherwise,
/// with `F0 = 140`, `k = 45.4` calibrated against the paper's two measured
/// points (see `DESIGN.md`).
///
/// # Examples
///
/// ```
/// use valkyrie_sim::cgroup::MemoryController;
/// let m = MemoryController::new(1.0);
/// assert_eq!(m.efficiency(), 1.0);
/// let m = MemoryController::new(0.936);
/// assert!(m.efficiency() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryController {
    /// Limit as a fraction of the process working set.
    limit_frac: f64,
}

impl MemoryController {
    /// Calibrated base fault cost.
    const F0: f64 = 140.0;
    /// Calibrated pressure exponent.
    const K: f64 = 45.4;

    /// A controller capping memory at `limit_frac` of the working set
    /// (values above 1 mean "no pressure"; negative values clamp to 0).
    pub fn new(limit_frac: f64) -> Self {
        Self {
            limit_frac: limit_frac.max(0.0),
        }
    }

    /// The configured limit fraction.
    pub fn limit_frac(&self) -> f64 {
        self.limit_frac
    }

    /// Progress efficiency factor in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        let r = self.limit_frac;
        if r >= 1.0 {
            return 1.0;
        }
        1.0 / (1.0 + Self::F0 * (Self::K * (1.0 - r)).exp())
    }
}

impl Default for MemoryController {
    fn default() -> Self {
        Self { limit_frac: 1.0 }
    }
}

/// File-access rate limiter.
///
/// The paper regulates filesystem access "by keeping track of the files
/// opened and using signals to pause and resume execution"; the effect is a
/// hard cap on files opened per second (Table II: 100 → 1 file/s).
///
/// # Examples
///
/// ```
/// use valkyrie_sim::cgroup::FileRateLimiter;
/// let f = FileRateLimiter::new(100.0).with_share(0.5);
/// assert_eq!(f.files_per_epoch(100), 5.0); // 50 files/s × 0.1 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileRateLimiter {
    default_files_per_sec: f64,
    share: f64,
}

impl FileRateLimiter {
    /// A limiter whose unrestricted rate is `files_per_sec`.
    pub fn new(files_per_sec: f64) -> Self {
        Self {
            default_files_per_sec: files_per_sec.max(0.0),
            share: 1.0,
        }
    }

    /// Returns a copy with the rate share set (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_share(mut self, share: f64) -> Self {
        self.share = share.clamp(0.0, 1.0);
        self
    }

    /// Current rate share.
    pub fn share(&self) -> f64 {
        self.share
    }

    /// Effective file-open budget for an epoch of `epoch_ticks`
    /// (1 tick = 1 ms).
    pub fn files_per_epoch(&self, epoch_ticks: u64) -> f64 {
        self.default_files_per_sec * self.share * epoch_ticks as f64 / 1000.0
    }
}

impl Default for FileRateLimiter {
    fn default() -> Self {
        Self::new(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_quota_clamps() {
        assert_eq!(CpuController::new(2.0).quota(), 1.0);
        assert_eq!(CpuController::new(-1.0).quota(), 0.0);
    }

    #[test]
    fn cpu_cap_is_min_of_grant_and_quota() {
        let c = CpuController::new(0.01);
        assert_eq!(c.cap_ticks(100, 100), 1);
        assert_eq!(c.cap_ticks(100, 0), 0);
    }

    #[test]
    fn memory_efficiency_matches_table2_calibration() {
        // Paper Table II: 93.6 % of working set → 99.96 % slowdown;
        // 89.4 % → 99.99 % slowdown.
        let eff_936 = MemoryController::new(0.936).efficiency();
        let eff_894 = MemoryController::new(0.894).efficiency();
        assert!(
            (eff_936 / 3.85e-4 - 1.0).abs() < 0.25,
            "eff(0.936) = {eff_936}"
        );
        assert!(
            (eff_894 / 5.76e-5 - 1.0).abs() < 0.25,
            "eff(0.894) = {eff_894}"
        );
    }

    #[test]
    fn memory_efficiency_is_monotone_and_sharp() {
        let mut prev = 0.0;
        for r in [0.5, 0.7, 0.9, 0.95, 0.99, 1.0] {
            let e = MemoryController::new(r).efficiency();
            assert!(e >= prev, "efficiency must grow with limit");
            prev = e;
        }
        // Sharp: even a 1 % deficit already hurts badly.
        assert!(MemoryController::new(0.99).efficiency() < 0.05);
        assert_eq!(MemoryController::new(1.0).efficiency(), 1.0);
    }

    #[test]
    fn file_rate_budget() {
        let f = FileRateLimiter::new(100.0);
        assert_eq!(f.files_per_epoch(100), 10.0);
        let f = f.with_share(0.01);
        assert!((f.files_per_epoch(100) - 0.1).abs() < 1e-12);
    }
}
