//! Simulated OS / machine substrate for the Valkyrie reproduction.
//!
//! The paper evaluates Valkyrie on bare-metal Linux: the CFS scheduler is
//! the lever of the Eq. 8 actuator, cgroup v2 controllers throttle memory /
//! network / filesystem, and a DDR3 DIMM hosts the rowhammer experiment.
//! This crate simulates that machine:
//!
//! * [`sched`] — a CFS model with kernel-style nice weights, target latency
//!   and vruntime scheduling (Eq. 7);
//! * [`cgroup`] — CPU quota, memory-limit thrashing model and file-rate
//!   limiter matching the response curves of Table II;
//! * [`net`] — token-bucket network shaping calibrated against Table II;
//! * [`dram`] — per-refresh-window disturbance model for rowhammer;
//! * [`fs`] — a victim filesystem for ransomware / exfiltration;
//! * [`machine`] — composes everything and drives [`machine::Workload`]s
//!   epoch by epoch;
//! * [`platform`] — the three Table IV evaluation machines.
//!
//! # Examples
//!
//! ```
//! use valkyrie_sim::prelude::*;
//! let mut machine = Machine::new(MachineConfig::default());
//! assert_eq!(machine.epoch(), 0);
//! machine.run_epoch();
//! assert_eq!(machine.epoch(), 1);
//! ```

pub mod cgroup;
pub mod clock;
pub mod cluster;
pub mod dram;
pub mod fs;
pub mod machine;
pub mod net;
pub mod pid;
pub mod platform;
pub mod sched;

pub use clock::{Tick, EPOCH_TICKS, MS_PER_TICK};
pub use cluster::{Cluster, ClusterConfig};
pub use machine::{EpochCtx, EpochReport, Machine, MachineConfig, Workload};
pub use pid::{GlobalPid, MachineId, Pid};
pub use platform::Platform;

/// Convenient glob import of the substrate's primary types.
pub mod prelude {
    pub use crate::cgroup::{CpuController, FileRateLimiter, MemoryController};
    pub use crate::clock::{Tick, EPOCH_TICKS};
    pub use crate::cluster::{Cluster, ClusterConfig};
    pub use crate::dram::{Dram, DramConfig};
    pub use crate::fs::SimFs;
    pub use crate::machine::{EpochCtx, EpochReport, Machine, MachineConfig, Workload};
    pub use crate::net::NetController;
    pub use crate::pid::{GlobalPid, MachineId, Pid};
    pub use crate::platform::Platform;
    pub use crate::sched::{CfsScheduler, SchedConfig};
}
