//! Simulated process identifiers.

use std::fmt;

/// Identifier of a simulated process.
///
/// Convertible to/from the core crate's
/// [`ProcessId`](valkyrie_core::ProcessId) so the response engine and the
/// machine substrate can refer to the same process.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::pid::Pid;
/// use valkyrie_core::ProcessId;
/// let pid = Pid(3);
/// let core_id: ProcessId = pid.into();
/// assert_eq!(Pid::from(core_id), pid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

impl From<Pid> for valkyrie_core::ProcessId {
    fn from(pid: Pid) -> Self {
        valkyrie_core::ProcessId(pid.0)
    }
}

impl From<valkyrie_core::ProcessId> for Pid {
    fn from(id: valkyrie_core::ProcessId) -> Self {
        Pid(id.0)
    }
}

/// Identifier of a simulated machine within a [`Cluster`](crate::Cluster).
///
/// Ids are handed out sequentially at boot and never reused, so a machine
/// id names one boot: a decommissioned machine's processes can never be
/// confused with those of a later machine reusing its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine {}", self.0)
    }
}

/// A cluster-wide process name: which machine, and which process on it.
///
/// Packs into the core crate's [`ProcessId`](valkyrie_core::ProcessId)
/// ([`ProcessId::from_parts`](valkyrie_core::ProcessId::from_parts)) so
/// the fleet engine monitors cluster processes with no new key type;
/// machine 0 packs to the bare local pid, keeping single-machine
/// experiments bit-compatible.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::pid::{GlobalPid, MachineId, Pid};
/// use valkyrie_core::ProcessId;
/// let gpid = GlobalPid { machine: MachineId(3), pid: Pid(7) };
/// let core_id: ProcessId = gpid.into();
/// assert_eq!(core_id, ProcessId::from_parts(3, 7));
/// assert_eq!(GlobalPid::from(core_id), gpid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GlobalPid {
    /// The machine hosting the process.
    pub machine: MachineId,
    /// The machine-local process id.
    pub pid: Pid,
}

impl fmt::Display for GlobalPid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.machine, self.pid)
    }
}

impl From<GlobalPid> for valkyrie_core::ProcessId {
    fn from(gpid: GlobalPid) -> Self {
        valkyrie_core::ProcessId::from_parts(gpid.machine.0, gpid.pid.0)
    }
}

impl From<valkyrie_core::ProcessId> for GlobalPid {
    fn from(id: valkyrie_core::ProcessId) -> Self {
        GlobalPid {
            machine: MachineId(id.machine()),
            pid: Pid(id.local()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let pid = Pid(77);
        let core: valkyrie_core::ProcessId = pid.into();
        assert_eq!(core.0, 77);
        assert_eq!(Pid::from(core), pid);
    }

    #[test]
    fn global_pid_round_trips_through_core() {
        for (machine, local) in [(0u32, 1u64), (1, 1), (9, 42), (1 << 20, 1 << 30)] {
            let gpid = GlobalPid {
                machine: MachineId(machine),
                pid: Pid(local),
            };
            let core: valkyrie_core::ProcessId = gpid.into();
            assert_eq!(GlobalPid::from(core), gpid);
        }
    }

    #[test]
    fn machine_zero_is_the_bare_pid() {
        let gpid = GlobalPid {
            machine: MachineId(0),
            pid: Pid(5),
        };
        let core: valkyrie_core::ProcessId = gpid.into();
        assert_eq!(core, valkyrie_core::ProcessId(5));
    }

    #[test]
    fn global_pid_ordering_is_machine_major() {
        let a = GlobalPid {
            machine: MachineId(1),
            pid: Pid(999),
        };
        let b = GlobalPid {
            machine: MachineId(2),
            pid: Pid(1),
        };
        assert!(a < b);
    }
}
