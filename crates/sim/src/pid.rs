//! Simulated process identifiers.

use std::fmt;

/// Identifier of a simulated process.
///
/// Convertible to/from the core crate's
/// [`ProcessId`](valkyrie_core::ProcessId) so the response engine and the
/// machine substrate can refer to the same process.
///
/// # Examples
///
/// ```
/// use valkyrie_sim::pid::Pid;
/// use valkyrie_core::ProcessId;
/// let pid = Pid(3);
/// let core_id: ProcessId = pid.into();
/// assert_eq!(Pid::from(core_id), pid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

impl From<Pid> for valkyrie_core::ProcessId {
    fn from(pid: Pid) -> Self {
        valkyrie_core::ProcessId(pid.0)
    }
}

impl From<valkyrie_core::ProcessId> for Pid {
    fn from(id: valkyrie_core::ProcessId) -> Self {
        Pid(id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let pid = Pid(77);
        let core: valkyrie_core::ProcessId = pid.into();
        assert_eq!(core.0, 77);
        assert_eq!(Pid::from(core), pid);
    }
}
