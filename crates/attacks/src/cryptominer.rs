//! The cryptominer workload: a double-SHA-256 proof-of-work search
//! (paper Fig. 6c).
//!
//! Purely CPU-bound — the paper throttles it with the cgroup CPU actuator
//! and reports a 99.04 % slowdown in the suspicious state. Progress is
//! hashes computed.

use crate::crypto::sha256::pow_attempt;
use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};

/// Miner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CryptominerConfig {
    /// Hash throughput at 100 % CPU, hashes per tick (1 tick = 1 ms).
    pub hashes_per_tick: f64,
    /// Difficulty in leading zero bits for a share.
    pub difficulty_bits: u32,
    /// How many of each epoch's hashes are computed for real (the rest are
    /// accounted numerically to keep simulation time bounded).
    pub real_hashes_per_epoch: u64,
}

impl Default for CryptominerConfig {
    fn default() -> Self {
        Self {
            hashes_per_tick: 2_000.0, // 2 MH/s-class CPU miner
            difficulty_bits: 18,
            real_hashes_per_epoch: 64,
        }
    }
}

/// The cryptominer workload.
#[derive(Debug, Clone)]
pub struct Cryptominer {
    config: CryptominerConfig,
    nonce: u64,
    hashes: u64,
    shares_found: u64,
    signature: Signature,
}

impl Cryptominer {
    /// Creates the miner.
    pub fn new(config: CryptominerConfig) -> Self {
        Self {
            config,
            nonce: 0,
            hashes: 0,
            shares_found: 0,
            signature: Signature::cryptominer(),
        }
    }

    /// Total hashes computed.
    pub fn hashes(&self) -> u64 {
        self.hashes
    }

    /// Proof-of-work shares found.
    pub fn shares_found(&self) -> u64 {
        self.shares_found
    }
}

impl Default for Cryptominer {
    fn default() -> Self {
        Self::new(CryptominerConfig::default())
    }
}

impl Workload for Cryptominer {
    fn name(&self) -> &str {
        "cryptominer"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let budget = (ctx.cpu_ticks as f64 * self.config.hashes_per_tick) as u64;
        // Run a bounded number of genuine double-SHA-256 attempts; the
        // remainder is the same arithmetic, accounted statistically.
        let real = budget.min(self.config.real_hashes_per_epoch);
        for _ in 0..real {
            if pow_attempt(
                b"valkyrie-block-header",
                self.nonce,
                self.config.difficulty_bits,
            ) {
                self.shares_found += 1;
            }
            self.nonce += 1;
        }
        let skipped = budget - real;
        self.nonce += skipped;
        // Expected shares among the skipped attempts.
        let p = 2f64.powi(-(self.config.difficulty_bits as i32));
        let expected = skipped as f64 * p;
        self.shares_found += expected.floor() as u64;
        if ctx.rng.gen_bool(expected.fract().clamp(0.0, 1.0)) {
            self.shares_found += 1;
        }
        self.hashes += budget;

        EpochReport {
            progress: budget as f64,
            hpc: self.signature.sample(ctx.rng, ctx.cpu_share()),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_sim::machine::{Machine, MachineConfig};

    #[test]
    fn unthrottled_hash_rate_matches_calibration() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Cryptominer::default()));
        let mut hashes = 0.0;
        for _ in 0..10 {
            hashes += m.run_epoch()[&pid].progress;
        }
        // 1 second at 2000 hashes/ms = 2.0e6.
        assert!((hashes - 2.0e6).abs() < 1e5, "hashes {hashes}");
    }

    #[test]
    fn one_percent_cpu_gives_99_percent_slowdown() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(Cryptominer::default()));
        m.set_cpu_quota(pid, 0.01);
        let mut hashes = 0.0;
        for _ in 0..10 {
            hashes += m.run_epoch()[&pid].progress;
        }
        let slowdown = 1.0 - hashes / 2.0e6;
        assert!(
            slowdown > 0.985 && slowdown <= 1.0,
            "slowdown {slowdown} should be ~0.99"
        );
    }

    #[test]
    fn shares_appear_at_low_difficulty() {
        let mut m = Machine::new(MachineConfig::default());
        let miner = Cryptominer::new(CryptominerConfig {
            difficulty_bits: 6,
            real_hashes_per_epoch: 512,
            ..CryptominerConfig::default()
        });
        let pid = m.spawn(Box::new(miner));
        for _ in 0..5 {
            m.run_epoch();
        }
        let _ = pid; // shares tracked internally; progress is hash count
    }
}
