//! Prime+Probe on the L1 instruction cache against a square-and-multiply
//! RSA victim (Aciiçmez-Brumley-Grabher; paper Fig. 4b).
//!
//! The victim repeatedly exponentiates with a fixed secret exponent. The
//! spy primes the I-cache set holding the *multiply* routine, lets the
//! victim execute one operation window, and probes: a miss means the
//! multiply ran, i.e. the exponent bit was 1. Observations are noisy, so the
//! spy accumulates majority votes per bit position across exponentiations.
//! Progress is the **bit error rate** against the true exponent — 0.5 means
//! the attacker knows nothing (random guessing).

use crate::crypto::modexp::{exponent_bits, mod_exp_traced, ModExpOp};
use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};
use valkyrie_uarch::{Cache, CacheConfig};

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1iRsaConfig {
    /// Operation windows observed per full (unthrottled) epoch.
    pub observations_per_epoch: u64,
    /// Probability one window observation is flipped by noise.
    pub observation_noise: f64,
    /// The victim's secret exponent.
    pub exponent: u64,
}

impl Default for L1iRsaConfig {
    fn default() -> Self {
        Self {
            observations_per_epoch: 350,
            observation_noise: 0.44,
            exponent: 0xB5D3_9A17_62E4_F00D,
        }
    }
}

/// The L1-I Prime+Probe attack workload.
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::l1i_rsa::{L1iRsaAttack, L1iRsaConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut atk = L1iRsaAttack::new(L1iRsaConfig::default());
/// assert!((atk.bit_error_rate() - 0.5).abs() < 1e-9);
/// atk.observe_windows(500, &mut rng);
/// assert_eq!(atk.observations(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct L1iRsaAttack {
    config: L1iRsaConfig,
    icache: Cache,
    /// Victim operation trace for one exponentiation (repeated forever).
    op_windows: Vec<bool>, // true = the window's bit is 1 (multiply ran)
    /// Bit position of each window within the exponent.
    window_bit: Vec<usize>,
    /// Votes per exponent bit: (ones, total).
    votes: Vec<(u64, u64)>,
    cursor: usize,
    observations: u64,
    signature: Signature,
}

impl L1iRsaAttack {
    /// I-cache set holding the multiply routine.
    const MUL_SET: usize = 21;
    /// Line tag of the multiply routine.
    const MUL_TAG: u64 = 7;
    /// Spy eviction-line tag space.
    const SPY_TAG: u64 = 0x2000;

    /// Creates the attack for the configured victim exponent.
    pub fn new(config: L1iRsaConfig) -> Self {
        let (_, trace) = mod_exp_traced(0x1234_5678, config.exponent, 0xFFFF_FFFF_FFC5);
        let bits = exponent_bits(config.exponent);
        // One window per exponent bit: Square [+ Multiply].
        let mut op_windows = Vec::with_capacity(bits.len());
        let mut window_bit = Vec::with_capacity(bits.len());
        let mut i = 0;
        let mut bit_idx = 0;
        while i < trace.len() {
            let has_mul = i + 1 < trace.len() && trace[i + 1] == ModExpOp::Multiply;
            op_windows.push(has_mul);
            window_bit.push(bit_idx);
            i += if has_mul { 2 } else { 1 };
            bit_idx += 1;
        }
        let votes = vec![(0, 0); bits.len()];
        Self {
            config,
            icache: Cache::new(CacheConfig::l1i()),
            op_windows,
            window_bit,
            votes,
            cursor: 0,
            observations: 0,
            signature: Signature::llc_thrashing(),
        }
    }

    /// Total windows observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Observes `n` victim operation windows through the I-cache.
    pub fn observe_windows<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) {
        for _ in 0..n {
            let w = self.cursor % self.op_windows.len();
            self.cursor += 1;
            let bit_is_one = self.op_windows[w];

            // Prime the multiply routine's set.
            self.icache.prime_set(Self::MUL_SET, Self::SPY_TAG);
            // Victim executes the window: fetching the multiply routine
            // evicts a spy line from MUL_SET.
            if bit_is_one {
                let addr = self.icache.address_in_set(Self::MUL_SET, Self::MUL_TAG);
                self.icache.access(addr);
            }
            // Probe.
            let (misses, _) = self.icache.probe_set(Self::MUL_SET, Self::SPY_TAG);
            let mut observed = misses > 0;
            if rng.gen::<f64>() < self.config.observation_noise {
                observed = !observed;
            }

            let bit = self.window_bit[w];
            let (ones, total) = &mut self.votes[bit];
            if observed {
                *ones += 1;
            }
            *total += 1;
            self.observations += 1;
        }
    }

    /// Current bit error rate against the true exponent. Bit positions with
    /// no observations (or split votes) contribute 0.5.
    pub fn bit_error_rate(&self) -> f64 {
        let truth = exponent_bits(self.config.exponent);
        let mut err = 0.0;
        for (bit, &(ones, total)) in truth.iter().zip(&self.votes) {
            if total == 0 || 2 * ones == total {
                err += 0.5;
                continue;
            }
            let guess = 2 * ones > total;
            if guess != *bit {
                err += 1.0;
            }
        }
        err / truth.len() as f64
    }
}

impl Workload for L1iRsaAttack {
    fn name(&self) -> &str {
        "l1i-prime-probe-rsa"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let n = (self.config.observations_per_epoch as f64 * share).round() as u64;
        self.observe_windows(n, ctx.rng);
        EpochReport {
            progress: n as f64,
            hpc: self.signature.sample(ctx.rng, share),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_at_random_guessing() {
        let atk = L1iRsaAttack::new(L1iRsaConfig::default());
        assert!((atk.bit_error_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noiseless_observation_recovers_exponent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut atk = L1iRsaAttack::new(L1iRsaConfig {
            observation_noise: 0.0,
            ..L1iRsaConfig::default()
        });
        // One full pass over all windows suffices without noise.
        atk.observe_windows(200, &mut rng);
        assert!(
            atk.bit_error_rate() < 0.01,
            "error {} should be ~0",
            atk.bit_error_rate()
        );
    }

    #[test]
    fn noisy_observation_converges_with_votes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut atk = L1iRsaAttack::new(L1iRsaConfig::default());
        atk.observe_windows(40_000, &mut rng);
        assert!(
            atk.bit_error_rate() < 0.15,
            "error {} after 40k noisy windows",
            atk.bit_error_rate()
        );
    }

    #[test]
    fn few_observations_stay_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut atk = L1iRsaAttack::new(L1iRsaConfig::default());
        atk.observe_windows(100, &mut rng);
        let e = atk.bit_error_rate();
        assert!(e > 0.3, "error {e} should stay near 0.5 with few samples");
    }

    #[test]
    fn windows_match_exponent_bits() {
        let atk = L1iRsaAttack::new(L1iRsaConfig {
            exponent: 0b1011,
            ..L1iRsaConfig::default()
        });
        assert_eq!(atk.op_windows, vec![true, false, true, true]);
    }
}
