//! Prime+Probe on the L1 data cache against a T-table AES victim
//! (Osvik-Shamir-Tromer; paper Fig. 4a).
//!
//! Each sample: the spy primes the 64 L1-D sets, the victim encrypts one
//! known random plaintext through the cache (all 144 T-table lookups), and
//! the spy probes. First-round lookups touch set `16·t + ((pt ⊕ key) ≫ 4)`,
//! so for every key byte the candidate high nibble whose predicted set
//! misses most often is the right one. Progress is measured by **guessing
//! entropy** (Massey): the expected rank of the true key byte among all 256
//! candidates — 128 means the attacker has learnt nothing, ≤16 means the
//! high nibbles are recovered (the line-granularity limit of the attack).

use crate::crypto::aes::Aes128;
use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};
use valkyrie_uarch::{Cache, CacheConfig};

/// Key-byte positions in an AES-128 key.
const KEY_BYTES: usize = 16;
/// High-nibble candidates per key byte (line granularity: 16 T-table
/// entries per 64-byte line).
const NIBBLES: usize = 16;
/// Sets covered by one 1 KiB T-table (16 lines).
const SETS_PER_TABLE: usize = 16;

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1dAesConfig {
    /// Prime+Probe samples per full (unthrottled) epoch.
    pub samples_per_epoch: u64,
    /// Probability that one set's probe observation is flipped by noise
    /// (system activity, prefetchers, timer jitter).
    pub observation_noise: f64,
    /// Secret key seed (the victim's key is derived from it).
    pub key_seed: u64,
}

impl Default for L1dAesConfig {
    fn default() -> Self {
        Self {
            samples_per_epoch: 60,
            observation_noise: 0.40,
            key_seed: 0xAE5_0001,
        }
    }
}

/// The L1-D Prime+Probe attack workload.
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::l1d_aes::{L1dAesAttack, L1dAesConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut atk = L1dAesAttack::new(L1dAesConfig::default());
/// assert!((atk.guessing_entropy() - 128.5).abs() < 1.0); // knows nothing yet
/// for _ in 0..200 {
///     atk.collect_sample(&mut rng);
/// }
/// assert_eq!(atk.samples(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct L1dAesAttack {
    config: L1dAesConfig,
    aes: Aes128,
    cache: Cache,
    /// `scores[byte][nibble]`: accumulated miss evidence.
    scores: [[f64; NIBBLES]; KEY_BYTES],
    samples: u64,
    signature: Signature,
}

impl L1dAesAttack {
    /// Creates the attack with a key derived from the config seed.
    pub fn new(config: L1dAesConfig) -> Self {
        let mut key = [0u8; 16];
        let mut s = config.key_seed;
        for k in key.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *k = (s >> 33) as u8;
        }
        Self {
            config,
            aes: Aes128::new(&key),
            cache: Cache::new(CacheConfig::l1d()),
            scores: [[0.0; NIBBLES]; KEY_BYTES],
            samples: 0,
            signature: Signature::llc_thrashing(),
        }
    }

    /// Samples collected so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The victim's secret key (ground truth for evaluation).
    pub fn true_key(&self) -> &[u8; 16] {
        self.aes.key()
    }

    /// Performs one Prime+Probe sample: prime, victim encryption, probe.
    pub fn collect_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // The spy's eviction lines live far above the 4 KiB table region.
        const SPY_TAG: u64 = 0x1000;
        let sets = self.cache.config().sets;

        // Prime all sets.
        for set in 0..sets {
            self.cache.prime_set(set, SPY_TAG);
        }

        // Victim encrypts one random plaintext through the same cache.
        let mut pt = [0u8; 16];
        rng.fill(&mut pt);
        let (_, trace) = self.aes.encrypt_traced(&pt);
        for (table, idx) in &trace {
            let addr = (*table as u64) * 1024 + (*idx as u64) * 4;
            self.cache.access(addr);
        }

        // Probe and record noisy per-set miss observations.
        let mut missed = [false; 64];
        for (set, m) in missed.iter_mut().enumerate() {
            let (misses, _) = self.cache.probe_set(set, SPY_TAG);
            let observed = misses > 0;
            *m = if rng.gen::<f64>() < self.config.observation_noise {
                !observed
            } else {
                observed
            };
        }

        // Score candidates: for key byte p (table p % 4), candidate nibble c
        // predicts set 16·t + ((pt[p] ≫ 4) ⊕ c).
        for (p, &pt_p) in pt.iter().enumerate().take(KEY_BYTES) {
            let table = p % 4;
            for c in 0..NIBBLES {
                let line = ((pt_p >> 4) ^ c as u8) as usize;
                let set = SETS_PER_TABLE * table + line;
                if missed[set] {
                    self.scores[p][c] += 1.0;
                }
            }
        }
        self.samples += 1;
    }

    /// Guessing entropy over the full key byte (expected rank of the true
    /// byte among 256 candidates, ties averaged), averaged over the 16 key
    /// bytes. Starts at 128.5 (no information).
    pub fn guessing_entropy(&self) -> f64 {
        let mut total = 0.0;
        for p in 0..KEY_BYTES {
            let true_nibble = (self.aes.key()[p] >> 4) as usize;
            let s_true = self.scores[p][true_nibble];
            let better = self.scores[p].iter().filter(|&&s| s > s_true).count() as f64;
            let ties = self.scores[p]
                .iter()
                .enumerate()
                .filter(|&(c, &s)| c != true_nibble && s == s_true)
                .count() as f64;
            let nibble_rank = 1.0 + better + ties / 2.0;
            // Each nibble bucket holds 16 byte candidates; the true byte
            // sits in the middle of its bucket on average.
            total += (nibble_rank - 1.0) * 16.0 + 8.5;
        }
        total / KEY_BYTES as f64
    }

    /// Number of key bytes whose true high nibble currently ranks first.
    pub fn recovered_nibbles(&self) -> usize {
        (0..KEY_BYTES)
            .filter(|&p| {
                let true_nibble = (self.aes.key()[p] >> 4) as usize;
                let s_true = self.scores[p][true_nibble];
                self.scores[p]
                    .iter()
                    .enumerate()
                    .all(|(c, &s)| c == true_nibble || s < s_true)
            })
            .count()
    }
}

impl Workload for L1dAesAttack {
    fn name(&self) -> &str {
        "l1d-prime-probe-aes"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let n = (self.config.samples_per_epoch as f64 * share).round() as u64;
        for _ in 0..n {
            self.collect_sample(ctx.rng);
        }
        EpochReport {
            progress: n as f64,
            hpc: self.signature.sample(ctx.rng, share),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_guessing_entropy_is_random_level() {
        let atk = L1dAesAttack::new(L1dAesConfig::default());
        assert!((atk.guessing_entropy() - 128.5).abs() < 1e-9);
        assert_eq!(atk.recovered_nibbles(), 0);
    }

    #[test]
    fn noiseless_attack_recovers_key_quickly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut atk = L1dAesAttack::new(L1dAesConfig {
            observation_noise: 0.0,
            ..L1dAesConfig::default()
        });
        for _ in 0..400 {
            atk.collect_sample(&mut rng);
        }
        assert!(
            atk.guessing_entropy() < 20.0,
            "GE {} after 400 noiseless samples",
            atk.guessing_entropy()
        );
        assert!(atk.recovered_nibbles() >= 12);
    }

    #[test]
    fn noisy_attack_needs_many_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut atk = L1dAesAttack::new(L1dAesConfig::default());
        for _ in 0..100 {
            atk.collect_sample(&mut rng);
        }
        // Far from recovered with only 100 noisy samples.
        assert!(
            atk.guessing_entropy() > 60.0,
            "GE {} too low after 100 noisy samples",
            atk.guessing_entropy()
        );
    }

    #[test]
    fn guessing_entropy_decreases_with_samples() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut atk = L1dAesAttack::new(L1dAesConfig::default());
        for _ in 0..3000 {
            atk.collect_sample(&mut rng);
        }
        let ge = atk.guessing_entropy();
        assert!(ge < 70.0, "GE {ge} after 3000 samples");
    }

    #[test]
    fn key_derivation_is_deterministic() {
        let a = L1dAesAttack::new(L1dAesConfig::default());
        let b = L1dAesAttack::new(L1dAesConfig::default());
        assert_eq!(a.true_key(), b.true_key());
    }
}
