//! Cryptographic primitives implemented in-crate (no external crypto
//! dependencies): the victims and payloads of the evaluated attacks.
//!
//! * [`aes`] — AES-128 with T-table lookups, exposing the table-access trace
//!   the L1-D Prime+Probe attack exploits (Osvik/Shamir/Tromer).
//! * [`sha256`] — FIPS-180 SHA-256, the cryptominer's proof-of-work hash.
//! * [`stream`] — a xorshift64*-based stream cipher, the ransomware's
//!   payload encryption.
//! * [`modexp`] — square-and-multiply modular exponentiation with an
//!   operation trace, the L1-I cache attack's RSA victim.

pub mod aes;
pub mod modexp;
pub mod sha256;
pub mod stream;
