//! A xorshift64*-based stream cipher — the ransomware's payload encryption.
//!
//! Not cryptographically strong (by design: the point is realistic *work*,
//! not security), but a genuine keyed keystream generator whose cost scales
//! linearly with the bytes processed, like the AES-CTR loops real
//! ransomware run.

/// A keyed keystream cipher.
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::crypto::stream::StreamCipher;
/// let mut enc = StreamCipher::new(42);
/// let mut data = *b"pay the ransom";
/// enc.apply(&mut data);
/// assert_ne!(&data, b"pay the ransom");
/// let mut dec = StreamCipher::new(42);
/// dec.apply(&mut data);
/// assert_eq!(&data, b"pay the ransom");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCipher {
    state: u64,
    produced: u64,
}

impl StreamCipher {
    /// Creates a cipher from a 64-bit key.
    pub fn new(key: u64) -> Self {
        Self {
            // Avoid the all-zero state xorshift cannot leave.
            state: key ^ 0x9E37_79B9_7F4A_7C15,
            produced: 0,
        }
    }

    /// Total keystream bytes produced so far.
    pub fn produced_bytes(&self) -> u64 {
        self.produced
    }

    fn next_word(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(8) {
            let ks = self.next_word().to_le_bytes();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            self.produced += chunk.len() as u64;
        }
    }

    /// Advances the keystream as if `n` bytes were encrypted, doing the
    /// real generator work but without a data buffer (used to account for
    /// large simulated files at full fidelity of *cost*).
    pub fn skip(&mut self, n: u64) {
        let words = n.div_ceil(8);
        for _ in 0..words {
            self.next_word();
        }
        self.produced += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut data = vec![7u8; 1000];
        let mut enc = StreamCipher::new(1);
        enc.apply(&mut data);
        assert!(data.iter().any(|&b| b != 7));
        let mut dec = StreamCipher::new(1);
        dec.apply(&mut data);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn different_keys_differ() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        StreamCipher::new(1).apply(&mut a);
        StreamCipher::new(2).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn skip_matches_apply_in_state() {
        let mut a = StreamCipher::new(9);
        let mut b = StreamCipher::new(9);
        let mut buf = vec![0u8; 80];
        a.apply(&mut buf);
        b.skip(80);
        assert_eq!(a.state, b.state);
        assert_eq!(a.produced_bytes(), b.produced_bytes());
    }

    #[test]
    fn keystream_is_not_constant() {
        let mut c = StreamCipher::new(3);
        let w1 = c.next_word();
        let w2 = c.next_word();
        assert_ne!(w1, w2);
    }
}
