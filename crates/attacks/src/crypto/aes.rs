//! AES-128 encryption using T-table lookups, with an access trace.
//!
//! The classic software AES implementation performs four 1 KiB table
//! lookups per round; the *index* of each first-round lookup is
//! `plaintext[i] ^ key[i]`, which is what the Prime+Probe attack on the L1
//! data cache observes at cache-line granularity (Osvik, Shamir, Tromer,
//! "Cache Attacks and Countermeasures: The Case of AES").
//!
//! Tables are generated from the AES S-box at first use; the implementation
//! is validated against the FIPS-197 Appendix C known-answer test.

use std::sync::OnceLock;

/// Number of 32-bit entries per T-table.
pub const TABLE_ENTRIES: usize = 256;

/// One T-table lookup: `(table_index ∈ 0..4, byte_index ∈ 0..256)`.
pub type TableAccess = (u8, u8);

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1B } else { 0 })
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

fn build_sbox() -> [u8; 256] {
    // Multiplicative inverse in GF(2^8) followed by the affine transform.
    let mut inv = [0u8; 256];
    for x in 1..=255u8 {
        for y in 1..=255u8 {
            if gf_mul(x, y) == 1 {
                inv[x as usize] = y;
                break;
            }
        }
    }
    let mut sbox = [0u8; 256];
    for (i, s) in sbox.iter_mut().enumerate() {
        let b = inv[i];
        *s = b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
    }
    sbox
}

struct Tables {
    sbox: [u8; 256],
    te: [[u32; TABLE_ENTRIES]; 4],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let sbox = build_sbox();
        let mut te = [[0u32; TABLE_ENTRIES]; 4];
        for i in 0..256 {
            let s = sbox[i];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            // Te0[i] = [s2, s, s, s3] packed big-endian.
            let t0 = u32::from_be_bytes([s2, s, s, s3]);
            te[0][i] = t0;
            te[1][i] = t0.rotate_right(8);
            te[2][i] = t0.rotate_right(16);
            te[3][i] = t0.rotate_right(24);
        }
        Tables { sbox, te }
    })
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];

/// An AES-128 key schedule plus trace machinery.
///
/// # Examples
///
/// FIPS-197 Appendix C known-answer test:
///
/// ```
/// use valkyrie_attacks::crypto::aes::Aes128;
/// let key = [0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
///            0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f];
/// let pt = [0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
///           0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff];
/// let aes = Aes128::new(&key);
/// let ct = aes.encrypt_block(&pt);
/// assert_eq!(ct[..4], [0x69, 0xc4, 0xe0, 0xd8]);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u32; 4]; 11],
    key: [u8; 16],
}

impl Aes128 {
    /// Expands the 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let t = tables();
        let mut w = [0u32; 44];
        for i in 0..4 {
            w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in 4..44 {
            let mut tmp = w[i - 1];
            if i % 4 == 0 {
                tmp = tmp.rotate_left(8);
                let b = tmp.to_be_bytes();
                tmp = u32::from_be_bytes([
                    t.sbox[b[0] as usize],
                    t.sbox[b[1] as usize],
                    t.sbox[b[2] as usize],
                    t.sbox[b[3] as usize],
                ]);
                tmp ^= (RCON[i / 4 - 1] as u32) << 24;
            }
            w[i] = w[i - 4] ^ tmp;
        }
        let mut round_keys = [[0u32; 4]; 11];
        for r in 0..11 {
            round_keys[r].copy_from_slice(&w[4 * r..4 * r + 4]);
        }
        Self {
            round_keys,
            key: *key,
        }
    }

    /// The raw key bytes (the attack's ground truth).
    pub fn key(&self) -> &[u8; 16] {
        &self.key
    }

    /// Encrypts one block.
    pub fn encrypt_block(&self, pt: &[u8; 16]) -> [u8; 16] {
        self.encrypt_traced(pt).0
    }

    /// Encrypts one block and returns the T-table access trace
    /// (the side channel the spy observes through the cache).
    pub fn encrypt_traced(&self, pt: &[u8; 16]) -> ([u8; 16], Vec<TableAccess>) {
        let t = tables();
        let mut trace = Vec::with_capacity(40);
        let mut s = [0u32; 4];
        for i in 0..4 {
            s[i] = u32::from_be_bytes([pt[4 * i], pt[4 * i + 1], pt[4 * i + 2], pt[4 * i + 3]])
                ^ self.round_keys[0][i];
        }
        for round in 1..10 {
            let mut next = [0u32; 4];
            for i in 0..4 {
                let b0 = (s[i] >> 24) as u8;
                let b1 = (s[(i + 1) % 4] >> 16) as u8;
                let b2 = (s[(i + 2) % 4] >> 8) as u8;
                let b3 = s[(i + 3) % 4] as u8;
                trace.push((0, b0));
                trace.push((1, b1));
                trace.push((2, b2));
                trace.push((3, b3));
                next[i] = t.te[0][b0 as usize]
                    ^ t.te[1][b1 as usize]
                    ^ t.te[2][b2 as usize]
                    ^ t.te[3][b3 as usize]
                    ^ self.round_keys[round][i];
            }
            s = next;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (via the S-box).
        let mut out = [0u8; 16];
        for i in 0..4 {
            let b0 = t.sbox[(s[i] >> 24) as usize];
            let b1 = t.sbox[((s[(i + 1) % 4] >> 16) & 0xff) as usize];
            let b2 = t.sbox[((s[(i + 2) % 4] >> 8) & 0xff) as usize];
            let b3 = t.sbox[(s[(i + 3) % 4] & 0xff) as usize];
            let word = u32::from_be_bytes([b0, b1, b2, b3]) ^ self.round_keys[10][i];
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        (out, trace)
    }

    /// The 16 first-round T-table accesses for a plaintext: access `i` hits
    /// table `i % 4` at index `pt[f(i)] ^ key[f(i)]` — the leakage the L1-D
    /// attack keys on.
    pub fn first_round_accesses(&self, pt: &[u8; 16]) -> [TableAccess; 16] {
        let mut out = [(0u8, 0u8); 16];
        // State word i consumes bytes (col-major with ShiftRows offsets).
        let mut n = 0;
        for i in 0..4 {
            for (tbl, src) in [
                (0usize, i),
                (1, (i + 1) % 4),
                (2, (i + 2) % 4),
                (3, (i + 3) % 4),
            ] {
                let byte_pos = 4 * src + tbl;
                out[n] = (tbl as u8, pt[byte_pos] ^ self.key[byte_pos]);
                n += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    const FIPS_PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];
    const FIPS_CT: [u8; 16] = [
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5,
        0x5a,
    ];

    #[test]
    fn fips197_known_answer() {
        let aes = Aes128::new(&FIPS_KEY);
        assert_eq!(aes.encrypt_block(&FIPS_PT), FIPS_CT);
    }

    #[test]
    fn sbox_spot_values() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
    }

    #[test]
    fn trace_has_36_rounds_of_lookups() {
        let aes = Aes128::new(&FIPS_KEY);
        let (_, trace) = aes.encrypt_traced(&FIPS_PT);
        // 9 full rounds × 16 lookups.
        assert_eq!(trace.len(), 144);
        assert!(trace.iter().all(|&(t, _)| t < 4));
    }

    #[test]
    fn first_round_accesses_are_pt_xor_key() {
        let aes = Aes128::new(&FIPS_KEY);
        let accesses = aes.first_round_accesses(&FIPS_PT);
        // Every byte position is covered exactly once and the index is
        // pt XOR key for that position.
        let mut seen = [false; 16];
        for (tbl, idx) in accesses {
            let found = (0..16).find(|&p| {
                !seen[p] && (FIPS_PT[p] ^ FIPS_KEY[p]) == idx && (p % 4) == tbl as usize
            });
            let p = found.expect("access must match a byte position");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn first_round_matches_traced_prefix() {
        let aes = Aes128::new(&FIPS_KEY);
        let (_, trace) = aes.encrypt_traced(&FIPS_PT);
        let first = aes.first_round_accesses(&FIPS_PT);
        assert_eq!(&trace[..16], &first[..]);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(&FIPS_KEY);
        let mut key2 = FIPS_KEY;
        key2[0] ^= 1;
        let b = Aes128::new(&key2);
        assert_ne!(a.encrypt_block(&FIPS_PT), b.encrypt_block(&FIPS_PT));
    }
}
