//! Square-and-multiply modular exponentiation with an operation trace —
//! the RSA-style victim of the L1 instruction-cache attack.
//!
//! The left-to-right binary method executes a *square* for every exponent
//! bit and a *multiply* only for the `1` bits. The multiply routine lives in
//! its own instruction-cache lines, so a spy probing those lines between
//! squarings reads the secret exponent bit by bit (Aciiçmez, Brumley,
//! Grabher, "New Results on Instruction Cache Attacks").

/// One executed operation of the square-and-multiply loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModExpOp {
    /// The squaring routine ran.
    Square,
    /// The multiply routine ran (ergo, the current exponent bit is 1).
    Multiply,
}

/// Computes `base^exp mod modulus` (left-to-right square-and-multiply).
///
/// # Panics
///
/// Panics if `modulus` is zero.
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::crypto::modexp::mod_exp;
/// assert_eq!(mod_exp(4, 13, 497), 445);
/// assert_eq!(mod_exp(2, 10, 1_000_000), 1024);
/// ```
pub fn mod_exp(base: u64, exp: u64, modulus: u64) -> u64 {
    mod_exp_traced(base, exp, modulus).0
}

/// Like [`mod_exp`] but also returns the executed operation sequence.
pub fn mod_exp_traced(base: u64, exp: u64, modulus: u64) -> (u64, Vec<ModExpOp>) {
    assert!(modulus != 0, "modulus must be non-zero");
    let m = modulus as u128;
    let b = (base as u128) % m;
    let mut acc: u128 = 1;
    let mut trace = Vec::new();
    if exp == 0 {
        return (1 % modulus, trace);
    }
    let bits = 64 - exp.leading_zeros();
    for i in (0..bits).rev() {
        acc = acc * acc % m;
        trace.push(ModExpOp::Square);
        if (exp >> i) & 1 == 1 {
            acc = acc * b % m;
            trace.push(ModExpOp::Multiply);
        }
    }
    (acc as u64, trace)
}

/// Recovers the exponent bits implied by an operation trace: a `Multiply`
/// directly after a `Square` means the bit was 1 (what the I-cache spy
/// reconstructs).
pub fn bits_from_trace(trace: &[ModExpOp]) -> Vec<bool> {
    let mut bits = Vec::new();
    let mut i = 0;
    while i < trace.len() {
        debug_assert_eq!(
            trace[i],
            ModExpOp::Square,
            "trace must start windows with squares"
        );
        if i + 1 < trace.len() && trace[i + 1] == ModExpOp::Multiply {
            bits.push(true);
            i += 2;
        } else {
            bits.push(false);
            i += 1;
        }
    }
    bits
}

/// The true bits of `exp`, most significant first (ground truth for error
/// rates).
pub fn exponent_bits(exp: u64) -> Vec<bool> {
    if exp == 0 {
        return Vec::new();
    }
    let bits = 64 - exp.leading_zeros();
    (0..bits).rev().map(|i| (exp >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(mod_exp(4, 13, 497), 445);
        assert_eq!(mod_exp(5, 0, 7), 1);
        assert_eq!(mod_exp(7, 1, 13), 7);
        assert_eq!(mod_exp(2, 63, u64::MAX), 2u64.pow(63) % u64::MAX);
    }

    #[test]
    fn matches_naive_for_small_inputs() {
        for base in 1..=10u64 {
            for exp in 0..=12u64 {
                let m = 1009;
                let naive = (0..exp).fold(1u64, |acc, _| acc * base % m);
                assert_eq!(mod_exp(base, exp, m), naive, "{base}^{exp}");
            }
        }
    }

    #[test]
    fn trace_reveals_exponent() {
        let exp = 0b1011_0010_1110_0101u64;
        let (_, trace) = mod_exp_traced(3, exp, 1_000_003);
        assert_eq!(bits_from_trace(&trace), exponent_bits(exp));
    }

    #[test]
    fn trace_length_is_squares_plus_multiplies() {
        let exp = 0b1101u64;
        let (_, trace) = mod_exp_traced(2, exp, 101);
        let squares = trace.iter().filter(|&&o| o == ModExpOp::Square).count();
        let muls = trace.iter().filter(|&&o| o == ModExpOp::Multiply).count();
        assert_eq!(squares, 4); // one per bit
        assert_eq!(muls, 3); // one per set bit
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn zero_modulus_panics() {
        let _ = mod_exp(2, 3, 0);
    }
}
