//! The example time-progressive attack of Section IV-B / Table II:
//! recursively open files, hash each one, and transmit the hash and
//! contents to a colluding server.
//!
//! Progress is bytes transmitted per second. The attack exercises all four
//! throttleable resources, so Table II's response curves — proportional for
//! CPU and file rate, linear(-ish) for network, sharply non-linear for
//! memory — all show up here.

use crate::crypto::sha256::sha256;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};

/// Exfiltration configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExfiltrationConfig {
    /// CPU capacity: bytes hashed+packaged per tick at 100 % CPU. Slightly
    /// above the default file-rate product so the filesystem is the
    /// bottleneck at 100 % CPU, as in Table II.
    pub bytes_per_tick: f64,
    /// Working set in bytes (Table II throttles memory around 4.7 MB).
    pub working_set: u64,
}

impl Default for ExfiltrationConfig {
    fn default() -> Self {
        Self {
            bytes_per_tick: 247.0, // 247 KB/s CPU ceiling
            working_set: 4_700_000,
        }
    }
}

/// The hash-and-exfiltrate workload.
#[derive(Debug, Clone)]
pub struct Exfiltration {
    config: ExfiltrationConfig,
    next_file: usize,
    bytes_sent: u64,
    files_processed: u64,
    signature: Signature,
}

impl Exfiltration {
    /// Bytes of each file genuinely hashed (cost of the rest is the same
    /// arithmetic per byte, accounted numerically).
    const SAMPLE_BYTES: usize = 128;

    /// Creates the workload.
    pub fn new(config: ExfiltrationConfig) -> Self {
        Self {
            config,
            next_file: 0,
            bytes_sent: 0,
            files_processed: 0,
            signature: Signature::ransomware(),
        }
    }

    /// Total bytes delivered to the colluding server.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Files hashed and transmitted.
    pub fn files_processed(&self) -> u64 {
        self.files_processed
    }
}

impl Default for Exfiltration {
    fn default() -> Self {
        Self::new(ExfiltrationConfig::default())
    }
}

impl Workload for Exfiltration {
    fn name(&self) -> &str {
        "exfiltration"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        // CPU ceiling, collapsed by memory thrashing.
        let cpu_budget = ctx.cpu_ticks as f64 * self.config.bytes_per_tick * ctx.mem_efficiency;
        let mut files_budget = ctx.fs_file_budget.floor() as u64;
        let mut staged = 0.0_f64;

        while files_budget > 0 && staged < cpu_budget {
            let Some(size) = ctx.fs.size_of(self.next_file % ctx.fs.len().max(1)) else {
                break;
            };
            // Hash a real sample of the file contents (stack-buffered: this
            // loop runs per file and must not touch the heap).
            let mut sample = [0u8; Self::SAMPLE_BYTES];
            for (i, byte) in sample.iter_mut().enumerate() {
                *byte = (self.next_file as u8).wrapping_add(i as u8);
            }
            let _digest = sha256(&sample);
            staged += size as f64;
            self.next_file += 1;
            self.files_processed += 1;
            files_budget -= 1;
        }
        let staged = staged.min(cpu_budget);

        // Transmit through the shaped network controller.
        let delivered = ctx.net.send(ctx.epoch_ticks, staged);
        self.bytes_sent += delivered as u64;

        EpochReport {
            progress: delivered,
            hpc: self.signature.sample(ctx.rng, ctx.cpu_share()),
            completed: false,
        }
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(self.config.working_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_sim::fs::SimFs;
    use valkyrie_sim::machine::{Machine, MachineConfig};

    /// Builds the Table II scenario: ~100 files/s at ~2.26 KB/file gives
    /// the paper's 225.7 KB/s default progress rate.
    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        // Constant size keeps the default rate exactly calibrated.
        m.set_filesystem(SimFs::uniform("/data/f", 200_000, 2257));
        m
    }

    fn rate_kb_per_s(m: &mut Machine, pid: valkyrie_sim::Pid, epochs: u64) -> f64 {
        let mut bytes = 0.0;
        for _ in 0..epochs {
            bytes += m.run_epoch()[&pid].progress;
        }
        bytes / 1000.0 / (epochs as f64 * 0.1)
    }

    #[test]
    fn default_rate_matches_table2() {
        let mut m = machine();
        let pid = m.spawn(Box::new(Exfiltration::default()));
        let rate = rate_kb_per_s(&mut m, pid, 50);
        assert!((rate - 225.7).abs() < 15.0, "default rate {rate} KB/s");
    }

    #[test]
    fn cpu_1_percent_slows_by_99_percent() {
        let mut m = machine();
        let pid = m.spawn(Box::new(Exfiltration::default()));
        m.set_cpu_quota(pid, 0.01);
        let rate = rate_kb_per_s(&mut m, pid, 50);
        assert!(rate < 5.0, "1% CPU rate {rate} KB/s");
    }

    #[test]
    fn memory_deficit_collapses_rate() {
        let mut m = machine();
        let pid = m.spawn(Box::new(Exfiltration::default()));
        m.set_memory_limit(pid, 0.936);
        let rate = rate_kb_per_s(&mut m, pid, 50);
        assert!(rate < 1.0, "93.6% memory rate {rate} KB/s");
    }

    #[test]
    fn file_rate_is_proportional() {
        let mut m = machine();
        let pid = m.spawn(Box::new(Exfiltration::default()));
        m.set_fs_share(pid, 0.5);
        let rate = rate_kb_per_s(&mut m, pid, 50);
        assert!((rate - 112.85).abs() < 15.0, "50 files/s rate {rate} KB/s");
    }

    #[test]
    fn network_cap_bounds_rate() {
        let mut m = machine();
        let pid = m.spawn(Box::new(Exfiltration::default()));
        m.set_network_cap(pid, 5.12e5); // 512 KB/s with heavy shaping
        let rate = rate_kb_per_s(&mut m, pid, 50);
        assert!(rate < 1.0, "512K cap rate {rate} KB/s");
    }
}
