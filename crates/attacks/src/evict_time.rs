//! Evict+Time on the L1 data cache against a T-table AES victim
//! (Osvik-Shamir-Tromer's second technique; paper Section I lists "L1 and
//! TLB Evict+Time attacks \[29\], \[50\]" among the case studies).
//!
//! Unlike Prime+Probe, the attacker measures the *victim's* execution time:
//! evict one cache set, trigger an encryption, and time it. Encryptions
//! whose first-round lookups touch the evicted set run measurably slower;
//! correlating slow encryptions with the predicted set per key-nibble
//! candidate recovers the key's high nibbles. Progress is guessing entropy,
//! exactly as in the Prime+Probe variant.

use crate::crypto::aes::Aes128;
use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};
use valkyrie_uarch::{Cache, CacheConfig};

/// Key-byte positions in an AES-128 key.
const KEY_BYTES: usize = 16;
/// High-nibble candidates per key byte.
const NIBBLES: usize = 16;
/// Sets covered by one 1 KiB T-table.
const SETS_PER_TABLE: usize = 16;

/// Attack configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvictTimeConfig {
    /// Timed encryptions per full (unthrottled) epoch.
    pub samples_per_epoch: u64,
    /// Standard deviation of timing noise, in cycles (scheduler jitter,
    /// TLB effects, interrupts).
    pub timing_noise_cycles: f64,
    /// Secret key seed.
    pub key_seed: u64,
}

impl Default for EvictTimeConfig {
    fn default() -> Self {
        Self {
            samples_per_epoch: 60,
            timing_noise_cycles: 220.0,
            key_seed: 0xE71C_0001,
        }
    }
}

/// The Evict+Time attack workload.
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::evict_time::{EvictTimeAttack, EvictTimeConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut atk = EvictTimeAttack::new(EvictTimeConfig::default());
/// assert!((atk.guessing_entropy() - 128.5).abs() < 1.0);
/// for _ in 0..100 {
///     atk.collect_sample(&mut rng);
/// }
/// assert_eq!(atk.samples(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct EvictTimeAttack {
    config: EvictTimeConfig,
    aes: Aes128,
    cache: Cache,
    /// `stats[byte][nibble] = (sum_time, count)` for samples whose evicted
    /// set matches the candidate's predicted first-round set.
    stats: [[(f64, u64); NIBBLES]; KEY_BYTES],
    /// Grand mean of all timings (baseline for the correlation).
    total_time: f64,
    samples: u64,
    evict_cursor: usize,
    signature: Signature,
}

impl EvictTimeAttack {
    const EVICT_TAG: u64 = 0x3000;

    /// Creates the attack with a key derived from the config seed.
    pub fn new(config: EvictTimeConfig) -> Self {
        let mut key = [0u8; 16];
        let mut s = config.key_seed;
        for k in key.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *k = (s >> 33) as u8;
        }
        Self {
            config,
            aes: Aes128::new(&key),
            cache: Cache::new(CacheConfig::l1d()),
            stats: [[(0.0, 0); NIBBLES]; KEY_BYTES],
            total_time: 0.0,
            samples: 0,
            evict_cursor: 0,
            signature: Signature::llc_thrashing(),
        }
    }

    /// Samples collected so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The victim's secret key (ground truth).
    pub fn true_key(&self) -> &[u8; 16] {
        self.aes.key()
    }

    /// One Evict+Time sample: evict a set, time one victim encryption.
    pub fn collect_sample<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Cycle the evicted set over the T-table footprint (4 KiB = 64 sets).
        let evicted_set = self.evict_cursor % 64;
        self.evict_cursor += 1;
        self.cache.prime_set(evicted_set, Self::EVICT_TAG);

        // Victim encrypts a random plaintext; its time is the sum of its
        // cache access latencies plus noise.
        let mut pt = [0u8; 16];
        rng.fill(&mut pt);
        let (_, trace) = self.aes.encrypt_traced(&pt);
        let mut time = 0.0;
        for (table, idx) in &trace {
            let addr = (*table as u64) * 1024 + (*idx as u64) * 4;
            time += self.cache.access(addr).latency as f64;
        }
        // Gaussian-ish timing noise (sum of uniforms).
        let noise: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() - 2.0;
        time += noise * self.config.timing_noise_cycles;

        self.total_time += time;
        self.samples += 1;

        // Attribute the timing to every candidate whose predicted set for
        // this plaintext equals the evicted set.
        for (p, &pt_p) in pt.iter().enumerate().take(KEY_BYTES) {
            let table = p % 4;
            let table_base = SETS_PER_TABLE * table;
            if evicted_set < table_base || evicted_set >= table_base + SETS_PER_TABLE {
                continue;
            }
            let line = (evicted_set - table_base) as u8;
            // Candidate c predicts line (pt >> 4) ^ c; match when
            // c == line ^ (pt >> 4).
            let c = (line ^ (pt_p >> 4)) as usize;
            let (sum, count) = &mut self.stats[p][c];
            *sum += time;
            *count += 1;
        }
    }

    /// Guessing entropy over the full key byte (expected rank among 256
    /// candidates, ties averaged), averaged over key bytes.
    pub fn guessing_entropy(&self) -> f64 {
        let grand_mean = if self.samples == 0 {
            0.0
        } else {
            self.total_time / self.samples as f64
        };
        let mut total = 0.0;
        for p in 0..KEY_BYTES {
            // Score: how much slower encryptions are when the candidate's
            // predicted set was evicted.
            let score = |c: usize| -> f64 {
                let (sum, count) = self.stats[p][c];
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64 - grand_mean
                }
            };
            let true_nibble = (self.aes.key()[p] >> 4) as usize;
            let s_true = score(true_nibble);
            let better = (0..NIBBLES).filter(|&c| score(c) > s_true).count() as f64;
            let ties = (0..NIBBLES)
                .filter(|&c| c != true_nibble && score(c) == s_true)
                .count() as f64;
            let nibble_rank = 1.0 + better + ties / 2.0;
            total += (nibble_rank - 1.0) * 16.0 + 8.5;
        }
        total / KEY_BYTES as f64
    }
}

impl Workload for EvictTimeAttack {
    fn name(&self) -> &str {
        "evict-time-aes"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let n = (self.config.samples_per_epoch as f64 * share).round() as u64;
        for _ in 0..n {
            self.collect_sample(ctx.rng);
        }
        EpochReport {
            progress: n as f64,
            hpc: self.signature.sample(ctx.rng, share),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_with_no_information() {
        let atk = EvictTimeAttack::new(EvictTimeConfig::default());
        assert!((atk.guessing_entropy() - 128.5).abs() < 1e-9);
    }

    #[test]
    fn low_noise_attack_recovers_nibbles() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut atk = EvictTimeAttack::new(EvictTimeConfig {
            timing_noise_cycles: 10.0,
            ..EvictTimeConfig::default()
        });
        for _ in 0..6000 {
            atk.collect_sample(&mut rng);
        }
        let ge = atk.guessing_entropy();
        assert!(ge < 40.0, "GE {ge} after 6000 low-noise samples");
    }

    #[test]
    fn few_samples_learn_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut atk = EvictTimeAttack::new(EvictTimeConfig::default());
        for _ in 0..120 {
            atk.collect_sample(&mut rng);
        }
        let ge = atk.guessing_entropy();
        assert!(ge > 60.0, "GE {ge} after 120 noisy samples");
    }

    #[test]
    fn entropy_decreases_with_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut atk = EvictTimeAttack::new(EvictTimeConfig::default());
        for _ in 0..400 {
            atk.collect_sample(&mut rng);
        }
        let early = atk.guessing_entropy();
        for _ in 0..12_000 {
            atk.collect_sample(&mut rng);
        }
        let late = atk.guessing_entropy();
        assert!(late < early, "GE should fall: {early} -> {late}");
    }

    #[test]
    fn deterministic_key() {
        let a = EvictTimeAttack::new(EvictTimeConfig::default());
        let b = EvictTimeAttack::new(EvictTimeConfig::default());
        assert_eq!(a.true_key(), b.true_key());
    }
}
