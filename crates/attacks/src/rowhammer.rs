//! The rowhammer attack workload (Kim et al., ISCA 2014; google/rowhammer-test
//! style double-sided hammering; paper Fig. 6a).
//!
//! Each epoch the attacker issues as many aggressor-row activations as its
//! granted CPU time allows (bounded by the DRAM row-cycle time). Bit flips
//! are decided by the DRAM model: neighbours must be activated beyond the
//! disturbance threshold *within one refresh window*. A CPU-throttled
//! attacker can't reach the threshold in any window, so its flip count is
//! exactly zero forever — the property behind the paper's "no bit-flips
//! even after a day of execution".

use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};

/// Rowhammer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowhammerConfig {
    /// First aggressor row.
    pub row_a: u64,
    /// Second aggressor row (double-sided: victim sits between).
    pub row_b: u64,
}

impl Default for RowhammerConfig {
    fn default() -> Self {
        Self {
            row_a: 4000,
            row_b: 4002,
        }
    }
}

/// The rowhammer attack workload.
///
/// Progress is the number of bit flips induced (read back from the DRAM
/// model after each epoch).
#[derive(Debug, Clone)]
pub struct RowhammerAttack {
    config: RowhammerConfig,
    flips_seen: u64,
    iterations: u64,
    signature: Signature,
}

impl RowhammerAttack {
    /// Creates the attack.
    pub fn new(config: RowhammerConfig) -> Self {
        Self {
            config,
            flips_seen: 0,
            iterations: 0,
            signature: Signature::hammering(),
        }
    }

    /// Hammer iterations executed (1 iteration = 2 activations).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Bit flips observed so far.
    pub fn flips_seen(&self) -> u64 {
        self.flips_seen
    }
}

impl Default for RowhammerAttack {
    fn default() -> Self {
        Self::new(RowhammerConfig::default())
    }
}

impl Workload for RowhammerAttack {
    fn name(&self) -> &str {
        "rowhammer"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        // Activations are bounded by CPU time: the hammer loop issues
        // (load A, load B, clflush both) as fast as tRC allows while it is
        // scheduled.
        let max_per_ms = ctx.dram.config().max_activations_per_ms;
        let activations = ctx.cpu_ticks * max_per_ms;
        ctx.dram
            .hammer_pair(self.config.row_a, self.config.row_b, activations, ctx.rng);
        self.iterations += activations / 2;

        // Progress = new flips (the machine advances the DRAM refresh
        // windows after workloads run, so read the running total).
        let flips_now = ctx.dram.flipped_bits();
        let new_flips = flips_now.saturating_sub(self.flips_seen);
        self.flips_seen = flips_now;

        EpochReport {
            progress: new_flips as f64,
            hpc: self.signature.sample(ctx.rng, ctx.cpu_share()),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_sim::machine::{Machine, MachineConfig};

    #[test]
    fn unthrottled_hammering_flips_bits() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(RowhammerAttack::default()));
        // ~60 simulated seconds of full-speed hammering.
        let mut flips = 0.0;
        for _ in 0..600 {
            let r = m.run_epoch();
            flips += r[&pid].progress;
        }
        assert!(flips > 0.0, "full-speed hammering must flip bits");
    }

    #[test]
    fn throttled_hammering_never_flips() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(RowhammerAttack::default()));
        // 1% CPU quota: activations per refresh window stay far below the
        // disturbance threshold.
        m.set_cpu_quota(pid, 0.01);
        let mut flips = 0.0;
        for _ in 0..2000 {
            let r = m.run_epoch();
            flips += r[&pid].progress;
        }
        assert_eq!(flips, 0.0, "throttled attacker must never flip a bit");
    }

    #[test]
    fn iterations_track_cpu_share() {
        let mut m = Machine::new(MachineConfig::default());
        let pid = m.spawn(Box::new(RowhammerAttack::default()));
        m.set_cpu_quota(pid, 0.5);
        m.run_epoch();
        // 50 ticks × 20k activations/ms / 2 = 500k iterations.
        let _ = pid;
    }
}
