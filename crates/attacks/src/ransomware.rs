//! The ransomware workload: walk the victim filesystem, encrypt every file
//! (paper Fig. 6b; modelled after the open-source families the paper
//! evaluates — GonnaCry, RAASNet, randomware, BWare).
//!
//! Progress is bytes encrypted. Encryption rate depends on CPU time (stream
//! cipher throughput), the file-access rate (the paper's filesystem
//! actuator halves it per threat increase) and memory (thrashing collapses
//! throughput). The paper's measured unthrottled rate — 11.67 MB/s — is the
//! default calibration.

use crate::crypto::stream::StreamCipher;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};

/// Ransomware configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RansomwareConfig {
    /// Encryption throughput at 100 % CPU, bytes per tick (1 tick = 1 ms).
    /// The paper's 11.67 MB/s = 11 670 bytes/ms.
    pub bytes_per_tick: f64,
    /// Cipher key.
    pub key: u64,
}

impl Default for RansomwareConfig {
    fn default() -> Self {
        Self {
            bytes_per_tick: 11_670.0,
            key: 0xDEAD_10CC,
        }
    }
}

/// The ransomware workload.
///
/// Completion: all files in the victim filesystem are encrypted.
#[derive(Debug, Clone)]
pub struct Ransomware {
    config: RansomwareConfig,
    cipher: StreamCipher,
    /// Index of the next file to encrypt.
    next_file: usize,
    /// Bytes already encrypted within the current (partial) file.
    partial_bytes: u64,
    bytes_encrypted: u64,
    files_encrypted: u64,
    signature: Signature,
}

impl Ransomware {
    /// Sample of each file actually run through the cipher (the rest of the
    /// file's cost is accounted by [`StreamCipher::skip`], which does the
    /// same keystream work without a buffer).
    const SAMPLE_BYTES: usize = 256;

    /// Creates the workload.
    pub fn new(config: RansomwareConfig) -> Self {
        Self {
            config,
            cipher: StreamCipher::new(config.key),
            next_file: 0,
            partial_bytes: 0,
            bytes_encrypted: 0,
            files_encrypted: 0,
            signature: Signature::ransomware(),
        }
    }

    /// Total bytes encrypted so far.
    pub fn bytes_encrypted(&self) -> u64 {
        self.bytes_encrypted
    }

    /// Files fully encrypted so far.
    pub fn files_encrypted(&self) -> u64 {
        self.files_encrypted
    }
}

impl Default for Ransomware {
    fn default() -> Self {
        Self::new(RansomwareConfig::default())
    }
}

impl Workload for Ransomware {
    fn name(&self) -> &str {
        "ransomware"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        // CPU capacity this epoch, degraded by memory thrashing.
        let mut budget =
            (ctx.cpu_ticks as f64 * self.config.bytes_per_tick * ctx.mem_efficiency) as u64;
        // File-open budget (the filesystem actuator's lever). A partially
        // encrypted file does not need re-opening.
        let mut files_left =
            ctx.fs_file_budget.floor() as u64 + if self.partial_bytes > 0 { 1 } else { 0 };
        let mut encrypted_now = 0u64;

        while budget > 0 && files_left > 0 {
            let Some(size) = ctx.fs.size_of(self.next_file) else {
                break; // filesystem exhausted
            };
            if ctx.fs.is_encrypted(self.next_file) {
                // Another instance on a shared filesystem got here first:
                // skip the file without claiming it. Any partial work of
                // ours the peer overtook is reclaimed from the byte
                // counter (it was added in earlier epochs), so the
                // instances' `bytes_encrypted` always sum to the
                // filesystem's — per-epoch `progress` already reported is
                // wasted work and stays reported.
                self.bytes_encrypted = self.bytes_encrypted.saturating_sub(self.partial_bytes);
                self.partial_bytes = 0;
                self.next_file += 1;
                continue;
            }
            let remaining_in_file = size - self.partial_bytes;
            let chunk = remaining_in_file.min(budget);
            // Run a real keystream over a stack-buffered sample, account
            // for the rest (no per-iteration heap traffic).
            let sample = chunk.min(Self::SAMPLE_BYTES as u64) as usize;
            let mut buf = [0u8; Self::SAMPLE_BYTES];
            self.cipher.apply(&mut buf[..sample]);
            self.cipher.skip(chunk - sample as u64);

            self.partial_bytes += chunk;
            budget -= chunk;
            encrypted_now += chunk;
            if self.partial_bytes >= size {
                if ctx.fs.encrypt_file(self.next_file).is_some() {
                    self.files_encrypted += 1;
                }
                self.next_file += 1;
                self.partial_bytes = 0;
                files_left -= 1;
            }
        }
        self.bytes_encrypted += encrypted_now;

        let completed = self.next_file >= ctx.fs.len() && !ctx.fs.is_empty();
        EpochReport {
            progress: encrypted_now as f64,
            hpc: self.signature.sample(ctx.rng, ctx.cpu_share()),
            completed,
        }
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(4 * 1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use valkyrie_sim::fs::SimFs;
    use valkyrie_sim::machine::{Machine, MachineConfig};

    fn machine_with_fs(n_files: usize, mean: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        let mut rng = StdRng::seed_from_u64(77);
        m.set_filesystem(SimFs::generate(&mut rng, n_files, mean));
        m
    }

    #[test]
    fn unthrottled_rate_matches_calibration() {
        let mut m = machine_with_fs(5000, 1 << 20);
        let pid = m.spawn(Box::new(Ransomware::default()));
        let mut bytes = 0.0;
        for _ in 0..20 {
            bytes += m.run_epoch()[&pid].progress;
        }
        // 2 simulated seconds at 11.67 MB/s ≈ 23.3 MB.
        let mb = bytes / 1e6;
        assert!((mb - 23.3).abs() < 3.0, "encrypted {mb} MB in 2 s");
    }

    #[test]
    fn cpu_throttling_cuts_rate_proportionally() {
        let mut m = machine_with_fs(5000, 1 << 20);
        let pid = m.spawn(Box::new(Ransomware::default()));
        m.set_cpu_quota(pid, 0.01);
        let mut bytes = 0.0;
        for _ in 0..20 {
            bytes += m.run_epoch()[&pid].progress;
        }
        // ~1% of 23.3 MB.
        assert!(bytes < 0.5e6, "throttled ransomware encrypted {bytes} B");
        assert!(bytes > 0.0);
    }

    #[test]
    fn fs_throttling_caps_files_per_epoch() {
        let mut m = machine_with_fs(1000, 4096);
        let pid = m.spawn(Box::new(Ransomware::default()));
        // 1% of the 100 files/s default = 1 file per second.
        m.set_fs_share(pid, 0.01);
        let mut files = 0u64;
        for _ in 0..50 {
            m.run_epoch();
        }
        if let Some(_name) = m.name_of(pid) {
            files = m.filesystem().encrypted_files() as u64;
        }
        // 5 seconds × ~0.1 files/epoch budget (floor) — at most a handful.
        assert!(files <= 10, "encrypted {files} files under 1% fs share");
    }

    #[test]
    fn completes_when_all_files_encrypted() {
        let mut m = machine_with_fs(3, 1024);
        let pid = m.spawn(Box::new(Ransomware::default()));
        for _ in 0..10 {
            m.run_epoch();
        }
        assert!(m.is_completed(pid));
        assert_eq!(m.filesystem().encrypted_files(), 3);
    }

    #[test]
    fn two_instances_on_one_fs_do_not_double_count() {
        let mut m = Machine::new(MachineConfig::default());
        m.set_filesystem(SimFs::uniform("/shared/f", 400, 4096));
        let a = m.spawn(Box::new(Ransomware::default()));
        let b = m.spawn(Box::new(Ransomware::default()));
        for _ in 0..60 {
            m.run_epoch();
        }
        assert!(m.is_completed(a), "instance a should finish the walk");
        assert!(m.is_completed(b), "instance b should finish the walk");
        let fs = m.filesystem();
        assert_eq!(fs.encrypted_files(), 400);
        assert_eq!(fs.encrypted_bytes(), 400 * 4096);
        let wa = m.workload_as::<Ransomware>(a).unwrap();
        let wb = m.workload_as::<Ransomware>(b).unwrap();
        // Every file is credited to exactly one instance; bytes follow.
        assert_eq!(wa.files_encrypted() + wb.files_encrypted(), 400);
        assert_eq!(wa.bytes_encrypted() + wb.bytes_encrypted(), 400 * 4096);
        assert!(wa.files_encrypted() > 0, "a must make real progress");
        assert!(wb.files_encrypted() > 0, "b must make real progress");
    }

    #[test]
    fn two_throttled_instances_reclaim_overlapping_partial_work() {
        // A binding *byte* budget makes files straddle epochs, so both
        // instances race through the same partially encrypted files: the
        // loser must reclaim its abandoned partial bytes, keeping the
        // instances' byte counters summing to the filesystem's.
        let mut m = Machine::new(MachineConfig::default());
        m.set_filesystem(SimFs::uniform("/shared/f", 10, 50_000));
        let a = m.spawn(Box::new(Ransomware::default()));
        let b = m.spawn(Box::new(Ransomware::default()));
        m.set_cpu_quota(a, 0.01); // ~11.7 KB/epoch: a 50 KB file takes ~5
        m.set_cpu_quota(b, 0.01);
        for _ in 0..200 {
            m.run_epoch();
        }
        assert!(m.is_completed(a) && m.is_completed(b));
        let fs = m.filesystem();
        assert_eq!(fs.encrypted_files(), 10);
        let wa = m.workload_as::<Ransomware>(a).unwrap();
        let wb = m.workload_as::<Ransomware>(b).unwrap();
        assert_eq!(wa.files_encrypted() + wb.files_encrypted(), 10);
        assert_eq!(
            wa.bytes_encrypted() + wb.bytes_encrypted(),
            fs.encrypted_bytes(),
            "a: {} files / {} B, b: {} files / {} B",
            wa.files_encrypted(),
            wa.bytes_encrypted(),
            wb.files_encrypted(),
            wb.bytes_encrypted(),
        );
    }

    #[test]
    fn memory_thrashing_collapses_throughput() {
        let mut m = machine_with_fs(5000, 1 << 20);
        let pid = m.spawn(Box::new(Ransomware::default()));
        m.set_memory_limit(pid, 0.9);
        let mut bytes = 0.0;
        for _ in 0..20 {
            bytes += m.run_epoch()[&pid].progress;
        }
        assert!(
            bytes < 100_000.0,
            "thrashing ransomware encrypted {bytes} B"
        );
    }
}
