//! Prime+Probe covert channels over the LLC and the TLB (paper Figs. 4d-f).
//!
//! A sender/receiver pair agrees on a group of cache (or TLB) sets — the
//! *channels* — and transmits one bit per channel per round: the receiver
//! primes the set, the sender touches it (bit 1) or stays quiet (bit 0), and
//! the receiver probes. CJAG (Maurice et al., NDSS 2017) additionally runs a
//! jamming-agreement initialisation protocol to establish the channel sets
//! without shared memory; its initialisation grows with the number of
//! channels, which is why more channels transmit *fewer* bits before
//! Valkyrie's throttle lands (Fig. 4d).

use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};
use valkyrie_uarch::{Cache, CacheConfig, Tlb, TlbConfig};

/// The shared micro-architectural medium a channel runs over.
#[derive(Debug, Clone)]
pub enum Medium {
    /// Last-level-cache sets (CJAG, Yarom's Mastik-style channel).
    Llc(Box<Cache>),
    /// TLB sets (Gras et al.'s TLBleed-style channel).
    Tlb(Tlb),
}

impl Medium {
    /// A fresh LLC medium.
    pub fn llc() -> Self {
        Medium::Llc(Box::new(Cache::new(CacheConfig::llc())))
    }

    /// A fresh TLB medium.
    pub fn tlb() -> Self {
        Medium::Tlb(Tlb::new(TlbConfig::dtlb()))
    }

    fn set_count(&self) -> usize {
        match self {
            Medium::Llc(c) => c.config().sets,
            Medium::Tlb(t) => t.config().sets,
        }
    }

    /// Receiver primes/evicts the set.
    fn prime(&mut self, set: usize, tag: u64) {
        match self {
            Medium::Llc(c) => {
                c.prime_set(set, tag);
            }
            Medium::Tlb(t) => {
                t.evict_set(set, tag);
            }
        }
    }

    /// Sender touches the set (transmitting a 1).
    fn touch(&mut self, set: usize, tag: u64) {
        match self {
            Medium::Llc(c) => {
                c.access(c.address_in_set(set, tag));
            }
            Medium::Tlb(t) => {
                t.translate(t.address_in_set(set, tag));
            }
        }
    }

    /// Receiver probes; true when contention (≥1 miss) was observed.
    fn probe(&mut self, set: usize, tag: u64) -> bool {
        match self {
            Medium::Llc(c) => c.probe_set(set, tag).0 > 0,
            Medium::Tlb(t) => t.probe_set(set, tag).0 > 0,
        }
    }
}

/// Channel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// Parallel channels (agreed sets).
    pub channels: usize,
    /// Rounds per full (unthrottled) epoch.
    pub rounds_per_epoch: u64,
    /// Jamming-agreement initialisation rounds *per channel* (CJAG); 0 for
    /// channels with out-of-band agreement.
    pub init_rounds_per_channel: u64,
    /// Probability a probe observation flips.
    pub observation_noise: f64,
}

impl ChannelConfig {
    /// The CJAG high-speed LLC channel with `channels` parallel sets.
    pub fn cjag(channels: usize) -> Self {
        Self {
            channels,
            rounds_per_epoch: 2000,
            init_rounds_per_channel: 4000,
            observation_noise: 0.05,
        }
    }

    /// A plain LLC Prime+Probe channel (Mastik-style, single set).
    pub fn llc() -> Self {
        Self {
            channels: 1,
            rounds_per_epoch: 1500,
            init_rounds_per_channel: 500,
            observation_noise: 0.08,
        }
    }

    /// A TLB Evict+Time channel.
    pub fn tlb() -> Self {
        Self {
            channels: 1,
            rounds_per_epoch: 1000,
            init_rounds_per_channel: 800,
            observation_noise: 0.12,
        }
    }
}

/// A Prime+Probe covert channel workload (sender + receiver pair).
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::channels::{ChannelConfig, CovertChannel, Medium};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ch = CovertChannel::new(Medium::llc(), ChannelConfig::llc());
/// ch.run_rounds(1000, &mut rng);
/// assert!(ch.bits_transmitted() > 0);
/// ```
#[derive(Debug)]
pub struct CovertChannel {
    config: ChannelConfig,
    medium: Medium,
    sets: Vec<usize>,
    init_remaining: u64,
    bits_transmitted: u64,
    bit_errors: u64,
    rounds: u64,
    signature: Signature,
    name: String,
}

impl CovertChannel {
    const RECEIVER_TAG: u64 = 0x4000;
    const SENDER_TAG: u64 = 0x8000;

    /// Creates the channel; sets are spread across the medium.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(medium: Medium, config: ChannelConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        let total = medium.set_count();
        let sets = (0..config.channels)
            .map(|i| (i * total / config.channels + 7) % total)
            .collect();
        let kind = match &medium {
            Medium::Llc(_) => "llc",
            Medium::Tlb(_) => "tlb",
        };
        Self {
            init_remaining: config.init_rounds_per_channel * config.channels as u64,
            config,
            medium,
            sets,
            bits_transmitted: 0,
            bit_errors: 0,
            rounds: 0,
            signature: Signature::llc_thrashing(),
            name: format!("covert-channel-{kind}"),
        }
    }

    /// Bits successfully decoded by the receiver so far.
    pub fn bits_transmitted(&self) -> u64 {
        self.bits_transmitted
    }

    /// Bits decoded incorrectly so far.
    pub fn bit_errors(&self) -> u64 {
        self.bit_errors
    }

    /// True while the jamming agreement is still running.
    pub fn initializing(&self) -> bool {
        self.init_remaining > 0
    }

    /// Data rounds completed (excludes initialisation).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes `n` protocol rounds (initialisation first, then data).
    pub fn run_rounds<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) {
        let mut left = n;
        // Initialisation consumes rounds without transmitting bits.
        let init = self.init_remaining.min(left);
        self.init_remaining -= init;
        left -= init;

        for _ in 0..left {
            for (ci, &set) in self.sets.iter().enumerate() {
                let bit = rng.gen::<bool>();
                self.medium.prime(set, Self::RECEIVER_TAG + ci as u64 * 64);
                if bit {
                    self.medium.touch(set, Self::SENDER_TAG + ci as u64);
                }
                let mut observed = self.medium.probe(set, Self::RECEIVER_TAG + ci as u64 * 64);
                if rng.gen::<f64>() < self.config.observation_noise {
                    observed = !observed;
                }
                self.bits_transmitted += 1;
                if observed != bit {
                    self.bit_errors += 1;
                }
            }
            self.rounds += 1;
        }
    }

    /// Fraction of decoded bits that were wrong.
    pub fn error_rate(&self) -> f64 {
        if self.bits_transmitted == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits_transmitted as f64
        }
    }
}

impl Workload for CovertChannel {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let n = (self.config.rounds_per_epoch as f64 * share).round() as u64;
        let before = self.bits_transmitted;
        self.run_rounds(n, ctx.rng);
        EpochReport {
            progress: (self.bits_transmitted - before) as f64,
            hpc: self.signature.sample(ctx.rng, share),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initialization_blocks_transmission() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = CovertChannel::new(Medium::llc(), ChannelConfig::cjag(2));
        assert!(ch.initializing());
        ch.run_rounds(1000, &mut rng);
        assert!(ch.initializing());
        assert_eq!(ch.bits_transmitted(), 0);
    }

    #[test]
    fn transmits_after_initialization() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = CovertChannel::new(Medium::llc(), ChannelConfig::llc());
        ch.run_rounds(500 + 200, &mut rng);
        assert!(!ch.initializing());
        assert_eq!(ch.bits_transmitted(), 200);
    }

    #[test]
    fn error_rate_is_low_over_clean_medium() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = ChannelConfig::llc();
        cfg.observation_noise = 0.0;
        let mut ch = CovertChannel::new(Medium::llc(), cfg);
        ch.run_rounds(500 + 1000, &mut rng);
        assert_eq!(ch.error_rate(), 0.0);
    }

    #[test]
    fn noise_produces_errors() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ch = CovertChannel::new(Medium::llc(), ChannelConfig::llc());
        ch.run_rounds(500 + 2000, &mut rng);
        let e = ch.error_rate();
        assert!(e > 0.02 && e < 0.2, "error rate {e}");
    }

    #[test]
    fn tlb_medium_also_works() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = CovertChannel::new(Medium::tlb(), ChannelConfig::tlb());
        ch.run_rounds(800 + 300, &mut rng);
        assert_eq!(ch.bits_transmitted(), 300);
        assert!(ch.error_rate() < 0.3);
    }

    #[test]
    fn more_channels_multiply_throughput_and_init_cost() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut one = CovertChannel::new(Medium::llc(), ChannelConfig::cjag(1));
        let mut four = CovertChannel::new(Medium::llc(), ChannelConfig::cjag(4));
        // Enough rounds to finish 1-channel init but not 4-channel init.
        let budget = 6000;
        one.run_rounds(budget, &mut rng);
        four.run_rounds(budget, &mut rng);
        assert!(one.bits_transmitted() > 0);
        assert_eq!(four.bits_transmitted(), 0, "4-channel init is 4x longer");
        // Given a long run, 4 channels out-transmit 1.
        one.run_rounds(20_000, &mut rng);
        four.run_rounds(20_000, &mut rng);
        assert!(four.bits_transmitted() > one.bits_transmitted() / 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = CovertChannel::new(Medium::llc(), ChannelConfig::cjag(0));
    }
}
