//! The Fill-and-Forward Timed Speculative Attack (TSA) covert channel on
//! the load-store buffer (Chakraborty et al., DAC 2022; paper Fig. 4c).
//!
//! The sender encodes a bit by either storing to an address that 4K-aliases
//! the receiver's load (bit 1 → the load suffers a false-dependency stall)
//! or storing elsewhere (bit 0 → fast load). Because the channel lives in
//! the load-store buffer, cache-based countermeasures don't see it — but it
//! still needs CPU time, which is what Valkyrie throttles. Progress is the
//! **bit error rate** of the transmitted message under majority voting.

use rand::Rng;
use valkyrie_hpc::Signature;
use valkyrie_sim::machine::{EpochCtx, EpochReport, Workload};
use valkyrie_uarch::lsb::LoadKind;
use valkyrie_uarch::{LoadStoreBuffer, LsbConfig};

/// Channel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsaConfig {
    /// Channel rounds per full (unthrottled) epoch.
    pub rounds_per_epoch: u64,
    /// Probability a round's timing observation flips.
    pub observation_noise: f64,
    /// Message length in bits (retransmitted cyclically with voting).
    pub message_bits: usize,
    /// Seed for the secret message.
    pub message_seed: u64,
}

impl Default for TsaConfig {
    fn default() -> Self {
        Self {
            rounds_per_epoch: 250,
            observation_noise: 0.44,
            message_bits: 64,
            message_seed: 0x75A0,
        }
    }
}

/// The TSA covert-channel workload (sender + receiver pair).
///
/// # Examples
///
/// ```
/// use valkyrie_attacks::tsa::{TsaChannel, TsaConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ch = TsaChannel::new(TsaConfig::default());
/// assert!((ch.bit_error_rate() - 0.5).abs() < 1e-9);
/// ch.run_rounds(2000, &mut rng);
/// assert!(ch.rounds() == 2000);
/// ```
#[derive(Debug, Clone)]
pub struct TsaChannel {
    config: TsaConfig,
    lsb: LoadStoreBuffer,
    message: Vec<bool>,
    votes: Vec<(u64, u64)>,
    cursor: usize,
    rounds: u64,
    signature: Signature,
}

impl TsaChannel {
    /// Receiver's load address.
    const LOAD_ADDR: u64 = 0x5_1234;
    /// Sender's aliasing store address (same low 12 bits, different page).
    const ALIAS_ADDR: u64 = 0x9_1234;
    /// Sender's non-aliasing store address.
    const NEUTRAL_ADDR: u64 = 0x9_2468;

    /// Creates the channel with a pseudo-random secret message.
    pub fn new(config: TsaConfig) -> Self {
        let mut s = config.message_seed;
        let message = (0..config.message_bits)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 62) & 1 == 1
            })
            .collect();
        Self {
            config,
            lsb: LoadStoreBuffer::new(LsbConfig::skylake()),
            message,
            votes: vec![(0, 0); config.message_bits],
            cursor: 0,
            rounds: 0,
            signature: Signature::cryptominer(),
        }
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The secret message (ground truth).
    pub fn message(&self) -> &[bool] {
        &self.message
    }

    /// Executes `n` channel rounds through the load-store buffer.
    pub fn run_rounds<R: Rng + ?Sized>(&mut self, n: u64, rng: &mut R) {
        for _ in 0..n {
            let bit_idx = self.cursor % self.message.len();
            self.cursor += 1;
            let bit = self.message[bit_idx];

            // Sender.
            self.lsb.drain();
            self.lsb.store(if bit {
                Self::ALIAS_ADDR
            } else {
                Self::NEUTRAL_ADDR
            });
            // Receiver: a stalled load means bit 1.
            let (kind, _) = self.lsb.load(Self::LOAD_ADDR);
            let mut observed = kind == LoadKind::AliasStall;
            if rng.gen::<f64>() < self.config.observation_noise {
                observed = !observed;
            }

            let (ones, total) = &mut self.votes[bit_idx];
            if observed {
                *ones += 1;
            }
            *total += 1;
            self.rounds += 1;
        }
    }

    /// Bit error rate of the majority-vote decoded message; unobserved or
    /// split bits contribute 0.5.
    pub fn bit_error_rate(&self) -> f64 {
        let mut err = 0.0;
        for (bit, &(ones, total)) in self.message.iter().zip(&self.votes) {
            if total == 0 || 2 * ones == total {
                err += 0.5;
                continue;
            }
            if (2 * ones > total) != *bit {
                err += 1.0;
            }
        }
        err / self.message.len() as f64
    }
}

impl Workload for TsaChannel {
    fn name(&self) -> &str {
        "tsa-lsb-covert-channel"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn advance(&mut self, ctx: &mut EpochCtx<'_>) -> EpochReport {
        let share = ctx.cpu_share();
        let n = (self.config.rounds_per_epoch as f64 * share).round() as u64;
        self.run_rounds(n, ctx.rng);
        EpochReport {
            progress: n as f64,
            hpc: self.signature.sample(ctx.rng, share),
            completed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_at_half_error() {
        let ch = TsaChannel::new(TsaConfig::default());
        assert!((ch.bit_error_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noiseless_channel_is_perfect_after_one_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = TsaChannel::new(TsaConfig {
            observation_noise: 0.0,
            ..TsaConfig::default()
        });
        ch.run_rounds(64, &mut rng);
        assert_eq!(ch.bit_error_rate(), 0.0);
    }

    #[test]
    fn noisy_channel_converges_with_many_rounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = TsaChannel::new(TsaConfig::default());
        ch.run_rounds(60_000, &mut rng);
        assert!(
            ch.bit_error_rate() < 0.1,
            "error {} after 60k rounds",
            ch.bit_error_rate()
        );
    }

    #[test]
    fn starved_channel_stays_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = TsaChannel::new(TsaConfig::default());
        ch.run_rounds(60, &mut rng);
        assert!(ch.bit_error_rate() > 0.25);
    }

    #[test]
    fn message_is_deterministic() {
        let a = TsaChannel::new(TsaConfig::default());
        let b = TsaChannel::new(TsaConfig::default());
        assert_eq!(a.message(), b.message());
    }
}
