//! Every time-progressive attack evaluated in the paper, implemented from
//! scratch against the simulated substrates.
//!
//! | Module | Attack | Paper figure | Progress metric |
//! |---|---|---|---|
//! | [`l1d_aes`] | Prime+Probe on L1-D vs. T-table AES | Fig. 4a | guessing entropy |
//! | [`evict_time`] | Evict+Time on L1-D vs. T-table AES | §I case study | guessing entropy |
//! | [`l1i_rsa`] | Prime+Probe on L1-I vs. square-and-multiply RSA | Fig. 4b | bit error rate |
//! | [`tsa`] | Load-store-buffer covert channel (TSA) | Fig. 4c | bit error rate |
//! | [`channels`] | CJAG / LLC / TLB covert channels | Figs. 4d-f | bits transmitted |
//! | [`rowhammer`] | Double-sided rowhammer | Fig. 6a | bits flipped |
//! | [`ransomware`] | Filesystem-encrypting ransomware | Fig. 6b | bytes encrypted |
//! | [`cryptominer`] | Double-SHA-256 proof-of-work miner | Fig. 6c | hashes computed |
//! | [`exfiltration`] | Hash-and-transmit example attack | Table II | bytes transmitted |
//!
//! All attacks implement [`valkyrie_sim::Workload`], so the simulated
//! machine schedules them and Valkyrie's actuators genuinely starve them.
//! The crypto victims/payloads are real implementations ([`crypto`]).
//!
//! # Examples
//!
//! ```
//! use valkyrie_attacks::cryptominer::Cryptominer;
//! use valkyrie_sim::prelude::*;
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let pid = machine.spawn(Box::new(Cryptominer::default()));
//! let report = &machine.run_epoch()[&pid];
//! assert!(report.progress > 0.0); // hashes computed
//! ```

pub mod channels;
pub mod crypto;
pub mod cryptominer;
pub mod evict_time;
pub mod exfiltration;
pub mod l1d_aes;
pub mod l1i_rsa;
pub mod ransomware;
pub mod rowhammer;
pub mod tsa;

pub use channels::{ChannelConfig, CovertChannel, Medium};
pub use cryptominer::{Cryptominer, CryptominerConfig};
pub use evict_time::{EvictTimeAttack, EvictTimeConfig};
pub use exfiltration::{Exfiltration, ExfiltrationConfig};
pub use l1d_aes::{L1dAesAttack, L1dAesConfig};
pub use l1i_rsa::{L1iRsaAttack, L1iRsaConfig};
pub use ransomware::{Ransomware, RansomwareConfig};
pub use rowhammer::{RowhammerAttack, RowhammerConfig};
pub use tsa::{TsaChannel, TsaConfig};
