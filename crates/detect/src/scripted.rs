//! Deterministic detectors for tests and analytic examples.

use crate::Detector;
use std::collections::HashMap;
use valkyrie_core::{Classification, ProcessId};
use valkyrie_hpc::SampleWindow;

/// A detector replaying a fixed inference sequence (per process).
///
/// Sequences repeat from the start when exhausted in
/// [`ScriptedDetector::cycle`] mode, or continue with the final value in
/// [`ScriptedDetector::then_hold`] mode.
///
/// # Examples
///
/// ```
/// use valkyrie_detect::{Detector, ScriptedDetector};
/// use valkyrie_core::{Classification::{self, *}, ProcessId};
/// use valkyrie_hpc::SampleWindow;
///
/// let mut d = ScriptedDetector::then_hold(vec![Malicious, Benign]);
/// let w = SampleWindow::new(2);
/// let pid = ProcessId(0);
/// assert_eq!(d.infer(pid, &w), Malicious);
/// assert_eq!(d.infer(pid, &w), Benign);
/// assert_eq!(d.infer(pid, &w), Benign); // holds the last value
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedDetector {
    script: Vec<Classification>,
    cycle: bool,
    cursors: HashMap<ProcessId, usize>,
}

impl ScriptedDetector {
    /// Replays `script`, wrapping around when exhausted.
    ///
    /// # Panics
    ///
    /// Panics on an empty script.
    pub fn cycle(script: Vec<Classification>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        Self {
            script,
            cycle: true,
            cursors: HashMap::new(),
        }
    }

    /// Replays `script`, then keeps returning its final element.
    ///
    /// # Panics
    ///
    /// Panics on an empty script.
    pub fn then_hold(script: Vec<Classification>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        Self {
            script,
            cycle: false,
            cursors: HashMap::new(),
        }
    }

    /// A detector that always answers `c`.
    pub fn constant(c: Classification) -> Self {
        Self::then_hold(vec![c])
    }
}

impl Detector for ScriptedDetector {
    fn name(&self) -> &str {
        "scripted"
    }

    fn infer(&mut self, pid: ProcessId, _window: &SampleWindow) -> Classification {
        let cursor = self.cursors.entry(pid).or_insert(0);
        let idx = if self.cycle {
            *cursor % self.script.len()
        } else {
            (*cursor).min(self.script.len() - 1)
        };
        *cursor += 1;
        self.script[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_core::Classification::{Benign, Malicious};

    #[test]
    fn cycling_wraps() {
        let mut d = ScriptedDetector::cycle(vec![Malicious, Benign]);
        let w = SampleWindow::new(1);
        let seq: Vec<_> = (0..5).map(|_| d.infer(ProcessId(1), &w)).collect();
        assert_eq!(seq, vec![Malicious, Benign, Malicious, Benign, Malicious]);
    }

    #[test]
    fn per_process_cursors_are_independent() {
        let mut d = ScriptedDetector::cycle(vec![Malicious, Benign]);
        let w = SampleWindow::new(1);
        assert_eq!(d.infer(ProcessId(1), &w), Malicious);
        assert_eq!(d.infer(ProcessId(2), &w), Malicious);
        assert_eq!(d.infer(ProcessId(1), &w), Benign);
    }

    #[test]
    fn constant_never_changes() {
        let mut d = ScriptedDetector::constant(Benign);
        let w = SampleWindow::new(1);
        for _ in 0..10 {
            assert_eq!(d.infer(ProcessId(3), &w), Benign);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_script_panics() {
        let _ = ScriptedDetector::cycle(vec![]);
    }
}
