//! Measuring detection efficacy versus number of measurements (Fig. 1).
//!
//! For each measurement budget `n` in a grid, every test trace is classified
//! from its first `n` measurements only; the resulting confusion matrix
//! yields `F1(n)` and `FPR(n)`. The curves feed the core planner, which maps
//! a user's [`EfficacySpec`](valkyrie_core::EfficacySpec) to `N*`.

use valkyrie_core::{EfficacyCurve, EfficacyPoint, ValkyrieError};
use valkyrie_ml::{ConfusionMatrix, SequenceDataset};

/// The measurement-count grid to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyGrid {
    points: Vec<u32>,
}

impl EfficacyGrid {
    /// A grid over explicit measurement counts (deduplicated, sorted).
    ///
    /// # Panics
    ///
    /// Panics if empty or containing zero.
    pub fn new(mut points: Vec<u32>) -> Self {
        assert!(!points.is_empty(), "grid must be non-empty");
        assert!(
            points.iter().all(|&p| p > 0),
            "grid counts must be positive"
        );
        points.sort_unstable();
        points.dedup();
        Self { points }
    }

    /// The paper's Fig. 1 x-axis: 1..=75 measurements (every other count to
    /// keep evaluation cheap).
    pub fn fig1() -> Self {
        Self::new((1..=75).step_by(2).collect())
    }

    /// The grid points.
    pub fn points(&self) -> &[u32] {
        &self.points
    }
}

/// Classifies every test trace from its first `n` measurements for every
/// `n` in the grid and returns the measured efficacy curve.
///
/// `classify_prefix(prefix) -> bool` is the detector under test (true =
/// malicious); prefixes longer than a trace use the whole trace.
///
/// # Errors
///
/// Propagates [`ValkyrieError::InvalidCurve`] if the grid produced no valid
/// points (cannot happen for a non-empty grid and dataset).
pub fn measure_efficacy<F>(
    test: &SequenceDataset,
    grid: &EfficacyGrid,
    mut classify_prefix: F,
) -> Result<EfficacyCurve, ValkyrieError>
where
    F: FnMut(&[Vec<f64>]) -> bool,
{
    let mut points = Vec::with_capacity(grid.points().len());
    for &n in grid.points() {
        let mut cm = ConfusionMatrix::default();
        for (seq, &label) in test.sequences.iter().zip(&test.labels) {
            let take = (n as usize).min(seq.len());
            let pred = classify_prefix(&seq[..take]);
            cm.record(label == 1.0, pred);
        }
        points.push(EfficacyPoint {
            measurements: n,
            f1: cm.f1(),
            fpr: cm.fpr(),
        });
    }
    EfficacyCurve::new(points)
}

/// Like [`measure_efficacy`] for majority-vote detectors, but classifies
/// each measurement exactly once.
///
/// `classify_samples(seq) -> Vec<bool>` returns one per-measurement verdict
/// per timestep (a natural fit for the batched
/// [`BinaryClassifier::score_batch`](valkyrie_ml::BinaryClassifier::score_batch)
/// paths); every grid point is then answered from prefix vote counts. For a
/// deterministic per-sample classifier this is exactly the majority-over-
/// prefix rule evaluated per grid point — the confusion matrices, and hence
/// the curve, are identical — without the `O(grid × prefix)` reclassification.
///
/// # Errors
///
/// Propagates [`ValkyrieError::InvalidCurve`] if the grid produced no valid
/// points (cannot happen for a non-empty grid and dataset).
pub fn measure_efficacy_votes<F>(
    test: &SequenceDataset,
    grid: &EfficacyGrid,
    mut classify_samples: F,
) -> Result<EfficacyCurve, ValkyrieError>
where
    F: FnMut(&[Vec<f64>]) -> Vec<bool>,
{
    // prefix_votes[trace][t] = malicious votes among the first t measurements.
    let prefix_votes: Vec<Vec<u32>> = test
        .sequences
        .iter()
        .map(|seq| {
            let flags = classify_samples(seq);
            assert_eq!(flags.len(), seq.len(), "one verdict per measurement");
            let mut counts = Vec::with_capacity(seq.len() + 1);
            let mut acc = 0u32;
            counts.push(0);
            for f in flags {
                acc += u32::from(f);
                counts.push(acc);
            }
            counts
        })
        .collect();
    let mut points = Vec::with_capacity(grid.points().len());
    for &n in grid.points() {
        let mut cm = ConfusionMatrix::default();
        for (counts, &label) in prefix_votes.iter().zip(&test.labels) {
            let take = (n as usize).min(counts.len() - 1);
            let pred = 2 * counts[take] as usize > take;
            cm.record(label == 1.0, pred);
        }
        points.push(EfficacyPoint {
            measurements: n,
            f1: cm.f1(),
            fpr: cm.fpr(),
        });
    }
    EfficacyCurve::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valkyrie_core::EfficacySpec;

    /// A synthetic detector whose per-measurement error shrinks with n:
    /// classify by the mean of feature 0 over the prefix.
    fn noisy_mean_detector(prefix: &[Vec<f64>]) -> bool {
        let mean: f64 = prefix.iter().map(|x| x[0]).sum::<f64>() / prefix.len() as f64;
        mean > 0.5
    }

    /// Deterministic jitter in [-1, 1) from a cheap integer hash.
    fn jitter(variant: usize, t: usize) -> f64 {
        let mut h = (variant as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        (h % 10_000) as f64 / 5_000.0 - 1.0
    }

    fn synthetic_dataset() -> SequenceDataset {
        // Positive traces hover around 0.62, negative around 0.38, both
        // buried in ±0.5 deterministic noise: short prefixes are noisy,
        // long prefixes converge to the class mean.
        let mut ds = SequenceDataset::default();
        for variant in 0..40 {
            let positive = variant % 2 == 0;
            let center = if positive { 0.62 } else { 0.38 };
            let seq: Vec<Vec<f64>> = (0..60)
                .map(|t| vec![center + 0.5 * jitter(variant, t)])
                .collect();
            ds.sequences.push(seq);
            ds.labels.push(if positive { 1.0 } else { 0.0 });
        }
        ds
    }

    #[test]
    fn grid_is_sorted_and_deduplicated() {
        let g = EfficacyGrid::new(vec![5, 1, 5, 3]);
        assert_eq!(g.points(), &[1, 3, 5]);
    }

    #[test]
    fn fig1_grid_covers_up_to_75() {
        let g = EfficacyGrid::fig1();
        assert_eq!(*g.points().first().unwrap(), 1);
        assert_eq!(*g.points().last().unwrap(), 75);
    }

    #[test]
    fn efficacy_improves_with_measurements() {
        let ds = synthetic_dataset();
        let grid = EfficacyGrid::new(vec![1, 2, 10, 40]);
        let curve = measure_efficacy(&ds, &grid, noisy_mean_detector).unwrap();
        let f1_early = curve.points()[0].f1;
        let f1_late = curve.points().last().unwrap().f1;
        assert!(
            f1_late > f1_early,
            "F1 should improve: {f1_early} -> {f1_late}"
        );
        assert!(curve.f1_at(40).unwrap() > 0.9);
    }

    #[test]
    fn n_star_planning_from_measured_curve() {
        let ds = synthetic_dataset();
        let grid = EfficacyGrid::new(vec![1, 2, 4, 10, 20, 40]);
        let curve = measure_efficacy(&ds, &grid, noisy_mean_detector).unwrap();
        let n = curve
            .measurements_required(&EfficacySpec::f1_at_least(0.9))
            .unwrap();
        assert!((2..=40).contains(&n), "N* = {n}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let _ = EfficacyGrid::new(vec![]);
    }

    #[test]
    fn vote_variant_is_bit_identical_to_per_prefix_majority() {
        let ds = synthetic_dataset();
        let grid = EfficacyGrid::new(vec![1, 2, 5, 10, 40, 60, 100]);
        let slow = measure_efficacy(&ds, &grid, |p| {
            let malicious = p.iter().filter(|x| x[0] > 0.5).count();
            2 * malicious > p.len()
        })
        .unwrap();
        let fast =
            measure_efficacy_votes(&ds, &grid, |seq| seq.iter().map(|x| x[0] > 0.5).collect())
                .unwrap();
        assert_eq!(slow.points().len(), fast.points().len());
        for (a, b) in slow.points().iter().zip(fast.points()) {
            assert_eq!(a.measurements, b.measurements);
            assert_eq!(a.f1.to_bits(), b.f1.to_bits());
            assert_eq!(a.fpr.to_bits(), b.fpr.to_bits());
        }
    }
}
